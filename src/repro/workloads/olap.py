"""Analytical (OLAP) workload definitions.

Both workloads minimise end-to-end completion time.  mssales stands in for
the Microsoft-internal production workload of the same name (§6.1, Fig. 11d):
the paper describes it only as a production OLAP workload with many complex
joins, so the descriptor models a join-heavy, memory/sort intensive analytic
batch with large tuning headroom (default 79.4 s → tuned ≈ 33 s).
"""

from __future__ import annotations

from repro.workloads.base import Objective, Workload, WorkloadKind


#: TPC-H — decision-support queries with many (relatively easy) joins.
TPCH = Workload(
    name="tpch",
    kind=WorkloadKind.OLAP,
    objective=Objective.RUNTIME,
    baseline_performance=114.5,
    optimal_performance=68.0,
    working_set_mb=12_000.0,
    dataset_mb=20_000.0,
    read_fraction=1.0,
    join_complexity=0.65,
    plan_sensitivity=0.0,
    sort_hash_intensity=0.70,
    parallel_friendliness=0.85,
    skew=0.1,
    concurrency=4,
    component_demands={
        "cpu": 0.32,
        "disk": 0.22,
        "memory": 0.18,
        "os": 0.06,
        "cache": 0.18,
        "network": 0.04,
    },
    duration_hours=0.0,  # runtime workloads run to completion
    description="TPC-H decision support: scan/join/aggregate analytic queries",
)


#: mssales — enterprise production OLAP workload with many complex joins.
MSSALES = Workload(
    name="mssales",
    kind=WorkloadKind.OLAP,
    objective=Objective.RUNTIME,
    baseline_performance=79.4,
    optimal_performance=31.0,
    working_set_mb=10_000.0,
    dataset_mb=18_000.0,
    read_fraction=0.95,
    join_complexity=0.90,
    plan_sensitivity=0.0,
    sort_hash_intensity=0.85,
    parallel_friendliness=0.90,
    skew=0.3,
    concurrency=8,
    component_demands={
        "cpu": 0.34,
        "disk": 0.22,
        "memory": 0.24,
        "os": 0.04,
        "cache": 0.12,
        "network": 0.04,
    },
    duration_hours=0.0,
    description="mssales: Microsoft production sales-reporting OLAP batch",
)

"""Workload descriptor types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class WorkloadKind(str, enum.Enum):
    """Broad workload categories used by the system simulators."""

    OLTP = "oltp"
    OLAP = "olap"
    KEY_VALUE = "key_value"
    WEB = "web"


class Objective(str, enum.Enum):
    """Optimisation objective of a workload (what the tuner optimises)."""

    THROUGHPUT = "throughput"  # higher is better (tx/s, ops/s)
    RUNTIME = "runtime"  # lower is better (seconds to complete)
    P95_LATENCY = "p95_latency"  # lower is better (milliseconds)

    @property
    def higher_is_better(self) -> bool:
        return self is Objective.THROUGHPUT

    @property
    def unit(self) -> str:
        return {
            Objective.THROUGHPUT: "tx/s",
            Objective.RUNTIME: "s",
            Objective.P95_LATENCY: "ms",
        }[self]


@dataclass(frozen=True)
class Workload:
    """Static description of a benchmark workload.

    Attributes
    ----------
    name, kind, objective:
        Identity, category and optimisation target.
    baseline_performance:
        Performance of the *default* configuration on a nominal (noise-free)
        node, in the objective's unit.  Calibrated to the default-config bars
        of the paper's figures.
    optimal_performance:
        Approximate performance of a well-tuned stable configuration on a
        nominal node (the headroom available to the tuner).
    working_set_mb:
        Hot data size; interacts with buffer-pool style knobs.
    dataset_mb:
        Total on-disk / in-memory dataset size.
    read_fraction:
        Fraction of operations that only read.
    join_complexity:
        0-1: how much of the work involves multi-table joins (drives the
        benefit of planner-related knobs).
    plan_sensitivity:
        0-1: fraction of the workload whose cost explodes when the query
        planner picks the wrong candidate plan.  This is what makes some
        configurations *unstable* (§3.2.1).  Zero for systems without a
        planner (Redis, NGINX).
    sort_hash_intensity:
        0-1: how much the workload relies on sorts / hash tables (work_mem).
    parallel_friendliness:
        0-1: how well queries scale with parallel workers (OLAP high, OLTP low).
    skew:
        Zipfian-style access skew (0 = uniform).
    concurrency:
        Number of concurrent clients the benchmark drives.
    component_demands:
        Baseline share of time the default configuration spends bottlenecked
        on each platform component; the system simulators shift these shares
        as knobs change.
    duration_hours:
        Measurement duration (OLTP/latency workloads run for a fixed period,
        paper: 5 minutes; OLAP workloads run to completion).
    """

    name: str
    kind: WorkloadKind
    objective: Objective
    baseline_performance: float
    optimal_performance: float
    working_set_mb: float
    dataset_mb: float
    read_fraction: float
    join_complexity: float
    plan_sensitivity: float
    sort_hash_intensity: float
    parallel_friendliness: float
    skew: float
    concurrency: int
    component_demands: Dict[str, float] = field(default_factory=dict)
    duration_hours: float = 5.0 / 60.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.baseline_performance <= 0 or self.optimal_performance <= 0:
            raise ValueError(f"{self.name}: performance figures must be positive")
        for attr in (
            "read_fraction",
            "join_complexity",
            "plan_sensitivity",
            "sort_hash_intensity",
            "parallel_friendliness",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {attr} must be in [0, 1], got {value}")
        if self.working_set_mb <= 0 or self.dataset_mb <= 0:
            raise ValueError(f"{self.name}: data sizes must be positive")
        if self.working_set_mb > self.dataset_mb:
            raise ValueError(f"{self.name}: working set cannot exceed dataset size")
        if self.concurrency < 1:
            raise ValueError(f"{self.name}: concurrency must be >= 1")
        if self.skew < 0:
            raise ValueError(f"{self.name}: skew must be non-negative")

    @property
    def higher_is_better(self) -> bool:
        return self.objective.higher_is_better

    @property
    def write_fraction(self) -> float:
        return 1.0 - self.read_fraction

    def improvement_headroom(self) -> float:
        """Ratio between optimal and baseline performance (>= 1)."""
        if self.higher_is_better:
            return self.optimal_performance / self.baseline_performance
        return self.baseline_performance / self.optimal_performance

"""Workload descriptors.

The paper evaluates six workloads across three systems (§6): TPC-C,
epinions, TPC-H and mssales on PostgreSQL; YCSB-C on Redis; and a
Wikipedia-serving trace on NGINX; plus the pgbench / redis-benchmark
workloads used by the longitudinal study.  A
:class:`~repro.workloads.base.Workload` captures the characteristics the
system simulators need to produce a realistic knob→performance response:
working-set size, read/write mix, join complexity and how sensitive the
workload is to query-plan choice (the root cause of unstable configurations,
§3.2.1), parallelism friendliness, skew, and the optimisation objective.
"""

from repro.workloads.base import Objective, Workload, WorkloadKind
from repro.workloads.oltp import EPINIONS, TPCC, YCSB_A, YCSB_C
from repro.workloads.olap import MSSALES, TPCH
from repro.workloads.web import WIKIPEDIA_TOP500

ALL_WORKLOADS = {
    workload.name: workload
    for workload in (TPCC, EPINIONS, TPCH, MSSALES, YCSB_C, YCSB_A, WIKIPEDIA_TOP500)
}


def get_workload(name: str) -> Workload:
    """Look up a predefined workload by name."""
    if name not in ALL_WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(ALL_WORKLOADS)}")
    return ALL_WORKLOADS[name]


__all__ = [
    "ALL_WORKLOADS",
    "EPINIONS",
    "MSSALES",
    "Objective",
    "TPCC",
    "TPCH",
    "WIKIPEDIA_TOP500",
    "Workload",
    "WorkloadKind",
    "YCSB_A",
    "YCSB_C",
    "get_workload",
]

"""Web-serving workload definitions.

The paper serves the top-500 Wikipedia pages of 2023 (with all media) through
NGINX, in the same access distribution those pages were requested over the
year, and optimises 95th-percentile full-page latency (Fig. 15).
"""

from __future__ import annotations

from repro.workloads.base import Objective, Workload, WorkloadKind


WIKIPEDIA_TOP500 = Workload(
    name="wikipedia-top500",
    kind=WorkloadKind.WEB,
    objective=Objective.P95_LATENCY,
    baseline_performance=69.7,
    optimal_performance=41.0,
    working_set_mb=2_500.0,
    dataset_mb=5_000.0,
    read_fraction=1.0,
    join_complexity=0.0,
    plan_sensitivity=0.0,
    sort_hash_intensity=0.0,
    parallel_friendliness=0.8,
    skew=1.1,
    concurrency=256,
    component_demands={
        "cpu": 0.28,
        "disk": 0.10,
        "memory": 0.12,
        "os": 0.20,
        "cache": 0.12,
        "network": 0.18,
    },
    description="Top-500 Wikipedia pages with media, served in 2023 access distribution",
)

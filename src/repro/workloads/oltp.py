"""Transactional (OLTP) and key-value workload definitions.

Performance baselines are calibrated to the default-configuration bars of the
paper's evaluation figures (Fig. 11a/b for PostgreSQL, Fig. 14 for Redis).
"""

from __future__ import annotations

from repro.workloads.base import Objective, Workload, WorkloadKind


#: TPC-C — order-entry OLTP.  Mostly simple single-table transactions plus one
#: JOIN whose plan choice is the unstable-configuration mechanism (§3.2.1).
TPCC = Workload(
    name="tpcc",
    kind=WorkloadKind.OLTP,
    objective=Objective.THROUGHPUT,
    baseline_performance=850.0,
    optimal_performance=2_100.0,
    working_set_mb=9_000.0,
    dataset_mb=18_000.0,
    read_fraction=0.35,
    join_complexity=0.15,
    plan_sensitivity=0.35,
    sort_hash_intensity=0.15,
    parallel_friendliness=0.05,
    skew=0.4,
    concurrency=64,
    component_demands={
        "cpu": 0.15,
        "disk": 0.55,
        "memory": 0.09,
        "os": 0.07,
        "cache": 0.10,
        "network": 0.04,
    },
    description="TPC-C order entry: write-heavy OLTP with one plan-sensitive JOIN",
)


#: epinions — consumer-review web/OLTP mix; simpler queries than TPC-C but the
#: same kind of plan sensitivity at lower intensity.
EPINIONS = Workload(
    name="epinions",
    kind=WorkloadKind.OLTP,
    objective=Objective.THROUGHPUT,
    baseline_performance=30_900.0,
    optimal_performance=36_200.0,
    working_set_mb=3_500.0,
    dataset_mb=7_000.0,
    read_fraction=0.85,
    join_complexity=0.10,
    plan_sensitivity=0.15,
    sort_hash_intensity=0.10,
    parallel_friendliness=0.05,
    skew=0.8,
    concurrency=128,
    component_demands={
        "cpu": 0.30,
        "disk": 0.12,
        "memory": 0.16,
        "os": 0.14,
        "cache": 0.22,
        "network": 0.06,
    },
    description="epinions.com-style review site: read-mostly OLTP with hot rows",
)


#: YCSB-C — 100 % reads with Zipfian skew; the Redis workload of Fig. 14.
YCSB_C = Workload(
    name="ycsb-c",
    kind=WorkloadKind.KEY_VALUE,
    objective=Objective.P95_LATENCY,
    baseline_performance=0.89,
    optimal_performance=0.82,
    working_set_mb=6_000.0,
    dataset_mb=16_500.0,
    read_fraction=1.0,
    join_complexity=0.0,
    plan_sensitivity=0.0,
    sort_hash_intensity=0.0,
    parallel_friendliness=0.3,
    skew=0.99,
    concurrency=64,
    component_demands={
        "cpu": 0.25,
        "disk": 0.02,
        "memory": 0.30,
        "os": 0.15,
        "cache": 0.22,
        "network": 0.06,
    },
    description="YCSB workload C: read-only Zipfian key-value lookups",
)


#: YCSB-A — 50/50 read/update variant, used by the extra examples and tests to
#: exercise Redis persistence knobs (not part of the paper's headline figures).
YCSB_A = Workload(
    name="ycsb-a",
    kind=WorkloadKind.KEY_VALUE,
    objective=Objective.P95_LATENCY,
    baseline_performance=1.35,
    optimal_performance=1.05,
    working_set_mb=6_000.0,
    dataset_mb=16_500.0,
    read_fraction=0.5,
    join_complexity=0.0,
    plan_sensitivity=0.0,
    sort_hash_intensity=0.0,
    parallel_friendliness=0.3,
    skew=0.99,
    concurrency=64,
    component_demands={
        "cpu": 0.25,
        "disk": 0.10,
        "memory": 0.28,
        "os": 0.15,
        "cache": 0.18,
        "network": 0.04,
    },
    description="YCSB workload A: update-heavy key-value operations",
)

"""Burstable-VM CPU/disk credit accounting.

Azure B-series VMs accrue credits while idling below their baseline and spend
them while bursting above it.  When credits run out, performance collapses to
the baseline, which is the bimodal behaviour visible in Fig. 3 of the paper
("bursting credit depletion causes extreme performance bimodality").
"""

from __future__ import annotations


class BurstableCreditAccount:
    """Tracks burst credits for a single burstable VM.

    Parameters
    ----------
    accrual_per_hour:
        Credits earned per hour of wall-clock time.
    max_credits:
        Credit cap; also the initial balance (VMs start with a full bank in
        this model, matching the high-performing start of the paper's traces).
    burn_per_hour:
        Credits consumed per hour while running at full (burst) speed.
    """

    def __init__(
        self,
        accrual_per_hour: float,
        max_credits: float,
        burn_per_hour: float = 480.0,
        initial_fraction: float = 1.0,
    ) -> None:
        if accrual_per_hour < 0 or max_credits <= 0 or burn_per_hour <= 0:
            raise ValueError("credit parameters must be positive")
        if not 0.0 <= initial_fraction <= 1.0:
            raise ValueError("initial_fraction must be in [0, 1]")
        self.accrual_per_hour = float(accrual_per_hour)
        self.max_credits = float(max_credits)
        self.burn_per_hour = float(burn_per_hour)
        self.balance = float(max_credits) * float(initial_fraction)

    @property
    def depleted(self) -> bool:
        """True when there are effectively no credits left to burst with."""
        return self.balance <= 1e-9

    def accrue(self, hours: float) -> None:
        """Earn credits for ``hours`` of (possibly idle) wall-clock time."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        self.balance = min(self.max_credits, self.balance + hours * self.accrual_per_hour)

    def consume(self, hours: float, utilisation: float = 1.0) -> float:
        """Burn credits for ``hours`` of work at ``utilisation`` in [0, 1].

        Returns the fraction of the interval that ran at burst speed; the
        remainder ran at the depleted baseline.  Accrual during the interval
        is credited first, which is what lets a depleted VM slowly recover.
        """
        if hours < 0:
            raise ValueError("hours must be non-negative")
        if not 0.0 <= utilisation <= 1.0:
            raise ValueError("utilisation must be in [0, 1]")
        if hours == 0:
            return 1.0
        net_burn_rate = self.burn_per_hour * utilisation - self.accrual_per_hour
        if net_burn_rate <= 0:
            # Accrual outpaces burn: the whole interval bursts and we bank the rest.
            self.balance = min(
                self.max_credits, self.balance - net_burn_rate * hours
            )
            return 1.0
        hours_available = self.balance / net_burn_rate
        if hours_available >= hours:
            self.balance -= net_burn_rate * hours
            return 1.0
        # Credits run out part-way through the interval.
        self.balance = 0.0
        return max(0.0, min(1.0, hours_available / hours))

"""Virtual-machine performance model.

A :class:`VirtualMachine` decides how fast each hardware/software component
(CPU, disk, memory, OS operations, CPU cache, network) runs for a particular
measurement.  The multiplier for a component combines four effects, matching
the structure of variability the paper measures in §3.2:

1. a **persistent node factor** drawn when the VM is provisioned — which
   physical host you landed on and its steady background load; this is what
   differs between the 43 k short-lived VMs of the study;
2. **slow temporal drift** of the host (visible in the long-running VM trace
   of Fig. 6);
3. transient **noisy-neighbour interference episodes**;
4. run-to-run **measurement noise**;

plus, for burstable SKUs, the burst-credit state (Fig. 3's bimodality).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cloud.credits import BurstableCreditAccount
from repro.cloud.regions import COMPONENTS, RegionProfile, VMSku


class Component:
    """Symbolic names of the simulated hardware/software components."""

    CPU = "cpu"
    DISK = "disk"
    MEMORY = "memory"
    OS = "os"
    CACHE = "cache"
    NETWORK = "network"

    ALL = COMPONENTS


@dataclass
class MeasurementContext:
    """Snapshot of node state for a single measurement.

    The workload/SuT model consumes ``multipliers``; the telemetry generator
    consumes ``interference`` and ``burst_fraction`` so that the guest metrics
    carry (noisy) information about the very noise that perturbed the
    measurement — the signal the TUNA noise adjuster exploits.
    """

    vm_id: str
    time_hours: float
    duration_hours: float
    multipliers: Dict[str, float] = field(default_factory=dict)
    interference: Dict[str, float] = field(default_factory=dict)
    burst_fraction: float = 1.0

    def multiplier(self, component: str) -> float:
        if component not in self.multipliers:
            raise KeyError(f"unknown component {component!r}")
        return self.multipliers[component]


class VirtualMachine:
    """A single worker node (cloud VM or bare-metal machine).

    Parameters
    ----------
    vm_id:
        Stable identifier, e.g. ``"worker-3"``; used for worker one-hot
        encoding by the noise adjuster.
    sku, region:
        Offering and environment profiles.
    lifespan:
        ``"long"`` or ``"short"``; only affects bookkeeping in the
        longitudinal study (short VMs are deprovisioned after one benchmark).
    seed:
        Seed of the VM's private RNG (node factors, drift phases, episodes).
    """

    def __init__(
        self,
        vm_id: str,
        sku: VMSku,
        region: RegionProfile,
        lifespan: str = "long",
        seed: Optional[int] = None,
    ) -> None:
        if lifespan not in ("long", "short"):
            raise ValueError("lifespan must be 'long' or 'short'")
        self.vm_id = str(vm_id)
        self.sku = sku
        self.region = region
        self.lifespan = lifespan
        self._rng = np.random.default_rng(seed)
        self.clock_hours = 0.0

        # Persistent node factors: which physical host did we land on?
        self._node_factor: Dict[str, float] = {}
        is_slow_host = self._rng.random() < region.slow_host_fraction
        # Slow hosts are slow because of contention on the *unreserved*
        # resources (memory bandwidth, shared cache, hypervisor/OS paths);
        # CPU cycles and managed disks keep their tight SLA (§3.2).
        slow_components = {Component.MEMORY, Component.OS, Component.CACHE, Component.NETWORK}
        for component in COMPONENTS:
            noise = region.component(component)
            factor = float(
                np.clip(self._rng.normal(1.0, noise.node_cov), 0.5, 1.5)
            )
            if is_slow_host and component in slow_components:
                factor *= 1.0 - region.slow_host_penalty
            self._node_factor[component] = factor
        self.is_slow_host = bool(is_slow_host)

        # Slow drift: per-component sinusoid with random phase/period.
        self._drift_phase: Dict[str, float] = {
            c: float(self._rng.uniform(0.0, 2.0 * math.pi)) for c in COMPONENTS
        }
        self._drift_period_hours: Dict[str, float] = {
            c: float(self._rng.uniform(24.0 * 14, 24.0 * 90)) for c in COMPONENTS
        }

        self.credits: Optional[BurstableCreditAccount] = None
        if sku.burstable:
            self.credits = BurstableCreditAccount(
                accrual_per_hour=sku.credit_accrual_per_hour,
                max_credits=sku.max_credits,
                initial_fraction=float(self._rng.uniform(0.2, 1.0)),
            )

    # ------------------------------------------------------------------ speed
    @property
    def speed_factor(self) -> float:
        """SKU baseline-performance factor (reference SKU = 1.0).

        Consumed by the execution layer: a sample on this worker takes
        ``base_duration / speed_factor`` of wall-clock, so slow SKUs stretch
        their own timeline in a mixed fleet, and by the scheduler's
        heterogeneity-aware placement, which prefers free fast workers.
        """
        return self.sku.perf_factor

    # ------------------------------------------------------------------ time
    def advance(self, hours: float) -> None:
        """Advance this VM's local clock (idle time accrues burst credits)."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        self.clock_hours += hours
        if self.credits is not None:
            self.credits.accrue(hours)

    # ------------------------------------------------------------ measurement
    def node_factor(self, component: str) -> float:
        """The persistent performance factor of this node for a component."""
        if component not in self._node_factor:
            raise KeyError(f"unknown component {component!r}")
        return self._node_factor[component]

    def _drift(self, component: str) -> float:
        noise = self.region.component(component)
        phase = self._drift_phase[component]
        period = self._drift_period_hours[component]
        return 1.0 + noise.temporal_cov * math.sin(
            phase + 2.0 * math.pi * self.clock_hours / period
        )

    def measure(
        self,
        duration_hours: float,
        utilisation: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> MeasurementContext:
        """Sample the node state for one measurement and advance the clock."""
        if duration_hours < 0:
            raise ValueError("duration_hours must be non-negative")
        rng = rng if rng is not None else self._rng

        burst_fraction = 1.0
        if self.credits is not None:
            burst_fraction = self.credits.consume(duration_hours, utilisation)

        multipliers: Dict[str, float] = {}
        interference: Dict[str, float] = {}
        for component in COMPONENTS:
            noise = self.region.component(component)
            level = 0.0
            if noise.interference_rate > 0 and rng.random() < noise.interference_rate:
                # Exponential episode magnitudes give the long tail the paper
                # observes for cache/OS benchmarks.
                level = float(
                    np.clip(rng.exponential(noise.interference_magnitude), 0.0, 0.6)
                )
            interference[component] = level
            measurement = float(rng.normal(1.0, noise.measurement_cov))
            value = (
                self._node_factor[component]
                * self._drift(component)
                * (1.0 - level)
                * measurement
            )
            if self.sku.burstable and component in (Component.CPU, Component.DISK):
                effective = (
                    burst_fraction * self.sku.burst_performance
                    + (1.0 - burst_fraction) * self.sku.depleted_performance
                )
                value *= effective
            # SKU baseline performance shifts the whole distribution: a
            # slower offering is slower on every component, on top of the
            # region's noise structure (multiplying by 1.0 is exact, so
            # reference-SKU measurements are bit-for-bit unchanged).
            value *= self.sku.perf_factor
            multipliers[component] = float(max(value, 0.05))

        context = MeasurementContext(
            vm_id=self.vm_id,
            time_hours=self.clock_hours,
            duration_hours=duration_hours,
            multipliers=multipliers,
            interference=interference,
            burst_fraction=burst_fraction,
        )
        self.clock_hours += duration_hours
        return context

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualMachine(id={self.vm_id!r}, sku={self.sku.name!r}, "
            f"region={self.region.name!r}, lifespan={self.lifespan!r})"
        )

"""Resource microbenchmarks used by the longitudinal cloud study.

These mirror the five microbenchmarks §3.2 of the paper focuses on:

==========  ==========================  =====================
component   paper tool                  metric (higher better)
==========  ==========================  =====================
cpu         sysbench prime verification events/s
disk        fio random write (libaio)   IOPS
memory      Intel MLC max bandwidth     GB/s
os          OSBench thread creation     creations/s
cache       stress-ng cache             ops/s
==========  ==========================  =====================

Each benchmark stresses exactly one component, so its measured value is the
component's nominal value scaled by the VM's component multiplier for that
measurement — which is how a fleet-wide study recovers the per-component
coefficients of variation of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cloud.vm import MeasurementContext, VirtualMachine


@dataclass(frozen=True)
class Microbenchmark:
    """A single-component microbenchmark."""

    name: str
    component: str
    nominal_value: float
    unit: str
    duration_hours: float = 0.05
    higher_is_better: bool = True

    def run(
        self,
        vm: VirtualMachine,
        rng: Optional[np.random.Generator] = None,
        context: Optional[MeasurementContext] = None,
    ) -> float:
        """Run the benchmark on ``vm`` and return the measured value.

        A pre-sampled ``context`` may be supplied when several benchmarks
        should observe the same node state (as a real benchmarking sweep on
        one VM would).
        """
        if context is None:
            context = vm.measure(self.duration_hours, utilisation=0.9, rng=rng)
        value = self.nominal_value * context.multiplier(self.component)
        return float(max(value, 0.0))


MICROBENCHMARKS: List[Microbenchmark] = [
    Microbenchmark(
        name="sysbench-cpu-prime",
        component="cpu",
        nominal_value=11_500.0,
        unit="events/s",
    ),
    Microbenchmark(
        name="fio-randwrite-libaio",
        component="disk",
        nominal_value=38_000.0,
        unit="IOPS",
    ),
    Microbenchmark(
        name="mlc-max-bandwidth",
        component="memory",
        nominal_value=68.0,
        unit="GB/s",
    ),
    Microbenchmark(
        name="osbench-create-threads",
        component="os",
        nominal_value=95_000.0,
        unit="threads/s",
    ),
    Microbenchmark(
        name="stress-ng-cache",
        component="cache",
        nominal_value=1_450_000.0,
        unit="ops/s",
    ),
]


def microbenchmark_by_name(name: str) -> Microbenchmark:
    """Look up one of the predefined microbenchmarks."""
    for bench in MICROBENCHMARKS:
        if bench.name == name:
            return bench
    raise KeyError(f"unknown microbenchmark {name!r}")


def run_suite(
    vm: VirtualMachine, rng: Optional[np.random.Generator] = None
) -> Dict[str, float]:
    """Run all microbenchmarks on a VM, one shared node state per benchmark."""
    return {bench.name: bench.run(vm, rng=rng) for bench in MICROBENCHMARKS}

"""Worker clusters: the execution environment seen by the tuners.

The paper's setup (§6) is a fixed cluster of 10 worker VMs plus one
orchestrator.  Traditional sampling uses a single worker; TUNA distributes
samples across all of them.  For deployment evaluation (the "apply the best
config to new systems" step) a set of *fresh* nodes is provisioned from the
same region/SKU, which is exactly what :meth:`Cluster.provision_fresh_nodes`
does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cloud.regions import RegionProfile, VMSku, get_region, get_sku
from repro.cloud.vm import VirtualMachine


class Cluster:
    """A named set of worker VMs drawn from one region and SKU.

    Parameters
    ----------
    n_workers:
        Number of worker nodes (the paper uses 10).
    region, sku:
        Region profile / SKU, by object or by name.
    seed:
        Master seed; workers get independent child seeds, so two clusters
        built with the same seed contain identical nodes.
    """

    def __init__(
        self,
        n_workers: int = 10,
        region: "RegionProfile | str" = "westus2",
        sku: "VMSku | str" = "Standard_D8s_v5",
        seed: Optional[int] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.region = get_region(region) if isinstance(region, str) else region
        self.sku = get_sku(sku) if isinstance(sku, str) else sku
        self._seed_sequence = np.random.SeedSequence(seed)
        self._rng = np.random.default_rng(self._seed_sequence.spawn(1)[0])
        self._fresh_counter = 0
        self.workers: List[VirtualMachine] = [
            self._provision(f"worker-{i}") for i in range(n_workers)
        ]
        self.clock_hours = 0.0

    # -- provisioning -------------------------------------------------------
    def _provision(self, vm_id: str, lifespan: str = "long") -> VirtualMachine:
        child_seed = self._seed_sequence.spawn(1)[0]
        return VirtualMachine(
            vm_id=vm_id,
            sku=self.sku,
            region=self.region,
            lifespan=lifespan,
            seed=int(np.random.default_rng(child_seed).integers(0, 2**31 - 1)),
        )

    def provision_fresh_nodes(self, n: int, lifespan: str = "short") -> List[VirtualMachine]:
        """Provision ``n`` brand-new VMs from the same region/SKU.

        Used for deployment evaluation: the best configuration found during
        tuning is re-run on nodes never seen during tuning (§6, "running the
        best configuration found during tuning on 10 new systems").
        """
        if n < 1:
            raise ValueError("must provision at least one node")
        nodes = []
        for _ in range(n):
            nodes.append(self._provision(f"fresh-{self._fresh_counter}", lifespan))
            self._fresh_counter += 1
        return nodes

    # -- accessors -------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def worker(self, vm_id: str) -> VirtualMachine:
        for vm in self.workers:
            if vm.vm_id == vm_id:
                return vm
        raise KeyError(f"no worker named {vm_id!r}")

    @property
    def worker_ids(self) -> List[str]:
        return [vm.vm_id for vm in self.workers]

    # -- time -------------------------------------------------------
    def advance(self, hours: float) -> None:
        """Advance the cluster-wide clock (and every worker's local clock).

        This is the *lockstep* clock model of the sequential tuning loop:
        every iteration moves the whole cluster forward uniformly.  The
        asynchronous engine instead drives each worker's clock along its own
        timeline (``vm.advance`` per worker) and only moves the cluster-wide
        clock through :meth:`advance_clock`.
        """
        if hours < 0:
            raise ValueError("hours must be non-negative")
        self.clock_hours += hours
        for vm in self.workers:
            vm.advance(hours)

    def advance_clock(self, hours: float) -> None:
        """Advance only the cluster-wide (orchestrator) clock.

        Used by the asynchronous engine, whose per-worker clocks have already
        been moved individually along their own timelines.
        """
        if hours < 0:
            raise ValueError("hours must be non-negative")
        self.clock_hours += hours

    # -- summaries -------------------------------------------------------
    def node_factor_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-component min/mean/max of persistent node factors (debugging)."""
        summary: Dict[str, Dict[str, float]] = {}
        for component in ("cpu", "disk", "memory", "os", "cache", "network"):
            factors = [vm.node_factor(component) for vm in self.workers]
            summary[component] = {
                "min": float(np.min(factors)),
                "mean": float(np.mean(factors)),
                "max": float(np.max(factors)),
            }
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n_workers={self.n_workers}, region={self.region.name!r}, "
            f"sku={self.sku.name!r})"
        )

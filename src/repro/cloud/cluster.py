"""Worker clusters: the execution environment seen by the tuners.

The paper's setup (§6) is a fixed cluster of 10 worker VMs plus one
orchestrator.  Traditional sampling uses a single worker; TUNA distributes
samples across all of them.  For deployment evaluation (the "apply the best
config to new systems" step) a set of *fresh* nodes is provisioned from the
same region/SKU mix, which is exactly what
:meth:`Cluster.provision_fresh_nodes` does.

A cluster may be **heterogeneous**: built from a
:class:`~repro.cloud.fleet.FleetSpec`, each worker carries its own
``(region, sku)`` assignment, so one tuning run can span regions and VM
generations.  The legacy ``(n_workers, region, sku)`` constructor is the
single-group special case and provisions bit-for-bit the same workers as
before.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cloud.fleet import FleetSpec
from repro.cloud.regions import RegionProfile, VMSku, get_region, get_sku
from repro.cloud.vm import VirtualMachine


class Cluster:
    """A named set of worker VMs, homogeneous or drawn from a mixed fleet.

    Parameters
    ----------
    n_workers:
        Number of worker nodes (the paper uses 10).  Ignored when ``fleet``
        is given — the spec then fixes the fleet size.
    region, sku:
        Region profile / SKU, by object or by name; the homogeneous
        single-group fleet.  Ignored when ``fleet`` is given.
    seed:
        Master seed; workers get independent child seeds, so two clusters
        built with the same seed contain identical nodes.
    fleet:
        Optional :class:`FleetSpec` of per-worker ``(region, sku)``
        assignments for a heterogeneous cluster.
    """

    def __init__(
        self,
        n_workers: int = 10,
        region: "RegionProfile | str" = "westus2",
        sku: "VMSku | str" = "Standard_D8s_v5",
        seed: Optional[int] = None,
        fleet: Optional[FleetSpec] = None,
    ) -> None:
        if fleet is None:
            if n_workers < 1:
                raise ValueError("a cluster needs at least one worker")
            region = get_region(region) if isinstance(region, str) else region
            sku = get_sku(sku) if isinstance(sku, str) else sku
            fleet = FleetSpec.homogeneous(n_workers, region, sku)
        self.fleet = fleet
        # Primary region/SKU: what the legacy single-environment API exposes
        # (and what homogeneous callers always meant).
        self.region = fleet.primary_region
        self.sku = fleet.primary_sku
        self._assignments = fleet.assignments
        self._seed_sequence = np.random.SeedSequence(seed)
        self._rng = np.random.default_rng(self._seed_sequence.spawn(1)[0])
        self._fresh_counter = 0
        self.workers: List[VirtualMachine] = [
            self._provision(f"worker-{i}", region=assignment[0], sku=assignment[1])
            for i, assignment in enumerate(self._assignments)
        ]

        self.clock_hours = 0.0

    # -- provisioning -------------------------------------------------------
    def _provision(
        self,
        vm_id: str,
        lifespan: str = "long",
        region: Optional[RegionProfile] = None,
        sku: Optional[VMSku] = None,
    ) -> VirtualMachine:
        child_seed = self._seed_sequence.spawn(1)[0]
        return VirtualMachine(
            vm_id=vm_id,
            sku=self.sku if sku is None else sku,
            region=self.region if region is None else region,
            lifespan=lifespan,
            seed=int(np.random.default_rng(child_seed).integers(0, 2**31 - 1)),
        )

    def provision_fresh_nodes(self, n: int, lifespan: str = "short") -> List[VirtualMachine]:
        """Provision ``n`` brand-new VMs matching the fleet's composition.

        Used for deployment evaluation: the best configuration found during
        tuning is re-run on nodes never seen during tuning (§6, "running the
        best configuration found during tuning on 10 new systems").  A
        homogeneous cluster provisions from its single region/SKU exactly as
        before; a mixed fleet cycles through its per-worker assignments so
        the deployment set mirrors the tuning environment.
        """
        if n < 1:
            raise ValueError("must provision at least one node")
        nodes = []
        for _ in range(n):
            region, sku = self._assignments[self._fresh_counter % len(self._assignments)]
            nodes.append(
                self._provision(
                    f"fresh-{self._fresh_counter}", lifespan, region=region, sku=sku
                )
            )
            self._fresh_counter += 1
        return nodes

    # -- accessors -------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def is_homogeneous(self) -> bool:
        """True when every worker shares one region and one SKU."""
        return self.fleet.is_homogeneous

    def worker(self, vm_id: str) -> VirtualMachine:
        for vm in self.workers:
            if vm.vm_id == vm_id:
                return vm
        raise KeyError(f"no worker named {vm_id!r}")

    @property
    def worker_ids(self) -> List[str]:
        return [vm.vm_id for vm in self.workers]

    def region_of(self, vm_id: str) -> str:
        """Region name of a worker (KeyError for unknown workers)."""
        return self.worker(vm_id).region.name

    def sku_of(self, vm_id: str) -> str:
        """SKU name of a worker (KeyError for unknown workers)."""
        return self.worker(vm_id).sku.name

    # -- time -------------------------------------------------------
    def advance(self, hours: float) -> None:
        """Advance the cluster-wide clock (and every worker's local clock).

        This is the *lockstep* clock model of the sequential tuning loop:
        every iteration moves the whole cluster forward uniformly.  The
        asynchronous engine instead drives each worker's clock along its own
        timeline (``vm.advance`` per worker) and only moves the cluster-wide
        clock through :meth:`advance_clock`.
        """
        if hours < 0:
            raise ValueError("hours must be non-negative")
        self.clock_hours += hours
        for vm in self.workers:
            vm.advance(hours)

    def advance_clock(self, hours: float) -> None:
        """Advance only the cluster-wide (orchestrator) clock.

        Used by the asynchronous engine, whose per-worker clocks have already
        been moved individually along their own timelines.
        """
        if hours < 0:
            raise ValueError("hours must be non-negative")
        self.clock_hours += hours

    # -- summaries -------------------------------------------------------
    def node_factor_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-component min/mean/max of persistent node factors (debugging)."""
        summary: Dict[str, Dict[str, float]] = {}
        for component in ("cpu", "disk", "memory", "os", "cache", "network"):
            factors = [vm.node_factor(component) for vm in self.workers]
            summary[component] = {
                "min": float(np.min(factors)),
                "mean": float(np.mean(factors)),
                "max": float(np.max(factors)),
            }
        return summary

    def fleet_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-SKU worker count and baseline speed (mixed-fleet reporting)."""
        summary: Dict[str, Dict[str, float]] = {}
        for vm in self.workers:
            entry = summary.setdefault(
                vm.sku.name, {"workers": 0, "speed_factor": vm.speed_factor}
            )
            entry["workers"] += 1
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_homogeneous:
            return (
                f"Cluster(n_workers={self.n_workers}, region={self.region.name!r}, "
                f"sku={self.sku.name!r})"
            )
        return f"Cluster(n_workers={self.n_workers}, fleet={self.fleet!r})"

"""Longitudinal cloud measurement study (paper §3.2, Figs. 3, 4, 6, Table 1).

The paper runs a 68-week study over ~43 k Azure VMs: 40 microbenchmarks plus
13 application benchmarks on long-running and short-running VMs, burstable
and non-burstable SKUs, in two regions.  :class:`LongitudinalStudy` recreates
that design at configurable (much smaller) scale on the simulated cloud:

* **short-running VMs** — provisioned, benchmarked once, deprovisioned; they
  sample the cross-node distribution of a region;
* **long-running VMs** — kept for the whole study and re-benchmarked every
  sampling interval; they show slow temporal drift only (Fig. 6);
* **application benchmarks** — composite component mixes standing in for
  pgbench on PostgreSQL and redis-benchmark on Redis (Fig. 3), including the
  burstable-credit bimodality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.microbench import MICROBENCHMARKS, Microbenchmark
from repro.cloud.regions import RegionProfile, VMSku, get_region, get_sku
from repro.cloud.vm import VirtualMachine
from repro.ml.metrics import coefficient_of_variation


@dataclass(frozen=True)
class ApplicationBenchmark:
    """A composite end-to-end benchmark (pgbench / redis-benchmark stand-in).

    ``component_weights`` give the share of benchmark time bottlenecked on
    each component; the measured score is the harmonic combination of the
    node's component multipliers, so a benchmark dominated by a noisy
    component inherits that component's variance.
    """

    name: str
    component_weights: Dict[str, float]
    nominal_value: float
    unit: str
    utilisation: float = 0.9
    duration_hours: float = 0.25

    def run(self, vm: VirtualMachine, rng: Optional[np.random.Generator] = None) -> float:
        context = vm.measure(self.duration_hours, utilisation=self.utilisation, rng=rng)
        total_weight = sum(self.component_weights.values())
        slowdown = 0.0
        for component, weight in self.component_weights.items():
            slowdown += (weight / total_weight) / max(context.multiplier(component), 0.05)
        return float(self.nominal_value / slowdown)


POSTGRES_PGBENCH = ApplicationBenchmark(
    name="postgres-pgbench-rw",
    component_weights={"disk": 0.45, "memory": 0.15, "cpu": 0.15, "os": 0.10, "cache": 0.15},
    nominal_value=8_200.0,
    unit="tx/s",
    utilisation=0.95,
)

REDIS_BENCHMARK = ApplicationBenchmark(
    name="redis-benchmark-write",
    component_weights={"memory": 0.35, "cpu": 0.25, "os": 0.20, "cache": 0.15, "network": 0.05},
    nominal_value=145_000.0,
    unit="ops/s",
    utilisation=0.85,
)

APPLICATION_BENCHMARKS: List[ApplicationBenchmark] = [POSTGRES_PGBENCH, REDIS_BENCHMARK]


@dataclass
class StudyResult:
    """Raw samples plus summary statistics from a longitudinal study run."""

    #: benchmark -> region -> list of measured values from short-lived VMs
    short_lived: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    #: benchmark -> region -> list of (week, value) from a long-lived VM
    long_lived: Dict[str, Dict[str, List[tuple]]] = field(default_factory=dict)
    #: benchmark -> region -> list of values from burstable short-lived VMs
    burstable: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    n_vms: int = 0
    n_samples: int = 0
    weeks: int = 0

    # -- summaries ---------------------------------------------------------
    def component_cov(self, benchmark_name: str, region: Optional[str] = None) -> float:
        """CoV of a benchmark across all short-lived samples (Fig. 4)."""
        per_region = self.short_lived.get(benchmark_name, {})
        values: List[float] = []
        for region_name, samples in per_region.items():
            if region is None or region_name == region:
                values.extend(samples)
        if not values:
            raise KeyError(f"no samples recorded for {benchmark_name!r}")
        return coefficient_of_variation(values)

    def relative_performance(
        self, benchmark_name: str, region: str, burstable: bool = False
    ) -> np.ndarray:
        """Samples normalised by their mean (the y-axis of Figs. 3 and 4)."""
        source = self.burstable if burstable else self.short_lived
        samples = source.get(benchmark_name, {}).get(region, [])
        if not samples:
            raise KeyError(
                f"no samples recorded for {benchmark_name!r} in {region!r}"
                f" (burstable={burstable})"
            )
        arr = np.asarray(samples, dtype=float)
        return arr / arr.mean()

    def long_lived_trace(self, benchmark_name: str, region: str) -> List[tuple]:
        """The (week, value) trace of the long-lived VM (Fig. 6)."""
        trace = self.long_lived.get(benchmark_name, {}).get(region, [])
        if not trace:
            raise KeyError(f"no long-lived trace for {benchmark_name!r} in {region!r}")
        return list(trace)

    def summary_table(self) -> Dict[str, float]:
        """Study-scale numbers in the shape of Table 1's last row."""
        return {
            "weeks": float(self.weeks),
            "samples": float(self.n_samples),
            "instances": float(self.n_vms),
        }


class LongitudinalStudy:
    """Harness that runs the measurement study on the simulated cloud.

    Parameters
    ----------
    regions:
        Region names to sample (paper: ``westus2`` and ``eastus``).
    weeks:
        Study duration in (simulated) weeks.
    short_vms_per_week:
        Number of short-lived VMs provisioned per region per week.
    seed:
        Master seed for reproducibility.
    """

    def __init__(
        self,
        regions: Sequence[str] = ("westus2", "eastus"),
        weeks: int = 68,
        short_vms_per_week: int = 8,
        seed: Optional[int] = None,
        sku: str = "Standard_D8s_v5",
        burstable_sku: str = "Standard_B8ms",
    ) -> None:
        if weeks < 1:
            raise ValueError("weeks must be >= 1")
        if short_vms_per_week < 1:
            raise ValueError("short_vms_per_week must be >= 1")
        self.region_names = list(regions)
        self.weeks = weeks
        self.short_vms_per_week = short_vms_per_week
        self.sku = get_sku(sku)
        self.burstable_sku = get_sku(burstable_sku)
        self._rng = np.random.default_rng(seed)

    def _new_vm(self, region: RegionProfile, sku: VMSku, vm_id: str, lifespan: str) -> VirtualMachine:
        return VirtualMachine(
            vm_id=vm_id,
            sku=sku,
            region=region,
            lifespan=lifespan,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )

    def run(
        self,
        microbenchmarks: Optional[Sequence[Microbenchmark]] = None,
        application_benchmarks: Optional[Sequence[ApplicationBenchmark]] = None,
        include_burstable: bool = True,
    ) -> StudyResult:
        """Execute the study and return all samples plus summaries."""
        microbenchmarks = list(microbenchmarks or MICROBENCHMARKS)
        application_benchmarks = list(application_benchmarks or APPLICATION_BENCHMARKS)
        all_benchmarks = [b.name for b in microbenchmarks] + [
            b.name for b in application_benchmarks
        ]

        result = StudyResult(weeks=self.weeks)
        for name in all_benchmarks:
            result.short_lived[name] = {r: [] for r in self.region_names}
            result.long_lived[name] = {r: [] for r in self.region_names}
            result.burstable[name] = {r: [] for r in self.region_names}

        n_vms = 0
        n_samples = 0
        for region_name in self.region_names:
            region = get_region(region_name)
            long_vm = self._new_vm(region, self.sku, f"long-{region_name}", "long")
            n_vms += 1
            for week in range(self.weeks):
                # --- long-lived VM: one sample of every benchmark per week.
                for bench in microbenchmarks:
                    value = bench.run(long_vm, rng=self._rng)
                    result.long_lived[bench.name][region_name].append((week, value))
                    n_samples += 1
                for bench in application_benchmarks:
                    value = bench.run(long_vm, rng=self._rng)
                    result.long_lived[bench.name][region_name].append((week, value))
                    n_samples += 1
                # Idle the rest of the week.
                long_vm.advance(24.0 * 7 - 2.0)

                # --- short-lived VMs: provision, benchmark once, discard.
                for index in range(self.short_vms_per_week):
                    vm = self._new_vm(
                        region, self.sku, f"short-{region_name}-{week}-{index}", "short"
                    )
                    n_vms += 1
                    for bench in microbenchmarks:
                        result.short_lived[bench.name][region_name].append(
                            bench.run(vm, rng=self._rng)
                        )
                        n_samples += 1
                    for bench in application_benchmarks:
                        result.short_lived[bench.name][region_name].append(
                            bench.run(vm, rng=self._rng)
                        )
                        n_samples += 1

                    if include_burstable:
                        bvm = self._new_vm(
                            region,
                            self.burstable_sku,
                            f"burst-{region_name}-{week}-{index}",
                            "short",
                        )
                        n_vms += 1
                        # Burstable VMs carry a customer workload before the
                        # benchmark lands on them; a sustained busy period
                        # depletes the credit bank on a fraction of them,
                        # which is what produces Fig. 3's bimodality.
                        busy_hours = float(self._rng.uniform(0.0, 24.0))
                        bvm.measure(busy_hours, utilisation=0.9, rng=self._rng)
                        for bench in application_benchmarks:
                            result.burstable[bench.name][region_name].append(
                                bench.run(bvm, rng=self._rng)
                            )
                            n_samples += 1

        result.n_vms = n_vms
        result.n_samples = n_samples
        return result

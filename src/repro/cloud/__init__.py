"""Cloud-platform simulation substrate.

The paper's measurements and tuning runs execute on Azure VMs and CloudLab
bare-metal nodes.  This package provides a synthetic but statistically
faithful stand-in:

* :mod:`repro.cloud.regions` — per-region / per-SKU *noise profiles*
  calibrated to the component-level coefficients of variation reported in
  §3.2 of the paper (CPU 0.17 %, disk 0.36 %, memory 4.92 %, OS 9.82 %,
  cache 14.39 %).
* :mod:`repro.cloud.vm` — a :class:`VirtualMachine` whose per-component
  performance combines a persistent node factor (which physical host you
  landed on), slow temporal drift, noisy-neighbour interference episodes and
  measurement noise, plus burstable-credit accounting.
* :mod:`repro.cloud.cluster` — a :class:`Cluster` of worker VMs plus an
  orchestrator, the execution environment used by the tuners.
* :mod:`repro.cloud.telemetry` — psutil-style guest-OS metrics that expose
  (noisily) the node state, which is what the TUNA noise adjuster learns from.
* :mod:`repro.cloud.microbench` — the five resource microbenchmarks used by
  the longitudinal study (Fig. 4).
* :mod:`repro.cloud.study` — the longitudinal measurement study harness
  (Figs. 3, 4, 6 and Table 1).
"""

from repro.cloud.cluster import Cluster
from repro.cloud.credits import BurstableCreditAccount
from repro.cloud.fleet import FleetGroup, FleetSpec
from repro.cloud.microbench import (
    MICROBENCHMARKS,
    Microbenchmark,
    microbenchmark_by_name,
)
from repro.cloud.regions import (
    AZURE_CENTRALUS,
    AZURE_EASTUS,
    AZURE_WESTUS2,
    CLOUDLAB_WISCONSIN,
    REGIONS,
    SKU_B8MS,
    SKU_C220G5,
    SKU_D8S_V4,
    SKU_D8S_V5,
    SKU_D16S_V5,
    SKUS,
    ComponentNoise,
    RegionProfile,
    VMSku,
    get_region,
    get_sku,
)
from repro.cloud.telemetry import TELEMETRY_METRICS, TelemetrySample
from repro.cloud.vm import Component, VirtualMachine
from repro.cloud.study import LongitudinalStudy, StudyResult

__all__ = [
    "AZURE_CENTRALUS",
    "AZURE_EASTUS",
    "AZURE_WESTUS2",
    "BurstableCreditAccount",
    "CLOUDLAB_WISCONSIN",
    "Cluster",
    "Component",
    "ComponentNoise",
    "FleetGroup",
    "FleetSpec",
    "LongitudinalStudy",
    "MICROBENCHMARKS",
    "Microbenchmark",
    "REGIONS",
    "RegionProfile",
    "SKUS",
    "SKU_B8MS",
    "SKU_C220G5",
    "SKU_D8S_V4",
    "SKU_D8S_V5",
    "SKU_D16S_V5",
    "StudyResult",
    "TELEMETRY_METRICS",
    "TelemetrySample",
    "VMSku",
    "VirtualMachine",
    "get_region",
    "get_sku",
    "microbenchmark_by_name",
]

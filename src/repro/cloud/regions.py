"""Region and SKU noise profiles.

A :class:`RegionProfile` captures, for each hardware/software component, how
much performance varies

* **across nodes** (which physical host a freshly provisioned VM lands on and
  who its neighbours are — dominant for short-lived VMs), and
* **over time within a node** (slow drift plus noisy-neighbour interference
  episodes — what a long-lived VM experiences).

The numbers are calibrated so that the longitudinal study harness reproduces
the coefficients of variation reported in §3.2 of the paper for Azure
D8s_v5 VMs: CPU ≈ 0.17 %, disk ≈ 0.36 %, memory ≈ 4.92 %, OS ≈ 9.82 %,
cache ≈ 14.39 %.  The CloudLab profile instead follows the bare-metal numbers
cited from prior work (§3: "even on bare-metal nodes ... 16.0 % CoV for
memory"), with no virtualisation-related OS overhead variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


COMPONENTS: Tuple[str, ...] = ("cpu", "disk", "memory", "os", "cache", "network")


@dataclass(frozen=True)
class ComponentNoise:
    """Noise description for one component.

    Attributes
    ----------
    node_cov:
        Coefficient of variation of the *persistent* per-node performance
        factor (host heterogeneity + steady neighbour load).
    temporal_cov:
        CoV of slow temporal drift experienced by a single node.
    interference_rate:
        Probability that any given measurement overlaps a noisy-neighbour
        interference episode.
    interference_magnitude:
        Mean fractional slowdown while an episode is active.
    measurement_cov:
        Pure run-to-run measurement noise (same node, back-to-back runs).
    """

    node_cov: float
    temporal_cov: float
    interference_rate: float
    interference_magnitude: float
    measurement_cov: float

    def __post_init__(self) -> None:
        for name in (
            "node_cov",
            "temporal_cov",
            "interference_rate",
            "interference_magnitude",
            "measurement_cov",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.interference_rate > 1.0:
            raise ValueError("interference_rate is a probability and must be <= 1")


@dataclass(frozen=True)
class VMSku:
    """A virtual-machine (or bare-metal) offering.

    ``perf_factor`` is the SKU's baseline-performance factor relative to the
    reference SKU (Standard_D8s_v5 = 1.0): how fast one benchmark run
    executes on this offering, before any noise.  It scales both the
    measured component multipliers and — through
    :meth:`repro.core.execution.ExecutionEngine.duration_hours_for` — the
    wall-clock duration of a sample on a worker of this SKU, so a slow SKU
    genuinely lengthens its own timeline in a mixed fleet.
    """

    name: str
    vcpus: int
    memory_gb: float
    disk_type: str
    burstable: bool = False
    baseline_performance: float = 1.0
    perf_factor: float = 1.0
    # Burstable accounting (only used when ``burstable`` is true).
    credit_accrual_per_hour: float = 0.0
    max_credits: float = 0.0
    burst_performance: float = 1.0
    depleted_performance: float = 0.45
    bare_metal: bool = False

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.perf_factor <= 0:
            raise ValueError("perf_factor must be positive")
        if self.burstable and self.max_credits <= 0:
            raise ValueError("burstable SKUs need max_credits > 0")


@dataclass(frozen=True)
class RegionProfile:
    """Noise profile of one deployment environment (region or testbed)."""

    name: str
    provider: str
    components: Dict[str, ComponentNoise] = field(default_factory=dict)
    # Fraction of freshly provisioned nodes that land on "slow" hosts; used to
    # model regions with fewer high-performing machines (§6.2, centralus).
    slow_host_fraction: float = 0.0
    slow_host_penalty: float = 0.0

    def __post_init__(self) -> None:
        missing = set(COMPONENTS) - set(self.components)
        if missing:
            raise ValueError(f"region {self.name} missing components: {sorted(missing)}")
        if not 0.0 <= self.slow_host_fraction <= 1.0:
            raise ValueError("slow_host_fraction must be in [0, 1]")

    def component(self, name: str) -> ComponentNoise:
        if name not in self.components:
            raise KeyError(f"unknown component {name!r}")
        return self.components[name]


def _azure_components(scale: float = 1.0) -> Dict[str, ComponentNoise]:
    """Azure non-burstable component noise, optionally scaled."""
    return {
        # CPU and disk: the paper finds these nearly noise-free on modern SKUs.
        "cpu": ComponentNoise(0.0012 * scale, 0.0005, 0.004, 0.004, 0.0008),
        "disk": ComponentNoise(0.0025 * scale, 0.0010, 0.006, 0.006, 0.0015),
        # Memory bandwidth: ~4.9 % CoV, mostly neighbour interference.
        "memory": ComponentNoise(0.030 * scale, 0.012, 0.18, 0.055, 0.010),
        # OS operations (VMEXIT heavy): ~9.8 % CoV.
        "os": ComponentNoise(0.060 * scale, 0.025, 0.22, 0.10, 0.025),
        # CPU cache: ~14.4 % CoV, unreserved shared resource.
        "cache": ComponentNoise(0.090 * scale, 0.035, 0.25, 0.14, 0.035),
        # Network: not reported in the study but used by some workloads.
        "network": ComponentNoise(0.020 * scale, 0.010, 0.10, 0.05, 0.010),
    }


def _cloudlab_components() -> Dict[str, ComponentNoise]:
    """Bare-metal CloudLab c220g5: no virtualisation or neighbour noise."""
    return {
        "cpu": ComponentNoise(0.004, 0.002, 0.0, 0.0, 0.002),
        "disk": ComponentNoise(0.020, 0.008, 0.0, 0.0, 0.006),
        "memory": ComponentNoise(0.030, 0.010, 0.0, 0.0, 0.008),
        "os": ComponentNoise(0.010, 0.004, 0.0, 0.0, 0.004),
        "cache": ComponentNoise(0.020, 0.008, 0.0, 0.0, 0.006),
        "network": ComponentNoise(0.050, 0.020, 0.0, 0.0, 0.010),
    }


AZURE_WESTUS2 = RegionProfile(
    name="westus2",
    provider="azure",
    components=_azure_components(scale=1.0),
    slow_host_fraction=0.05,
    slow_host_penalty=0.06,
)

AZURE_EASTUS = RegionProfile(
    name="eastus",
    provider="azure",
    components=_azure_components(scale=1.1),
    slow_host_fraction=0.06,
    slow_host_penalty=0.06,
)

# §6.2: centralus shows fewer high-performing machines — a long tail of slow
# hosts below the upper quartile.
AZURE_CENTRALUS = RegionProfile(
    name="centralus",
    provider="azure",
    components=_azure_components(scale=1.5),
    slow_host_fraction=0.25,
    slow_host_penalty=0.12,
)

CLOUDLAB_WISCONSIN = RegionProfile(
    name="cloudlab-wisconsin",
    provider="cloudlab",
    components=_cloudlab_components(),
    slow_host_fraction=0.0,
    slow_host_penalty=0.0,
)

REGIONS: Dict[str, RegionProfile] = {
    region.name: region
    for region in (AZURE_WESTUS2, AZURE_EASTUS, AZURE_CENTRALUS, CLOUDLAB_WISCONSIN)
}


SKU_D8S_V5 = VMSku(
    name="Standard_D8s_v5",
    vcpus=8,
    memory_gb=32.0,
    disk_type="ssdv2",
    burstable=False,
)

SKU_B8MS = VMSku(
    name="Standard_B8ms",
    vcpus=8,
    memory_gb=32.0,
    disk_type="premium-ssd",
    burstable=True,
    baseline_performance=0.40,
    credit_accrual_per_hour=192.0,
    max_credits=4608.0,
    burst_performance=1.0,
    depleted_performance=0.45,
)

SKU_C220G5 = VMSku(
    name="c220g5",
    vcpus=40,
    memory_gb=192.0,
    disk_type="sas-hdd",
    burstable=False,
    bare_metal=True,
)

# Heterogeneous-fleet SKUs: a previous-generation offering and a larger
# current-generation one, differing only in baseline performance.  The noise
# structure stays the region's; the perf factor shifts the whole distribution
# (and the per-sample duration) the way a slower/faster part does.
SKU_D8S_V4 = VMSku(
    name="Standard_D8s_v4",
    vcpus=8,
    memory_gb=32.0,
    disk_type="premium-ssd",
    burstable=False,
    perf_factor=0.75,
)

SKU_D16S_V5 = VMSku(
    name="Standard_D16s_v5",
    vcpus=16,
    memory_gb=64.0,
    disk_type="ssdv2",
    burstable=False,
    perf_factor=1.45,
)

SKUS: Dict[str, VMSku] = {
    sku.name: sku
    for sku in (SKU_D8S_V5, SKU_B8MS, SKU_C220G5, SKU_D8S_V4, SKU_D16S_V5)
}


def get_region(name: str) -> RegionProfile:
    """Look up a region profile by name."""
    if name not in REGIONS:
        raise KeyError(f"unknown region {name!r}; known: {sorted(REGIONS)}")
    return REGIONS[name]


def get_sku(name: str) -> VMSku:
    """Look up a VM SKU by name."""
    if name not in SKUS:
        raise KeyError(f"unknown SKU {name!r}; known: {sorted(SKUS)}")
    return SKUS[name]

"""Heterogeneous fleet specifications: per-worker (region, SKU) assignments.

The paper's cloud study (§3) calibrates noise profiles per region and SKU,
but a tuning run that models the equal-cost comparisons faithfully must be
able to *span* those environments: part of the cluster on current-generation
VMs in one region, part on older or larger SKUs elsewhere.  A
:class:`FleetSpec` describes such a mixed fleet as an ordered list of
:class:`FleetGroup` blocks; :class:`~repro.cloud.cluster.Cluster` expands it
into one worker VM per assignment, in order, so the same seed always builds
the same fleet.

A single-group spec is exactly the legacy homogeneous cluster: building a
``Cluster`` from ``FleetSpec.homogeneous(n, region, sku)`` provisions
bit-for-bit the same workers as ``Cluster(n_workers=n, region=..., sku=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

from repro.cloud.regions import RegionProfile, VMSku, get_region, get_sku


@dataclass(frozen=True)
class FleetGroup:
    """A block of identical workers: ``count`` nodes of one region and SKU."""

    region: RegionProfile
    sku: VMSku
    count: int

    def __post_init__(self) -> None:
        if not isinstance(self.region, RegionProfile):
            raise TypeError("region must be a RegionProfile (resolve names first)")
        if not isinstance(self.sku, VMSku):
            raise TypeError("sku must be a VMSku (resolve names first)")
        if self.count < 1:
            raise ValueError("a fleet group needs at least one worker")


#: Loose input form accepted by :meth:`FleetSpec.of`: (region, sku) pairs or
#: (region, sku, count) triples, with region/SKU given by object or by name.
GroupLike = Union[
    FleetGroup,
    Tuple["RegionProfile | str", "VMSku | str"],
    Tuple["RegionProfile | str", "VMSku | str", int],
]


class FleetSpec:
    """An ordered description of a (possibly mixed) worker fleet."""

    def __init__(self, groups: Sequence[FleetGroup]) -> None:
        groups = list(groups)
        if not groups:
            raise ValueError("a fleet needs at least one group of workers")
        self.groups: List[FleetGroup] = groups
        if self.n_workers < 1:  # unreachable while FleetGroup enforces count>=1
            raise ValueError("a fleet needs at least one worker")

    # -- constructors -------------------------------------------------------
    @classmethod
    def of(cls, groups: Iterable[GroupLike]) -> "FleetSpec":
        """Build a spec from loose (region, sku[, count]) tuples.

        Region and SKU may be given by name; unknown names raise ``KeyError``
        at construction time, before any worker is provisioned.
        """
        resolved: List[FleetGroup] = []
        for group in groups:
            if isinstance(group, FleetGroup):
                resolved.append(group)
                continue
            if len(group) == 2:
                region, sku = group
                count = 1
            elif len(group) == 3:
                region, sku, count = group
            else:
                raise ValueError(
                    "fleet groups are (region, sku) or (region, sku, count) "
                    f"tuples, got {group!r}"
                )
            region = get_region(region) if isinstance(region, str) else region
            sku = get_sku(sku) if isinstance(sku, str) else sku
            resolved.append(FleetGroup(region, sku, int(count)))
        return cls(resolved)

    @classmethod
    def homogeneous(
        cls,
        n_workers: int,
        region: "RegionProfile | str",
        sku: "VMSku | str",
    ) -> "FleetSpec":
        """The legacy single-region, single-SKU cluster as a one-group spec."""
        if n_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        region = get_region(region) if isinstance(region, str) else region
        sku = get_sku(sku) if isinstance(sku, str) else sku
        return cls([FleetGroup(region, sku, n_workers)])

    # -- views --------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return sum(group.count for group in self.groups)

    @property
    def assignments(self) -> List[Tuple[RegionProfile, VMSku]]:
        """One (region, sku) pair per worker, in provisioning order."""
        pairs: List[Tuple[RegionProfile, VMSku]] = []
        for group in self.groups:
            pairs.extend((group.region, group.sku) for _ in range(group.count))
        return pairs

    @property
    def is_homogeneous(self) -> bool:
        """True when every worker shares one region and one SKU.

        Value equality, not identity: regions and SKUs are frozen
        dataclasses, so a structurally identical profile passed by object
        counts as the same environment.
        """
        first = self.groups[0]
        return all(
            group.region == first.region and group.sku == first.sku
            for group in self.groups
        )

    @property
    def primary_region(self) -> RegionProfile:
        return self.groups[0].region

    @property
    def primary_sku(self) -> VMSku:
        return self.groups[0].sku

    def region_names(self) -> List[str]:
        """Distinct region names, in first-appearance order."""
        return list(dict.fromkeys(group.region.name for group in self.groups))

    def sku_names(self) -> List[str]:
        """Distinct SKU names, in first-appearance order."""
        return list(dict.fromkeys(group.sku.name for group in self.groups))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        blocks = ", ".join(
            f"{g.count}x {g.sku.name}@{g.region.name}" for g in self.groups
        )
        return f"FleetSpec({blocks})"

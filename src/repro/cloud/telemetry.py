"""Guest-OS telemetry generation (psutil stand-in).

The paper's noise adjuster (§4.3) feeds *all* available ``psutil`` metrics,
plus a one-hot worker id, into a random-forest model that predicts how far a
sample deviates from the configuration's mean performance.  For that to work
in simulation, the telemetry must (noisily) reflect the node state that
actually perturbed the measurement: interference levels, credit depletion,
and the resource demands of the configuration being run.

:class:`TelemetrySample` produces a fixed-order vector of such metrics from a
:class:`~repro.cloud.vm.MeasurementContext` and the SuT resource-usage
profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cloud.vm import MeasurementContext


#: Fixed metric order so feature matrices are reproducible across runs.
TELEMETRY_METRICS: List[str] = [
    "cpu_percent",
    "cpu_user",
    "cpu_system",
    "cpu_iowait",
    "cpu_steal",
    "cpu_ctx_switches_per_s",
    "cpu_interrupts_per_s",
    "load_avg_1m",
    "mem_used_percent",
    "mem_available_gb",
    "mem_page_faults_per_s",
    "mem_swap_used_percent",
    "mem_bandwidth_util",
    "cache_miss_ratio",
    "cache_references_per_s",
    "disk_read_mb_per_s",
    "disk_write_mb_per_s",
    "disk_util_percent",
    "disk_await_ms",
    "net_sent_mb_per_s",
    "net_recv_mb_per_s",
    "os_syscalls_per_s",
    "os_threads",
    "os_open_files",
    "vmexit_rate",
]


#: Metric name -> position in a telemetry vector (for in-place overlays).
_METRIC_INDEX: Dict[str, int] = {name: i for i, name in enumerate(TELEMETRY_METRICS)}


def apply_interference_signature(vector: np.ndarray, stretch: float) -> np.ndarray:
    """Overlay the guest-visible footprint of an injected runtime stretch.

    When the fault subsystem stretches a run (interference burst, brownout,
    heavy-tail slowdown), the guest OS would have *seen* something: steal
    time, iowait, load, cache misses.  This helper rewrites those metrics in
    a telemetry vector so the noise adjuster receives a signal correlated
    with the very fault that perturbed the measurement — the same property
    the simulator already guarantees for its native interference episodes.

    ``stretch <= 1.0`` returns the vector unchanged (the same object), so
    runs without fault injection are bit-for-bit identical.  The overlay is
    deterministic — the stochasticity lives in the fault model's draw, not
    here.
    """
    if stretch <= 1.0:
        return vector
    adjusted = np.array(vector, dtype=float, copy=True)
    excess = min(float(stretch) - 1.0, 4.0)
    saturation = excess / (1.0 + excess)  # (0, 0.8]: diminishing footprint
    adjusted[_METRIC_INDEX["cpu_steal"]] += 70.0 * saturation
    adjusted[_METRIC_INDEX["cpu_iowait"]] += 25.0 * saturation
    adjusted[_METRIC_INDEX["cpu_percent"]] = min(
        100.0, adjusted[_METRIC_INDEX["cpu_percent"]] + 15.0 * saturation
    )
    adjusted[_METRIC_INDEX["load_avg_1m"]] *= 1.0 + excess
    adjusted[_METRIC_INDEX["cache_miss_ratio"]] = min(
        0.98, adjusted[_METRIC_INDEX["cache_miss_ratio"]] * (1.0 + 0.5 * saturation)
    )
    adjusted[_METRIC_INDEX["mem_bandwidth_util"]] *= 1.0 + 0.6 * saturation
    adjusted[_METRIC_INDEX["disk_await_ms"]] *= 1.0 + excess
    return adjusted


@dataclass
class TelemetrySample:
    """A single guest-OS metric snapshot taken during a measurement."""

    metrics: Dict[str, float]

    def as_vector(self) -> np.ndarray:
        """Return the metrics as a vector in :data:`TELEMETRY_METRICS` order."""
        return np.array([self.metrics[name] for name in TELEMETRY_METRICS], dtype=float)

    @staticmethod
    def metric_names() -> List[str]:
        return list(TELEMETRY_METRICS)

    def __getitem__(self, name: str) -> float:
        return self.metrics[name]

    @classmethod
    def collect(
        cls,
        context: MeasurementContext,
        usage: Dict[str, float],
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.03,
    ) -> "TelemetrySample":
        """Generate a telemetry snapshot.

        Parameters
        ----------
        context:
            Node state of the measurement (interference, multipliers, credits).
        usage:
            SuT resource demand per component in ``[0, 1]`` (keys ``cpu``,
            ``disk``, ``memory``, ``os``, ``cache``, ``network``); produced by
            the system simulators.
        rng:
            RNG for metric observation noise.
        jitter:
            Relative observation noise applied to every metric, modelling the
            fact that psutil counters are themselves sampled.
        """
        # Deterministic fallback: callers that care about varied observation
        # noise must thread their own seeded stream (production paths all do).
        rng = rng if rng is not None else np.random.default_rng(0)

        def noisy(value: float) -> float:
            return float(max(value * (1.0 + rng.normal(0.0, jitter)), 0.0))

        cpu_demand = float(usage.get("cpu", 0.3))
        disk_demand = float(usage.get("disk", 0.2))
        mem_demand = float(usage.get("memory", 0.3))
        os_demand = float(usage.get("os", 0.2))
        cache_demand = float(usage.get("cache", 0.3))
        net_demand = float(usage.get("network", 0.1))

        interference = context.interference
        cpu_inter = interference.get("cpu", 0.0)
        mem_inter = interference.get("memory", 0.0)
        os_inter = interference.get("os", 0.0)
        cache_inter = interference.get("cache", 0.0)
        disk_inter = interference.get("disk", 0.0)
        net_inter = interference.get("network", 0.0)

        # When a component is slowed, the guest sees higher utilisation /
        # queueing for the same demand, plus steal time for CPU interference.
        cpu_percent = min(100.0, 100.0 * cpu_demand / max(context.multiplier("cpu"), 0.1))
        disk_util = min(100.0, 100.0 * disk_demand / max(context.multiplier("disk"), 0.1))
        mem_bw_util = min(1.0, mem_demand / max(context.multiplier("memory"), 0.1))
        metrics: Dict[str, float] = {
            "cpu_percent": noisy(cpu_percent),
            "cpu_user": noisy(cpu_percent * 0.7),
            "cpu_system": noisy(cpu_percent * 0.2 + 30.0 * os_demand),
            "cpu_iowait": noisy(25.0 * disk_demand + 40.0 * disk_inter),
            "cpu_steal": noisy(60.0 * cpu_inter + 5.0 * (1.0 - context.burst_fraction)),
            "cpu_ctx_switches_per_s": noisy(2e4 * os_demand * (1.0 + 2.0 * os_inter)),
            "cpu_interrupts_per_s": noisy(8e3 * (disk_demand + net_demand)),
            "load_avg_1m": noisy(8.0 * cpu_demand + 4.0 * disk_demand),
            "mem_used_percent": noisy(min(100.0, 95.0 * mem_demand + 5.0)),
            "mem_available_gb": noisy(max(32.0 * (1.0 - mem_demand), 0.5)),
            "mem_page_faults_per_s": noisy(1e3 * mem_demand * (1.0 + 3.0 * mem_inter)),
            "mem_swap_used_percent": noisy(5.0 * max(mem_demand - 0.9, 0.0) * 20.0),
            "mem_bandwidth_util": noisy(mem_bw_util),
            "cache_miss_ratio": noisy(
                min(0.95, 0.15 + 0.5 * cache_demand * (1.0 + 2.0 * cache_inter))
            ),
            "cache_references_per_s": noisy(5e6 * cache_demand),
            "disk_read_mb_per_s": noisy(180.0 * disk_demand * context.multiplier("disk")),
            "disk_write_mb_per_s": noisy(120.0 * disk_demand * context.multiplier("disk")),
            "disk_util_percent": noisy(disk_util),
            "disk_await_ms": noisy(1.5 / max(context.multiplier("disk"), 0.1)),
            "net_sent_mb_per_s": noisy(50.0 * net_demand * context.multiplier("network")),
            "net_recv_mb_per_s": noisy(80.0 * net_demand * context.multiplier("network")),
            "os_syscalls_per_s": noisy(5e4 * os_demand * (1.0 + 1.5 * os_inter)),
            "os_threads": noisy(80.0 + 300.0 * cpu_demand),
            "os_open_files": noisy(400.0 + 2000.0 * disk_demand),
            "vmexit_rate": noisy(1e4 * os_demand * (1.0 + 4.0 * os_inter)),
        }
        return cls(metrics=metrics)

"""Redis simulator.

The paper tunes Redis for 95th-percentile latency under YCSB-C (§6.4,
Fig. 14).  The headline behaviour to reproduce is not a large latency
headroom (the paper finds TUNA's latency roughly on par with the default) but
the *crash* behaviour: several configurations found by traditional sampling
crash Redis with out-of-memory errors on a fraction of nodes, and even the
default crashes occasionally, while TUNA's configurations never crash.

The model therefore tracks the peak memory footprint of the store —
per-object overhead controlled by data-structure knobs, plus the
copy-on-write spike caused by persistence forks (RDB snapshots / AOF
rewrites) — and crashes the run when the footprint exceeds the memory the
node can actually provide.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.cloud.telemetry import TelemetrySample
from repro.cloud.vm import VirtualMachine
from repro.configspace import (
    BooleanParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    IntegerParameter,
)
from repro.systems.base import EvaluationResult, SystemUnderTest
from repro.workloads.base import Objective, Workload, WorkloadKind


def build_redis_knob_space(seed: int = 0) -> ConfigurationSpace:
    """The Redis knob space used by the reproduction (12 knobs)."""
    space = ConfigurationSpace(seed=seed)
    space.add(IntegerParameter("maxmemory_mb", 512, 30_720, default=28_672, log=True))
    space.add(
        CategoricalParameter(
            "maxmemory_policy",
            ["noeviction", "allkeys-lru", "allkeys-lfu", "volatile-lru", "allkeys-random"],
            default="noeviction",
        )
    )
    space.add(IntegerParameter("maxmemory_samples", 1, 10, default=5))
    space.add(BooleanParameter("appendonly", default=False))
    space.add(
        CategoricalParameter("appendfsync", ["always", "everysec", "no"], default="everysec")
    )
    space.add(
        CategoricalParameter(
            "save_snapshot", ["disabled", "default", "aggressive"], default="default"
        )
    )
    space.add(IntegerParameter("io_threads", 1, 8, default=1))
    space.add(
        IntegerParameter("hash_max_listpack_entries", 32, 4_096, default=128, log=True)
    )
    space.add(BooleanParameter("activerehashing", default=True))
    space.add(BooleanParameter("lazyfree_lazy_eviction", default=False))
    space.add(IntegerParameter("tcp_backlog", 128, 4_096, default=511, log=True))
    space.add(BooleanParameter("cluster_enabled", default=False))
    return space


class RedisSystem(SystemUnderTest):
    """Simulated Redis key-value store."""

    name = "redis"

    #: In-memory expansion factor of the raw dataset (object headers, dict
    #: entries, expires table) at the default listpack settings.
    BASE_OVERHEAD = 1.55

    def __init__(self) -> None:
        super().__init__()
        self._default = self.knob_space.default_configuration()

    def build_knob_space(self) -> ConfigurationSpace:
        return build_redis_knob_space()

    def supports(self, workload: Workload) -> bool:
        return workload.kind is WorkloadKind.KEY_VALUE

    # ------------------------------------------------------------------ model
    def _structure_overhead(self, config: Configuration) -> float:
        """Per-object memory overhead as a function of data-structure knobs."""
        entries = float(config["hash_max_listpack_entries"])
        # Larger listpacks pack small hashes more densely (less overhead) at
        # the cost of more CPU per access.
        packing = 1.0 - 0.10 * math.log(entries / 128.0, 32.0) if entries >= 128 else 1.0 + 0.06
        return self.BASE_OVERHEAD * float(np.clip(packing, 0.8, 1.2))

    def _memory_state(
        self, config: Configuration, workload: Workload, memory_mb: float
    ) -> Dict[str, float]:
        """Resident size, persistence spike and available memory (all MB)."""
        resident = workload.dataset_mb * self._structure_overhead(config)
        maxmemory = float(config["maxmemory_mb"])
        evicting = (
            config["maxmemory_policy"] != "noeviction" and maxmemory < resident
        )
        if evicting:
            resident = maxmemory

        # Persistence forks copy-on-write a fraction of the resident set; the
        # dirty fraction scales with the write rate of the workload.
        snapshot = config["save_snapshot"]
        fork_active = snapshot != "disabled" or config["appendonly"]
        dirty_fraction = 0.12 + 0.5 * workload.write_fraction
        if snapshot == "aggressive":
            dirty_fraction += 0.10
        spike = resident * dirty_fraction if fork_active else 0.0

        os_reserved = 1_600.0  # kernel, page cache floor, client buffers
        return {
            "resident_mb": resident,
            "spike_mb": spike,
            "peak_mb": resident + spike + os_reserved,
            "available_mb": memory_mb,
            "evicting": 1.0 if evicting else 0.0,
        }

    def _crash_probability(self, peak_mb: float, memory_mb: float) -> float:
        """OOM probability as the peak footprint approaches physical memory."""
        ratio = peak_mb / memory_mb
        if ratio <= 0.92:
            return 0.0
        return float(min(1.0, (ratio - 0.92) * 6.0))

    def _p95_latency_ms(
        self,
        config: Configuration,
        workload: Workload,
        memory_state: Dict[str, float],
        slowdown: float,
        rng: np.random.Generator,
    ) -> float:
        base = 0.92 * workload.baseline_performance  # tail floor of the default setup

        # Misses / evictions: if maxmemory is below the working set even the
        # hot keys churn, adding latency.
        maxmemory = float(config["maxmemory_mb"])
        policy = config["maxmemory_policy"]
        miss_penalty = 0.0
        if memory_state["evicting"]:
            coverage = min(maxmemory / workload.working_set_mb, 1.0)
            policy_quality = {
                "allkeys-lru": 0.9,
                "allkeys-lfu": 1.0,
                "volatile-lru": 0.6,
                "allkeys-random": 0.4,
                "noeviction": 0.0,
            }[policy]
            samples = float(config["maxmemory_samples"])
            policy_quality *= 0.7 + 0.3 * min(samples / 5.0, 1.0)
            miss_rate = max(0.0, 1.0 - coverage ** (1.0 / (1.0 + workload.skew)))
            miss_penalty = 0.5 * miss_rate * (1.1 - policy_quality)

        # Persistence stalls raise the tail.
        tail = 0.0
        if config["save_snapshot"] == "aggressive":
            tail += 0.10
        elif config["save_snapshot"] == "default":
            tail += 0.04
        if config["appendonly"]:
            tail += {"always": 0.35, "everysec": 0.06, "no": 0.02}[config["appendfsync"]]
        if config["activerehashing"]:
            tail += 0.015
        if not config["lazyfree_lazy_eviction"] and memory_state["evicting"]:
            tail += 0.05

        # IO threads and a deeper accept backlog shave the tail under load.
        io_threads = float(config["io_threads"])
        tail_relief = 0.12 * (1.0 - 1.0 / io_threads)
        backlog = float(config["tcp_backlog"])
        tail_relief += 0.03 * min(math.log2(backlog / 511.0 + 1.0), 1.5) if backlog >= 511 else -0.02
        if config["cluster_enabled"]:
            tail += 0.04  # cluster bus overhead on a single node

        # Larger listpacks cost CPU per access.
        entries = float(config["hash_max_listpack_entries"])
        cpu_penalty = 0.04 * max(math.log(entries / 128.0, 8.0), 0.0)

        latency = base * (1.0 + miss_penalty + cpu_penalty) + workload.baseline_performance * (
            tail - tail_relief
        ) * 0.5
        latency *= slowdown
        latency *= float(max(rng.normal(1.0, 0.015), 0.5))
        return float(max(latency, 0.05))

    # ------------------------------------------------------------------ run
    def run(
        self,
        config: Configuration,
        workload: Workload,
        vm: VirtualMachine,
        rng: Optional[np.random.Generator] = None,
        collect_telemetry: bool = True,
    ) -> EvaluationResult:
        self._check_workload(workload)
        # Deterministic fallback: interactive calls without an rng repeat
        # bit-for-bit; varied noise requires an explicit seeded stream.
        rng = rng if rng is not None else np.random.default_rng(0)
        memory_mb = vm.sku.memory_gb * 1024.0

        duration = workload.duration_hours if workload.duration_hours > 0 else 0.05
        context = vm.measure(duration, utilisation=0.8, rng=rng)

        # The memory actually available on the node wobbles with interference
        # (other agents, page-cache pressure), which is why the same
        # aggressive configuration crashes only on some nodes.
        memory_state = self._memory_state(config, workload, memory_mb)
        effective_memory = memory_mb * float(
            np.clip(context.multiplier("memory"), 0.85, 1.1)
        )
        crash_probability = self._crash_probability(
            memory_state["peak_mb"], effective_memory
        )
        details = {
            "peak_mb": memory_state["peak_mb"],
            "resident_mb": memory_state["resident_mb"],
            "crash_probability": crash_probability,
        }
        if crash_probability > 0 and rng.random() < crash_probability:
            return EvaluationResult(
                objective_value=float("nan"),
                objective=workload.objective,
                crashed=True,
                resource_usage={},
                telemetry=None,
                context=context,
                details=details,
            )

        demands = dict(workload.component_demands)
        slowdown = self._weighted_slowdown(demands, context)
        latency = self._p95_latency_ms(config, workload, memory_state, slowdown, rng)

        usage = self._normalise_demands(demands)
        usage = {k: min(v * 1.5, 1.0) for k, v in usage.items()}
        usage["memory"] = min(memory_state["resident_mb"] / memory_mb, 1.0)
        telemetry = (
            TelemetrySample.collect(context, usage, rng=rng) if collect_telemetry else None
        )
        details["slowdown"] = slowdown
        return EvaluationResult(
            objective_value=latency,
            objective=Objective.P95_LATENCY,
            crashed=False,
            resource_usage=usage,
            telemetry=telemetry,
            context=context,
            details=details,
        )

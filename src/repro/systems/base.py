"""Common System-under-Test interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cloud.telemetry import TelemetrySample
from repro.cloud.vm import MeasurementContext, VirtualMachine
from repro.configspace import Configuration, ConfigurationSpace
from repro.workloads.base import Objective, Workload


@dataclass
class EvaluationResult:
    """Outcome of running one configuration of a system on one VM.

    Attributes
    ----------
    objective_value:
        Measured value in the workload objective's unit (tx/s, seconds, ms).
        For crashed runs this is the value *after* the crash penalty has been
        applied by the caller — the raw result carries ``crashed=True`` and
        an objective value of ``nan`` until penalised.
    objective:
        Which objective the value refers to.
    crashed:
        Whether the system crashed during the run (e.g. Redis OOM).
    resource_usage:
        Per-component demand in ``[0, 1]`` — the usage profile handed to the
        telemetry generator.
    telemetry:
        Guest-OS metrics sampled during the run (``None`` for crashed runs).
    context:
        The node state the run observed.
    details:
        Model internals useful for analysis and tests (plan quality, buffer
        hit ratio, …).
    """

    objective_value: float
    objective: Objective
    crashed: bool = False
    resource_usage: Dict[str, float] = field(default_factory=dict)
    telemetry: Optional[TelemetrySample] = None
    context: Optional[MeasurementContext] = None
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def higher_is_better(self) -> bool:
        return self.objective.higher_is_better


class SystemUnderTest(abc.ABC):
    """A tunable system with a knob space and a performance model."""

    #: Human-readable system name, e.g. ``"postgres"``.
    name: str = "abstract"

    def __init__(self) -> None:
        self._space = self.build_knob_space()

    # -- knob space ----------------------------------------------------------
    @abc.abstractmethod
    def build_knob_space(self) -> ConfigurationSpace:
        """Construct the system's configuration space (called once)."""

    @property
    def knob_space(self) -> ConfigurationSpace:
        return self._space

    def default_configuration(self) -> Configuration:
        return self._space.default_configuration()

    # -- workloads ----------------------------------------------------------
    @abc.abstractmethod
    def supports(self, workload: Workload) -> bool:
        """Whether this system can run the given workload."""

    def _check_workload(self, workload: Workload) -> None:
        if not self.supports(workload):
            raise ValueError(
                f"system {self.name!r} does not support workload {workload.name!r}"
            )

    # -- evaluation ----------------------------------------------------------
    @abc.abstractmethod
    def run(
        self,
        config: Configuration,
        workload: Workload,
        vm: VirtualMachine,
        rng: Optional[np.random.Generator] = None,
        collect_telemetry: bool = True,
    ) -> EvaluationResult:
        """Run ``workload`` under ``config`` on ``vm`` and measure performance."""

    # -- helpers shared by the concrete systems -------------------------------
    @staticmethod
    def _weighted_slowdown(
        demands: Dict[str, float], context: MeasurementContext
    ) -> float:
        """Average inverse speed over components, weighted by demand share.

        ``demands`` holds the share of run time attributable to each
        component under the *current* configuration; dividing each share by
        the node's component multiplier yields the platform-induced slowdown
        for this particular measurement.
        """
        total = sum(demands.values())
        if total <= 0:
            raise ValueError("demand shares must sum to a positive value")
        slowdown = 0.0
        for component, share in demands.items():
            slowdown += (share / total) / max(context.multiplier(component), 0.05)
        return slowdown

    @staticmethod
    def _normalise_demands(demands: Dict[str, float]) -> Dict[str, float]:
        total = sum(demands.values())
        if total <= 0:
            raise ValueError("demand shares must sum to a positive value")
        return {component: share / total for component, share in demands.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(knobs={len(self.knob_space)})"


def crash_penalty_value(workload: Workload, observed_worst: float) -> float:
    """Penalty objective value assigned to a crashed run.

    Follows the paper's methodology (§6.4): crashed runs are replaced with
    the worst value observed for the default configuration rather than with
    infinity.  For throughput objectives the penalty is a very low
    throughput instead.
    """
    if workload.higher_is_better:
        return max(observed_worst, 1e-6)
    return observed_worst

"""Query-planner model: the root cause of unstable configurations.

The paper traces unstable TPC-C configurations to the planner (§3.2.1): the
two top candidate plans for the JOIN query are *estimated* to cost almost the
same, but one of them is in reality two orders of magnitude slower.  Which of
the two gets picked on a given machine depends on minute differences in the
cost model's inputs (statistics samples, cached relation sizes), so well- and
badly-performing machines coexist for the same configuration.

This module reproduces that mechanism:

* A **robust plan** (hash join, falling back to merge join) whose estimated
  and true costs are both moderate.
* A **risky plan** (index nested loop over a mis-estimated correlated
  predicate) whose estimated cost is driven down by ``random_page_cost`` and
  ``effective_io_concurrency``, but whose true cost is 25-80× the robust plan.
* Per-node estimation perturbations whose magnitude shrinks with
  ``default_statistics_target``; when the two estimates are near-tied, the
  perturbation decides — differently on different nodes.

The outcome is exactly the paper's taxonomy: configurations where the risky
plan is estimated clearly worse are *stable good*; where it is estimated
clearly better they are *stable bad* (and quickly discarded by the tuner);
in the near-tie band they are *unstable*.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.configspace import Configuration
from repro.workloads.base import Workload


@dataclass
class PlanOutcome:
    """Result of planning the workload's plan-sensitive queries."""

    #: Execution-time multiplier applied to the plan-sensitive fraction of the
    #: workload (1.0 = the robust plan; >> 1 = the risky plan misfired).
    multiplier: float
    #: Name of the selected plan.
    plan_name: str
    #: Estimated cost gap (risky - robust); small absolute values mean the
    #: configuration sits in the unstable near-tie band.
    estimated_gap: float
    #: Probability that a random node picks the risky plan for this config.
    risky_probability: float

    @property
    def picked_risky(self) -> bool:
        return self.plan_name == "risky_index_nestloop"


class QueryPlanner:
    """Deterministic-per-node candidate-plan selection model."""

    #: True execution-time multiplier of the risky plan relative to the robust
    #: one (before workload-specific join complexity scaling).
    RISKY_TRUE_MULTIPLIER = 30.0

    def __init__(self, estimation_noise: float = 0.05, run_jitter: float = 0.015) -> None:
        if estimation_noise <= 0:
            raise ValueError("estimation_noise must be positive")
        self.estimation_noise = estimation_noise
        self.run_jitter = run_jitter

    # -- candidate cost estimates -------------------------------------------------
    @staticmethod
    def robust_plan_cost(config: Configuration) -> float:
        """Estimated cost of the best *robust* join plan available."""
        spill_penalty = 0.12 if config["work_mem_mb"] < 8 else 0.0
        if config["enable_hashjoin"]:
            return 1.0 + spill_penalty
        if config["enable_mergejoin"]:
            return 1.40 + spill_penalty
        # Only nested-loop style plans remain; the "robust" fallback is an
        # expensive materialised nested loop.
        return 1.90

    @staticmethod
    def risky_plan_available(config: Configuration) -> bool:
        return bool(
            config["enable_nestloop"]
            and (config["enable_indexscan"] or config["enable_bitmapscan"])
        )

    @staticmethod
    def risky_plan_cost(config: Configuration) -> float:
        """Estimated cost of the risky index-nested-loop plan.

        Lowering ``random_page_cost`` (a very common SSD tuning move) and
        raising ``effective_io_concurrency`` make index probes look cheap,
        dragging the estimate below the robust plan's.
        """
        rpc = float(config["random_page_cost"])
        eic = float(config["effective_io_concurrency"])
        io_discount = 0.10 * np.log10(max(eic, 1.0)) / np.log10(512.0)
        return 0.75 + 0.16 * rpc - io_discount

    def estimation_sigma(self, config: Configuration) -> float:
        """Per-node estimation noise; better statistics narrow the spread."""
        stats_target = float(config["default_statistics_target"])
        return self.estimation_noise * (100.0 / stats_target) ** 0.3

    # -- node-specific perturbation -------------------------------------------------
    @staticmethod
    def _node_unit(vm_id: str, config: Configuration) -> float:
        """Deterministic uniform(0,1) draw for a (node, config) pair.

        The same configuration evaluated again on the same node sees (almost)
        the same statistics and cached state, so its plan choice should be
        consistent there, while different nodes may disagree — which is what
        a hash of (node id, config signature) provides.
        """
        signature = repr(sorted(config.as_dict().items()))
        digest = hashlib.sha256(f"{vm_id}|{signature}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / float(2**64)

    # -- selection -------------------------------------------------------------------
    def plan(
        self,
        config: Configuration,
        workload: Workload,
        vm_id: str,
        rng: Optional[np.random.Generator] = None,
    ) -> PlanOutcome:
        """Choose a plan for the workload's plan-sensitive queries on a node."""
        if workload.plan_sensitivity <= 0.0:
            return PlanOutcome(1.0, "robust", float("inf"), 0.0)

        robust_cost = self.robust_plan_cost(config)
        if not self.risky_plan_available(config):
            return PlanOutcome(1.0, "robust", float("inf"), 0.0)

        risky_cost = self.risky_plan_cost(config)
        sigma = self.estimation_sigma(config)
        gap = risky_cost - robust_cost

        # Probability that estimation noise flips the comparison on a node.
        risky_probability = float(
            1.0 - _normal_cdf(gap / (np.sqrt(2.0) * sigma))
        )

        # Deterministic node draw plus a little run-to-run jitter (autovacuum
        # and ANALYZE refresh statistics between runs).
        unit = self._node_unit(vm_id, config)
        if rng is not None and self.run_jitter > 0:
            unit = float(np.clip(unit + rng.normal(0.0, self.run_jitter), 0.0, 1.0))

        if unit < risky_probability:
            multiplier = self.RISKY_TRUE_MULTIPLIER * (
                1.0 + 1.5 * workload.join_complexity
            )
            return PlanOutcome(multiplier, "risky_index_nestloop", gap, risky_probability)
        return PlanOutcome(1.0, "robust", gap, risky_probability)


def _normal_cdf(x: float) -> float:
    """Standard normal CDF without importing scipy at module import time."""
    from math import erf, sqrt

    return 0.5 * (1.0 + erf(x / sqrt(2.0)))

"""PostgreSQL 16 knob space.

A 20-knob subset of the PostgreSQL configuration covering the knobs that
matter for the paper's workloads: buffer management, WAL / checkpointing,
per-operation memory, parallel query, planner cost constants and the
``enable_*`` plan-method switches whose interactions produce unstable
configurations (§3.2.1).  Defaults follow the stock ``postgresql.conf``.
"""

from __future__ import annotations

from repro.configspace import (
    BooleanParameter,
    ConfigurationSpace,
    FloatParameter,
    IntegerParameter,
)


def build_postgres_knob_space(seed: int = 0) -> ConfigurationSpace:
    """Build the PostgreSQL knob space used throughout the reproduction."""
    space = ConfigurationSpace(seed=seed)

    # --- memory / buffers
    space.add(IntegerParameter("shared_buffers_mb", 16, 16_384, default=128, log=True))
    space.add(
        IntegerParameter("effective_cache_size_mb", 64, 24_576, default=4_096, log=True)
    )
    space.add(IntegerParameter("work_mem_mb", 1, 2_048, default=4, log=True))
    space.add(
        IntegerParameter("maintenance_work_mem_mb", 16, 2_048, default=64, log=True)
    )

    # --- WAL / checkpointing
    space.add(IntegerParameter("wal_buffers_mb", 1, 256, default=16, log=True))
    space.add(IntegerParameter("max_wal_size_mb", 256, 16_384, default=1_024, log=True))
    space.add(
        FloatParameter("checkpoint_completion_target", 0.1, 0.99, default=0.9)
    )
    space.add(BooleanParameter("synchronous_commit", default=True))
    space.add(IntegerParameter("bgwriter_delay_ms", 10, 1_000, default=200, log=True))

    # --- parallelism / execution
    space.add(
        IntegerParameter("max_parallel_workers_per_gather", 0, 8, default=2)
    )
    space.add(BooleanParameter("jit", default=True))
    space.add(BooleanParameter("autovacuum", default=True))

    # --- planner cost model
    space.add(FloatParameter("random_page_cost", 1.0, 10.0, default=4.0))
    space.add(
        IntegerParameter("effective_io_concurrency", 1, 512, default=1, log=True)
    )
    space.add(
        IntegerParameter("default_statistics_target", 10, 1_000, default=100, log=True)
    )

    # --- plan-method switches (the unstable-configuration knobs of §3.2.1)
    space.add(BooleanParameter("enable_seqscan", default=True))
    space.add(BooleanParameter("enable_indexscan", default=True))
    space.add(BooleanParameter("enable_bitmapscan", default=True))
    space.add(BooleanParameter("enable_hashjoin", default=True))
    space.add(BooleanParameter("enable_mergejoin", default=True))
    space.add(BooleanParameter("enable_nestloop", default=True))

    return space

"""PostgreSQL simulator."""

from repro.systems.postgres.engine import PostgreSQLSystem
from repro.systems.postgres.knobs import build_postgres_knob_space
from repro.systems.postgres.planner import PlanOutcome, QueryPlanner

__all__ = [
    "PlanOutcome",
    "PostgreSQLSystem",
    "QueryPlanner",
    "build_postgres_knob_space",
]

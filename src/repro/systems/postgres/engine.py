"""PostgreSQL performance model.

The model decomposes the time to process one unit of work (a transaction for
OLTP workloads, the whole query batch for OLAP workloads) into per-component
shares, scales each share according to the configuration relative to the
stock defaults, divides by the node's component performance multipliers, and
finally applies the query-planner outcome (:mod:`repro.systems.postgres.planner`)
to the plan-sensitive fraction of the work.

The absolute calibration targets the default-configuration bars of the
paper's figures; what matters for the reproduction is the *shape*: which
knobs carry the improvement for which workload, how much headroom each
workload has, and where instability comes from.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.cloud.telemetry import TelemetrySample
from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration, ConfigurationSpace
from repro.systems.base import EvaluationResult, SystemUnderTest
from repro.systems.postgres.knobs import build_postgres_knob_space
from repro.systems.postgres.planner import QueryPlanner
from repro.workloads.base import Objective, Workload, WorkloadKind


# Relative cost of serving a logical read from the shared buffer cache, the
# OS page cache, and the disk.  Only the ratios matter.
_COST_SHARED_BUFFER = 1.0
_COST_OS_CACHE = 6.0
_COST_DISK = 55.0


class PostgreSQLSystem(SystemUnderTest):
    """Simulated PostgreSQL 16.1 instance."""

    name = "postgres"

    def __init__(self, planner: Optional[QueryPlanner] = None) -> None:
        super().__init__()
        self.planner = planner if planner is not None else QueryPlanner()
        self._default = self.knob_space.default_configuration()

    def build_knob_space(self) -> ConfigurationSpace:
        return build_postgres_knob_space()

    def supports(self, workload: Workload) -> bool:
        return workload.kind in (WorkloadKind.OLTP, WorkloadKind.OLAP)

    # ------------------------------------------------------------------ model
    @staticmethod
    def _hit_ratio(cache_mb: float, data_mb: float, skew: float) -> float:
        """Cache hit ratio for ``cache_mb`` of cache over ``data_mb`` of data.

        Skewed access patterns reach high hit ratios with small caches, which
        is the standard concave cache curve.
        """
        coverage = min(max(cache_mb, 0.0) / data_mb, 1.0)
        if coverage <= 0.0:
            return 0.0
        return float(coverage ** (1.0 / (1.0 + skew)))

    def _read_path_cost(
        self, config: Configuration, workload: Workload, memory_mb: float
    ) -> float:
        """Average cost of a logical read under this configuration."""
        buffers_mb = float(config["shared_buffers_mb"])
        work_mem_footprint = (
            float(config["work_mem_mb"]) * workload.concurrency * 0.25
            + float(config["maintenance_work_mem_mb"])
        )
        os_cache_mb = max(memory_mb * 0.85 - buffers_mb - work_mem_footprint, 0.0)

        hit_buffer = self._hit_ratio(buffers_mb, workload.working_set_mb, workload.skew)
        hit_os = self._hit_ratio(os_cache_mb, workload.dataset_mb, workload.skew)

        miss_buffer = 1.0 - hit_buffer
        return (
            hit_buffer * _COST_SHARED_BUFFER
            + miss_buffer * hit_os * _COST_OS_CACHE
            + miss_buffer * (1.0 - hit_os) * _COST_DISK
        )

    def _spill_extra(self, config: Configuration, workload: Workload) -> float:
        """Extra work caused by sorts/hashes spilling to temporary files."""
        required_mb = 8.0 + 500.0 * workload.sort_hash_intensity
        spill = max(0.0, 1.0 - float(config["work_mem_mb"]) / required_mb)
        strength = 0.50 + 0.80 * workload.join_complexity
        return strength * workload.sort_hash_intensity * spill

    def _checkpoint_factor(self, config: Configuration) -> float:
        """Checkpoint write amplification relative to a perfectly smooth setup."""
        wal_size = float(config["max_wal_size_mb"])
        target = float(config["checkpoint_completion_target"])
        size_factor = 0.55 + 0.45 * math.sqrt(1_024.0 / wal_size)
        smoothing = 1.0 + 0.25 * (0.9 - target)
        return size_factor * smoothing

    def _flush_factor(self, config: Configuration) -> float:
        """Per-commit WAL flush cost; asynchronous commit removes the wait."""
        if not config["synchronous_commit"]:
            return 0.15
        wal_buffers = float(config["wal_buffers_mb"])
        return 0.88 + 0.12 * math.sqrt(16.0 / wal_buffers)

    def _parallel_factor(self, config: Configuration, workload: Workload) -> float:
        workers = float(config["max_parallel_workers_per_gather"])
        return 1.0 / (1.0 + workload.parallel_friendliness * math.log2(1.0 + workers))

    def _cpu_factor(self, config: Configuration, workload: Workload) -> float:
        factor = self._parallel_factor(config, workload)
        if not config["jit"]:
            factor *= 1.0 + 0.18 * workload.parallel_friendliness
        # A mild genuine benefit for SSD-appropriate planner costs on the
        # plan-insensitive queries: this is the lure that draws the optimizer
        # towards low random_page_cost, where the unstable near-tie band lives.
        rpc = float(config["random_page_cost"])
        factor *= 1.0 - 0.05 * max(0.0, (4.0 - rpc)) / 3.0
        eic = float(config["effective_io_concurrency"])
        factor *= 1.0 - 0.04 * workload.parallel_friendliness * math.log10(max(eic, 1.0)) / math.log10(512.0)
        return factor

    def _os_factor(self, config: Configuration, workload: Workload) -> float:
        factor = 1.0
        if not config["autovacuum"]:
            factor *= 1.0 + 0.10 * workload.write_fraction
        delay = float(config["bgwriter_delay_ms"])
        factor *= 1.0 + 0.03 * abs(math.log10(delay / 200.0))
        return factor

    def _memory_footprint_mb(self, config: Configuration, workload: Workload) -> float:
        return (
            float(config["shared_buffers_mb"])
            + float(config["work_mem_mb"])
            * workload.concurrency
            * (0.2 + 0.6 * workload.sort_hash_intensity)
            + float(config["maintenance_work_mem_mb"]) * 2.0
            + float(config["wal_buffers_mb"])
            + 300.0  # base server processes
        )

    def _component_scales(
        self, config: Configuration, workload: Workload, memory_mb: float
    ) -> Dict[str, float]:
        """Per-component time scale of ``config`` relative to the defaults."""
        default = self._default

        read_cost = self._read_path_cost(config, workload, memory_mb)
        read_cost_default = self._read_path_cost(default, workload, memory_mb)
        read_scale = read_cost / read_cost_default

        spill = self._spill_extra(config, workload)
        spill_default = self._spill_extra(default, workload)
        spill_scale = (1.0 + spill) / (1.0 + spill_default)

        ckpt_scale = self._checkpoint_factor(config) / self._checkpoint_factor(default)
        flush_scale = self._flush_factor(config) / self._flush_factor(default)
        cpu_scale = self._cpu_factor(config, workload) / self._cpu_factor(default, workload)
        os_scale = self._os_factor(config, workload) / self._os_factor(default, workload)

        # The disk share splits into reads, WAL flushes and checkpoint writes.
        write_fraction = workload.write_fraction
        read_part = 1.0 - write_fraction
        flush_part = 0.7 * write_fraction
        ckpt_part = 0.3 * write_fraction
        disk_scale = (
            read_part * read_scale + flush_part * flush_scale + ckpt_part * ckpt_scale
        ) * spill_scale

        # Memory pressure: approaching the VM's physical memory causes swap.
        footprint = self._memory_footprint_mb(config, workload)
        pressure = max(0.0, footprint / (memory_mb * 0.95) - 1.0)
        memory_scale = spill_scale * (1.0 + 3.0 * pressure)

        return {
            "cpu": cpu_scale * spill_scale,
            "disk": disk_scale * (1.0 + 4.0 * pressure),
            "memory": memory_scale,
            "os": os_scale,
            "cache": spill_scale,
            "network": 1.0,
        }

    def _crash_probability(
        self, config: Configuration, workload: Workload, memory_mb: float
    ) -> float:
        """Out-of-memory crash probability for over-committed configurations."""
        footprint = self._memory_footprint_mb(config, workload)
        overcommit = footprint / memory_mb
        if overcommit <= 1.05:
            return 0.0
        return float(min(1.0, (overcommit - 1.05) * 2.5))

    # ------------------------------------------------------------------ run
    def run(
        self,
        config: Configuration,
        workload: Workload,
        vm: VirtualMachine,
        rng: Optional[np.random.Generator] = None,
        collect_telemetry: bool = True,
    ) -> EvaluationResult:
        self._check_workload(workload)
        # Deterministic fallback: interactive calls without an rng repeat
        # bit-for-bit; varied noise requires an explicit seeded stream.
        rng = rng if rng is not None else np.random.default_rng(0)
        memory_mb = vm.sku.memory_gb * 1024.0

        duration = workload.duration_hours if workload.duration_hours > 0 else 0.05
        context = vm.measure(duration, utilisation=0.9, rng=rng)

        crash_probability = self._crash_probability(config, workload, memory_mb)
        if crash_probability > 0 and rng.random() < crash_probability:
            return EvaluationResult(
                objective_value=float("nan"),
                objective=workload.objective,
                crashed=True,
                resource_usage={},
                telemetry=None,
                context=context,
                details={"crash_probability": crash_probability},
            )

        scales = self._component_scales(config, workload, memory_mb)
        base_shares = dict(workload.component_demands)
        scaled_shares = {
            component: base_shares.get(component, 0.0) * scales[component]
            for component in scales
        }

        # Platform slowdown: each share divided by the node's multiplier.
        rel_time = 0.0
        for component, share in scaled_shares.items():
            rel_time += share / max(context.multiplier(component), 0.05)

        # Query-planner outcome on the plan-sensitive fraction of the work.
        outcome = self.planner.plan(config, workload, vm.vm_id, rng=rng)
        plan_fraction = workload.plan_sensitivity
        rel_time *= (1.0 - plan_fraction) + plan_fraction * outcome.multiplier

        # Residual application-level run-to-run noise.
        rel_time *= float(max(rng.normal(1.0, 0.01), 0.5))

        if workload.objective is Objective.THROUGHPUT:
            value = workload.baseline_performance / rel_time
        elif workload.objective is Objective.RUNTIME:
            value = workload.baseline_performance * rel_time
        else:
            value = workload.baseline_performance * rel_time

        usage = self._resource_usage(scaled_shares)
        telemetry = None
        if collect_telemetry:
            telemetry = TelemetrySample.collect(context, usage, rng=rng)

        details = {
            "rel_time": rel_time,
            "plan_multiplier": outcome.multiplier,
            "plan_risky_probability": outcome.risky_probability,
            "read_path_cost": self._read_path_cost(config, workload, memory_mb),
            "crash_probability": crash_probability,
        }
        return EvaluationResult(
            objective_value=float(value),
            objective=workload.objective,
            crashed=False,
            resource_usage=usage,
            telemetry=telemetry,
            context=context,
            details=details,
        )

    @staticmethod
    def _resource_usage(scaled_shares: Dict[str, float]) -> Dict[str, float]:
        total = sum(scaled_shares.values())
        if total <= 0:
            return {component: 0.0 for component in scaled_shares}
        return {
            component: min(share / total * 1.5, 1.0)
            for component, share in scaled_shares.items()
        }

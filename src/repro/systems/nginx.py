"""NGINX simulator.

The paper serves the top-500 Wikipedia pages (including media) through NGINX
and tunes for 95th-percentile full-page latency (§6.4, Fig. 15).  The model
is a worker/connection queueing system: each request costs CPU (TLS, gzip),
file access (page cache vs disk, amortised by ``open_file_cache``), OS work
(accept/connection churn, logging) and network transfer (shrunk by compression for
text, unchanged for media), and the achievable concurrency is bounded by
``worker_processes`` × ``worker_connections``.  Under-provisioned workers on
an 8-core VM leave most of the machine idle, which is where the default
configuration's latency comes from.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.cloud.telemetry import TelemetrySample
from repro.cloud.vm import VirtualMachine
from repro.configspace import (
    BooleanParameter,
    Configuration,
    ConfigurationSpace,
    IntegerParameter,
)
from repro.systems.base import EvaluationResult, SystemUnderTest
from repro.workloads.base import Objective, Workload, WorkloadKind


def build_nginx_knob_space(seed: int = 0) -> ConfigurationSpace:
    """The NGINX knob space used by the reproduction (13 knobs)."""
    space = ConfigurationSpace(seed=seed)
    space.add(IntegerParameter("worker_processes", 1, 16, default=1))
    space.add(IntegerParameter("worker_connections", 256, 16_384, default=512, log=True))
    space.add(IntegerParameter("keepalive_timeout_s", 0, 300, default=75))
    space.add(IntegerParameter("keepalive_requests", 10, 10_000, default=100, log=True))
    space.add(BooleanParameter("sendfile", default=False))
    space.add(BooleanParameter("tcp_nopush", default=False))
    space.add(BooleanParameter("tcp_nodelay", default=True))
    space.add(BooleanParameter("gzip", default=False))
    space.add(IntegerParameter("gzip_comp_level", 1, 9, default=6))
    space.add(IntegerParameter("open_file_cache_entries", 1, 65_536, default=1, log=True))
    space.add(BooleanParameter("access_log", default=True))
    space.add(BooleanParameter("multi_accept", default=False))
    space.add(BooleanParameter("aio_threads", default=False))
    return space


class NginxSystem(SystemUnderTest):
    """Simulated NGINX static/media file server."""

    name = "nginx"

    #: Share of the served bytes that are compressible text (the rest is media).
    TEXT_FRACTION = 0.45

    def __init__(self) -> None:
        super().__init__()
        self._default = self.knob_space.default_configuration()

    def build_knob_space(self) -> ConfigurationSpace:
        return build_nginx_knob_space()

    def supports(self, workload: Workload) -> bool:
        return workload.kind is WorkloadKind.WEB

    # ------------------------------------------------------------------ model
    def _request_cost(self, config: Configuration, workload: Workload) -> Dict[str, float]:
        """Per-request cost (arbitrary time units) per component."""
        # CPU: base parsing/TLS plus gzip compression cost.
        cpu = 1.0
        gzip_enabled = bool(config["gzip"])
        level = float(config["gzip_comp_level"])
        if gzip_enabled:
            cpu += 0.28 * (level / 6.0) * self.TEXT_FRACTION

        # Network transfer: compression shrinks text bytes; tcp_nopush batches
        # packets for sendfile responses; tcp_nodelay helps small responses.
        network = 2.2
        if gzip_enabled:
            ratio = 0.35 - 0.015 * level  # diminishing returns at high levels
            network -= 2.2 * self.TEXT_FRACTION * (1.0 - ratio) * 0.55
        if config["tcp_nopush"] and config["sendfile"]:
            network *= 0.93
        if not config["tcp_nodelay"]:
            network *= 1.06

        # File access: sendfile avoids copying through userspace; the open
        # file cache amortises stat/open syscalls; aio threads hide disk waits
        # for the uncached tail.
        file_cost = 1.1
        if config["sendfile"]:
            file_cost *= 0.72
        cache_entries = float(config["open_file_cache_entries"])
        cache_cover = min(math.log10(max(cache_entries, 1.0)) / math.log10(65_536.0), 1.0)
        file_cost *= 1.0 - 0.35 * cache_cover
        if config["aio_threads"]:
            file_cost *= 0.93

        # OS: connection churn (amortised by keepalive), accept behaviour,
        # logging, and the open/stat syscalls not removed by the cache.
        keepalive_t = float(config["keepalive_timeout_s"])
        keepalive_r = float(config["keepalive_requests"])
        if keepalive_t <= 0:
            conn_churn = 1.0
        else:
            reuse = min(keepalive_r, 60.0 + keepalive_t) / 100.0
            conn_churn = 1.0 / (1.0 + min(reuse, 4.0))
        os_cost = 0.9 + 1.1 * conn_churn
        if config["access_log"]:
            os_cost += 0.22
        if config["multi_accept"]:
            os_cost *= 0.95
        os_cost += 0.5 * (1.0 - cache_cover)

        return {
            "cpu": cpu,
            "disk": file_cost * 0.5,
            "memory": 0.45,
            "os": os_cost,
            "cache": 0.5,
            "network": network,
        }

    def _queueing_factor(self, config: Configuration, workload: Workload, vcpus: int) -> float:
        """Latency inflation from limited worker parallelism and connections."""
        workers = int(config["worker_processes"])
        effective_workers = min(workers, vcpus)
        # Too many workers per core causes context-switch thrash.
        oversubscription = max(0.0, workers - vcpus) / float(vcpus)
        connections = float(config["worker_connections"]) * effective_workers

        load = float(workload.concurrency)
        utilisation = min(load / (38.0 * effective_workers), 0.97)
        queueing = 1.0 + 0.13 * utilisation / (1.0 - utilisation) * 0.12
        if connections < load:
            queueing *= 1.0 + 1.5 * (load - connections) / load
        queueing *= 1.0 + 0.25 * oversubscription
        return queueing

    # ------------------------------------------------------------------ run
    def run(
        self,
        config: Configuration,
        workload: Workload,
        vm: VirtualMachine,
        rng: Optional[np.random.Generator] = None,
        collect_telemetry: bool = True,
    ) -> EvaluationResult:
        self._check_workload(workload)
        # Deterministic fallback: interactive calls without an rng repeat
        # bit-for-bit; varied noise requires an explicit seeded stream.
        rng = rng if rng is not None else np.random.default_rng(0)

        duration = workload.duration_hours if workload.duration_hours > 0 else 0.05
        context = vm.measure(duration, utilisation=0.85, rng=rng)

        costs = self._request_cost(config, workload)
        costs_default = self._request_cost(self._default, workload)
        queueing = self._queueing_factor(config, workload, vm.sku.vcpus)
        queueing_default = self._queueing_factor(self._default, workload, vm.sku.vcpus)

        # Combine per-component costs with the node's multipliers, weighted by
        # the workload's demand profile normalised to the default costs.
        rel_time = 0.0
        rel_default = 0.0
        shares = workload.component_demands
        for component, share in shares.items():
            scale = costs[component] / costs_default[component]
            rel_time += share * scale / max(context.multiplier(component), 0.05)
            rel_default += share
        rel_time /= rel_default

        p95 = (
            workload.baseline_performance
            * rel_time
            * (queueing / queueing_default)
        )
        p95 *= float(max(rng.normal(1.0, 0.015), 0.5))

        usage = self._normalise_demands(
            {c: shares.get(c, 0.0) * costs[c] / costs_default[c] for c in shares}
        )
        usage = {k: min(v * 1.6, 1.0) for k, v in usage.items()}
        telemetry = (
            TelemetrySample.collect(context, usage, rng=rng) if collect_telemetry else None
        )
        details = {
            "rel_time": rel_time,
            "queueing": queueing,
            "queueing_default": queueing_default,
        }
        return EvaluationResult(
            objective_value=float(max(p95, 0.5)),
            objective=Objective.P95_LATENCY,
            crashed=False,
            resource_usage=usage,
            telemetry=telemetry,
            context=context,
            details=details,
        )

"""System-under-Test (SuT) simulators.

Each simulator exposes a knob space (:mod:`repro.configspace`) and a
``run(config, workload, vm, ...)`` method that returns an
:class:`~repro.systems.base.EvaluationResult`: the objective value measured
for that configuration on that VM, plus the guest telemetry the TUNA noise
adjuster consumes.

The three systems match the paper's evaluation targets:

* :class:`~repro.systems.postgres.PostgreSQLSystem` — buffer pool, WAL /
  checkpointing, work_mem spills, parallel query and a query-planner model
  whose near-tied candidate plans are the source of *unstable*
  configurations (§3.2.1).
* :class:`~repro.systems.redis.RedisSystem` — in-memory store with eviction,
  persistence (fork/copy-on-write memory spikes) and out-of-memory crashes
  for overly aggressive configurations (§6.4, Fig. 14).
* :class:`~repro.systems.nginx.NginxSystem` — event-driven web server with a
  worker/connection queueing model serving the Wikipedia trace (Fig. 15).
"""

from repro.systems.base import EvaluationResult, SystemUnderTest
from repro.systems.nginx import NginxSystem
from repro.systems.postgres import PostgreSQLSystem
from repro.systems.redis import RedisSystem

SYSTEMS = {
    "postgres": PostgreSQLSystem,
    "redis": RedisSystem,
    "nginx": NginxSystem,
}


def get_system(name: str) -> SystemUnderTest:
    """Instantiate one of the predefined systems by name."""
    if name not in SYSTEMS:
        raise KeyError(f"unknown system {name!r}; known: {sorted(SYSTEMS)}")
    return SYSTEMS[name]()


__all__ = [
    "EvaluationResult",
    "NginxSystem",
    "PostgreSQLSystem",
    "RedisSystem",
    "SYSTEMS",
    "SystemUnderTest",
    "get_system",
]

"""Asynchronous batched cluster execution (discrete-event simulation).

The paper's premise is that samples taken on *different* worker nodes run in
parallel, yet a naive reproduction evaluates them one tuning iteration at a
time and charges wall-clock as ``n_iterations x eval_cost``.  This module
supplies the missing machinery:

* :class:`ClusterEventLoop` — a discrete-event timeline per worker VM.
  Submissions queue FIFO on their assigned worker; completions pop in
  finish-time order (ties broken by submission order, so runs are exactly
  reproducible).  Tuning wall-clock becomes the *makespan* of the busiest
  worker instead of the sum over iterations.
* :class:`AsyncExecutionEngine` — the request-level wrapper the tuning loop
  drives: a :class:`WorkRequest` (one configuration, one budget, one node
  set) is submitted as one work item per VM; the engine evaluates items
  lazily as their completion events fire, keeps every worker's local clock
  on its own timeline (idle gaps accrue burst credits, drift follows the
  worker's position in simulated time), and hands back fully completed
  requests.

``lockstep=True`` reproduces the legacy sequential semantics exactly — one
request in flight, the whole cluster advanced uniformly by the driver after
each completion — which is the batch-size-1 equivalence gate: same seeds
must yield bit-for-bit the same samples as the sequential loop.

Runtime variability rides on top of this determinism: an optional
:class:`~repro.faults.FaultModel` stretches each work item's duration when
it is submitted (seeded per-worker streams, so a fixed seed reproduces the
injected noise exactly), and an optional
:class:`~repro.faults.SpeculationPolicy` arms straggler mitigation — runs
whose elapsed time exceeds the quantile threshold of the completed
population are duplicated onto the fastest idle eligible worker,
first-finish-wins, the loser cancelled and its worker released.  With the
``"none"`` model (or no model) both features are structurally inert: no RNG
is consumed and no code path differs, so trajectories are bit-for-bit the
legacy ones.

Crash faults ride the same contract: an optional
:class:`~repro.faults.CrashModel` decides at submission time whether a work
item *fails* at a sampled instant instead of completing (transient mid-run
errors, or permanent fail-stop node death that drains the worker from the
fleet).  The engine recovers: failed items are resubmitted to a different
eligible worker under a :class:`RetryPolicy` with capped exponential
backoff, and a slot that exhausts its retry budget surfaces as a
``crashed=True`` sample carrying the paper's crash-penalty value — the
driver and optimizer always see exactly one result per slot.  The
``"none"`` crash model (or no model, or no retry policy) is structurally
inert, exactly like the duration models.

Gray failures ride the same contract once more: an optional
:class:`~repro.faults.PartitionModel` delays work items' *terminal reports*
(stalls, partitions, flaky reconnects) on seeded per-worker streams, and
``lease_timeout_hours`` arms a
:class:`~repro.core.liveness.LivenessMonitor` — every assignment carries a
monotone lease epoch, silence outliving the lease *suspects* the worker
(not dead: its queue stays held), fences the epoch and re-submits the slot
through the retry path; the stale report is rejected as a ``zombie`` at its
pop, never evaluated.  A :class:`~repro.core.validation.ResultValidator`
quarantines NaN/Inf/out-of-domain objective values before they can reach
the optimizer (re-measured under the retry budget, then surfaced as the
crash penalty), and
:class:`~repro.core.validation.CorruptResultModel` is the matching seeded
injector.  The ``"none"`` partition/corruption models, an armed monitor
with no silence, and a validator on clean values are all structurally
inert.

Scale: the loop's bookkeeping is *indexed*, not scanned.  Per-worker clocks
live in a NumPy array behind :class:`~repro.core.worker_index.WorkerIndex`,
idle-worker lookup and placement ranking are O(log n) heap queries (a
release calendar plus sorted idle-sets per (region, SKU) group) instead of
linear scans over ``cluster.workers``, and per-event telemetry is slotted
into ring buffers and spill summaries
(:class:`~repro.core.telemetry_slots.LoopTelemetry`) so memory stays bounded
on million-sample runs.  The indexed structures reproduce the scans' exact
tie-break order (stable ordering by worker index, DET005); the pre-refactor
scan loop survives as :class:`~repro.core.loop_reference.ScanEventLoop` for
the equivalence property tests and the ``make bench-eventloop`` baseline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.cloud.cluster import Cluster
from repro.cloud.telemetry import apply_interference_signature
from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration
from repro.core.datastore import Sample
from repro.core.eventlog import config_digest
from repro.core.execution import ExecutionEngine
from repro.core.liveness import GrayStats, LivenessMonitor
from repro.core.telemetry_slots import LoopTelemetry
from repro.core.validation import (
    CorruptionContext,
    CorruptionModel,
    ResultValidator,
    build_corruption_model,
    build_validator,
)
from repro.core.worker_index import WorkerIndex
from repro.faults import (
    CrashContext,
    CrashModel,
    CrashStats,
    FaultContext,
    FaultModel,
    PartitionContext,
    PartitionModel,
    PartitionStats,
    SpeculationPolicy,
    SpeculationStats,
    StragglerDetector,
    build_crash_model,
    build_fault_model,
    build_partition_model,
)

if TYPE_CHECKING:  # avoid import cycles; annotations only
    from repro.core.eventlog import EventLog
    from repro.core.scheduler import MultiFidelityTaskScheduler
    from repro.obs.metrics import Counter, Histogram, MetricsRegistry
    from repro.obs.tracing import TraceRecorder


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery policy for fail-stop work-item failures.

    A failed item is resubmitted to a different eligible worker after a
    backoff delay of ``backoff_hours * backoff_factor ** attempt`` (capped
    at ``max_backoff_hours``), up to ``max_retries`` resubmissions per
    sample slot.  ``max_retries=0`` means no second chances: every failure
    immediately surfaces as a crash-penalty sample.
    """

    max_retries: int = 2
    backoff_hours: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_hours: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_hours < 0:
            raise ValueError("backoff_hours must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_hours < self.backoff_hours:
            raise ValueError("max_backoff_hours must be >= backoff_hours")

    def delay_hours(self, attempt: int) -> float:
        """Backoff before resubmission number ``attempt + 1`` (0-based)."""
        return min(
            self.backoff_hours * self.backoff_factor ** attempt,
            self.max_backoff_hours,
        )


@dataclass
class WorkRequest:
    """One unit of sampler work: a configuration to run on a set of nodes.

    ``vms`` may be empty (e.g. a promotion whose budget is already covered by
    reusable samples); such requests never enter the event loop and complete
    immediately at zero wall-clock cost.
    """

    config: Configuration
    budget: int
    vms: List[VirtualMachine]
    iteration: int
    kind: str = "new"  # "new" | "promotion"

    @property
    def worker_ids(self) -> List[str]:
        return [vm.vm_id for vm in self.vms]


@dataclass
class WorkItem:
    """One sample of one request on one worker, with its scheduled times.

    ``stretch`` is the fault model's duration multiplier (1.0 when nothing
    was injected); ``speculative`` marks a duplicate launched by straggler
    mitigation, and ``cancelled`` the losing side of a first-finish-wins
    pair (cancelled items are never evaluated).  ``failed`` marks an item a
    crash model killed: it pops at its failure instant (``finish_hours`` is
    rescheduled there) and is never evaluated; ``retried`` marks a recovery
    resubmission of a failed slot, and ``done`` an item whose completion
    event has already popped (such items can no longer be cancelled).

    Gray failures: ``delayed`` marks an item whose terminal report a
    partition model held back by ``delay_hours`` (``finish_hours`` is the
    *observed* report time; ``partition_kind`` names the hazard);
    ``silent_at`` is the last simulated instant a heartbeat was heard
    (equal to ``finish_hours`` for responsive items).  ``epoch`` is the
    item's lease epoch when a liveness monitor is armed, and ``fenced``
    marks an item whose lease expired: the slot was re-submitted under a
    new epoch, and this item's eventual report is a *zombie* — rejected at
    its pop, never evaluated.
    """

    request: WorkRequest
    vm: VirtualMachine
    start_hours: float
    finish_hours: float
    sequence: int
    sample: Optional[Sample] = None
    stretch: float = 1.0
    speculative: bool = False
    cancelled: bool = False
    failed: bool = False
    failure_kind: str = ""
    retried: bool = False
    done: bool = False
    delayed: bool = False
    delay_hours: float = 0.0
    silent_at: float = 0.0
    partition_kind: str = ""
    epoch: int = 0
    fenced: bool = False


class ClusterEventLoop:
    """Discrete-event timeline of a worker cluster.

    Every worker owns an independent ``free_at`` clock; a submitted item
    starts at ``max(worker free_at, now)`` — it cannot start before the
    orchestrator decided to submit it — and completion events pop in
    ``(finish time, submission order)`` order, which makes the simulation
    deterministic for a fixed submission sequence.

    An optional fault model stretches durations at submission time; with no
    model (or the ``"none"`` model) the arithmetic is bit-for-bit the legacy
    ``start + duration``.  Items can be :meth:`cancel`-led (speculative
    first-finish-wins losers): a cancelled item never pops as a completion,
    and its worker is released back to ``max(start, now)`` when it was the
    last entry on that worker's queue.

    Worker state is held in a :class:`~repro.core.worker_index.WorkerIndex`
    (NumPy clock array + release calendar + per-(region, SKU) idle heaps),
    so idle/placement queries are O(log n) in the fleet size while
    reproducing the legacy linear scans' tie-break order exactly.  Event
    telemetry is slotted (:class:`~repro.core.telemetry_slots.LoopTelemetry`)
    so introspection stays bounded on million-sample runs.
    """

    def __init__(
        self,
        cluster: Cluster,
        lockstep: bool = False,
        fault_model: "FaultModel | str | None" = None,
        crash_model: "CrashModel | str | None" = None,
        telemetry_window: int = 4096,
        metrics: "Optional[MetricsRegistry]" = None,
        partition_model: "PartitionModel | str | None" = None,
        liveness: Optional[LivenessMonitor] = None,
    ) -> None:
        self.cluster = cluster
        self.lockstep = lockstep
        self.fault_model = build_fault_model(fault_model)
        self.crash_model = build_crash_model(crash_model)
        #: Optional gray-failure silence injection (report delays) and the
        #: lease monitor that turns persistent silence into suspicions.
        #: Both follow the ``"none"`` discipline: an inert partition model
        #: draws no RNG and delays nothing, and without delays an armed
        #: monitor schedules no suspicions — bit-for-bit the plain loop.
        self.partition_model = build_partition_model(partition_model)
        self.liveness = liveness
        self.partition_stats = PartitionStats()
        #: Optional observability registry.  Purely additive: every use is
        #: guarded by ``is not None`` and only increments instruments, so an
        #: attached registry is trajectory-inert (the ``fault_model="none"``
        #: discipline, guarded by tests/obs/test_obs_equivalence.py).
        self._metrics = metrics
        if metrics is not None:
            # Pre-resolved instrument handles: the per-event cost of an
            # attached registry is then a float add / ring append, with no
            # key-string construction or registry lookup on the hot path.
            # Handles are plain references into the registry, so they pickle
            # as shared objects inside the same checkpoint graph.
            self._m_submitted: "Counter" = metrics.counter("loop.items.submitted")
            self._m_completed: "Counter" = metrics.counter("loop.items.completed")
            self._m_failed: "Counter" = metrics.counter("loop.items.failed")
            self._m_cancelled: "Counter" = metrics.counter("loop.items.cancelled")
            self._m_queue_wait: "Histogram" = metrics.histogram(
                "loop.queue_wait_hours"
            )
            self._m_duration: "Histogram" = metrics.histogram("loop.duration_hours")
            #: Per-(region, SKU) busy-hours counters, filled lazily as the
            #: fleet's groups first deliver work.
            self._m_busy: Dict[Tuple[str, str], "Counter"] = {}
        #: Indexed worker state: array-backed clocks, idle heaps, calendar.
        self._workers = WorkerIndex(cluster)
        self._events: List[Tuple[float, int, WorkItem]] = []
        self._sequence = 0
        self._n_cancelled = 0
        #: Fail-stop node deaths: worker id -> simulated death time.  Dead
        #: workers reject submissions and never report as idle.
        self._dead: Dict[str, float] = {}
        #: Simulated time of the orchestrator = finish time of the last
        #: completion processed (monotone non-decreasing).
        self.now = 0.0
        #: Largest finish time processed so far — the run's wall-clock.
        self.makespan = 0.0
        #: Bounded per-event counters + recent-completion ring.
        self.telemetry = LoopTelemetry(telemetry_window)

    @property
    def worker_index(self) -> WorkerIndex:
        """The loop's indexed worker state (shared with the engine)."""
        return self._workers

    # -- submit ---------------------------------------------------------------
    def submit(
        self,
        request: WorkRequest,
        vm: VirtualMachine,
        duration_hours: float,
        speculative: bool = False,
        not_before: float = 0.0,
    ) -> WorkItem:
        """Queue one run on a worker; returns its scheduled work item.

        ``not_before`` delays the start below which the run may not begin
        (retry backoff): the item starts at the latest of the worker's queue
        drain, the orchestrator clock and ``not_before``.  When a crash
        model is armed it is consulted here, after the duration model: a
        failed item's completion event is rescheduled to its failure
        instant, its worker released there (transient failures) or drained
        permanently (node death).
        """
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if not self._workers.has_worker(vm.vm_id):
            raise KeyError(f"worker {vm.vm_id!r} is not part of this cluster")
        worker_idx = self._workers.index_of(vm.vm_id)
        if self.lockstep:
            # Legacy sequential semantics: every request starts at the global
            # clock; there is never more than one request in flight.
            start = self.now
        else:
            start = max(self._workers.free_at_of(worker_idx), self.now, not_before)
        stretch = 1.0
        if self.fault_model is not None and not self.fault_model.is_null:
            context = FaultContext(
                worker_id=vm.vm_id,
                start_hours=start,
                duration_hours=duration_hours,
                concurrent_items=self.n_in_flight,
                n_workers=self._workers.n_workers,
                speculative=speculative,
            )
            stretch = max(float(self.fault_model.stretch(context)), 0.05)
            finish = start + duration_hours * stretch
        else:
            finish = start + duration_hours
        item = WorkItem(
            request,
            vm,
            start,
            finish,
            self._sequence,
            stretch=stretch,
            speculative=speculative,
        )
        dead_on_arrival = vm.vm_id in self._dead
        if dead_on_arrival:
            # The worker's death was decided by an earlier submission but is
            # only *observed* when that failure event pops; work routed here
            # in the window between the two errors out instantly at its
            # start (``start >= death``: the worker's queue drains at the
            # death instant) and takes the normal recovery path.
            item.failed = True
            item.failure_kind = "node-death"
            finish = start
            item.finish_hours = start
        elif self.crash_model is not None and not self.crash_model.is_null:
            decision = self.crash_model.decide(
                CrashContext(
                    worker_id=vm.vm_id,
                    start_hours=start,
                    duration_hours=finish - start,
                    speculative=speculative,
                )
            )
            if decision.failed:
                # The run dies at the sampled instant (clamped into its
                # window): its completion event fires there instead, so the
                # orchestrator observes the failure when a real monitor
                # would.  Failure is decided at submission but *revealed* at
                # the pop — nothing downstream may peek at it earlier.
                fail_at = min(max(decision.fail_at_hours, start), finish)
                item.failed = True
                item.failure_kind = decision.kind
                finish = fail_at
                item.finish_hours = fail_at
                if decision.worker_dead:
                    self._dead[vm.vm_id] = fail_at
                    self._workers.kill(worker_idx)
        item.silent_at = finish
        if (
            self.partition_model is not None
            and not self.partition_model.is_null
            and not dead_on_arrival
        ):
            # Gray failures delay the item's *terminal report* — completion
            # and failure alike — and may silence the worker earlier.  The
            # orchestrator's view is pessimistic: the worker's queue is held
            # until the delayed report (work is never routed to a node that
            # cannot be heard from), and the report's pop time moves to the
            # delivery instant.  Dead-on-arrival submissions skip the draw
            # (streams are per-worker, so positions stay deterministic).
            partition = self.partition_model.decide(
                PartitionContext(
                    worker_id=vm.vm_id,
                    start_hours=start,
                    duration_hours=finish - start,
                    speculative=speculative,
                )
            )
            if partition.delayed:
                item.delayed = True
                item.delay_hours = partition.delay_hours
                item.partition_kind = partition.kind
                item.silent_at = start + partition.silent_fraction * (finish - start)
                finish += partition.delay_hours
                item.finish_hours = finish
                self.partition_stats.record(partition)
        self._workers.set_free_at(worker_idx, finish)
        heapq.heappush(self._events, (finish, self._sequence, item))
        self._sequence += 1
        if self.liveness is not None:
            self.liveness.grant(item)
        self.telemetry.record_submit()
        if self._metrics is not None:
            self._m_submitted.inc()
            # Queue wait: how long the item sat behind the worker's queue
            # beyond the orchestrator's decision instant (backoff excluded).
            self._m_queue_wait.observe(start - max(self.now, not_before))
        return item

    # -- introspection --------------------------------------------------------
    @property
    def n_in_flight(self) -> int:
        return len(self._events) - self._n_cancelled

    def worker_free_at(self, vm_id: str) -> float:
        return self._workers.free_at_of(self._workers.index_of(vm_id))

    def idle_workers(self) -> List[VirtualMachine]:
        """Live workers whose queue has drained at the current simulated time.

        One vectorized mask query over the worker index; the result is in
        cluster order, exactly like the legacy linear scan.
        """
        workers = self._workers
        return [workers.vm(int(idx)) for idx in workers.idle_indices(self.now)]

    def first_idle_worker(self) -> Optional[VirtualMachine]:
        """First idle live worker in cluster order (O(log n) heap peek)."""
        idx = self._workers.first_idle(self.now)
        return None if idx is None else self._workers.vm(idx)

    def fastest_idle_worker(
        self, excluded_ids: Iterable[str] = ()
    ) -> Optional[VirtualMachine]:
        """Fastest idle live worker not in ``excluded_ids``; ties break on
        cluster index — the speculative-placement ranking, via the
        per-(region, SKU) idle heaps instead of a fleet scan."""
        idx = self._workers.fastest_idle(self.now, excluded_ids)
        return None if idx is None else self._workers.vm(idx)

    def best_retry_worker(
        self, excluded_ids: Iterable[str] = ()
    ) -> Optional[VirtualMachine]:
        """Live worker minimising ``(earliest start, -speed, index)`` — the
        retry-placement ranking, vectorized over the clock array.  May pick
        a busy worker: a lost sample must be recovered even on a saturated
        cluster."""
        idx = self._workers.best_queued(self.now, excluded_ids)
        return None if idx is None else self._workers.vm(idx)

    def is_dead(self, vm_id: str) -> bool:
        return vm_id in self._dead

    @property
    def n_dead(self) -> int:
        return len(self._dead)

    def peek_finish(self) -> Optional[float]:
        """Finish time of the earliest pending completion (None when idle)."""
        self._purge_cancelled_heads()
        if not self._events:
            return None
        return self._events[0][0]

    # -- cancellation ----------------------------------------------------------
    def cancel(self, item: WorkItem) -> None:
        """Cancel a pending item (it will never pop as a completion).

        If the item was the last entry on its worker's queue, the worker is
        released back to ``max(item start, now)`` — the moment the cancel
        was decided for a running item, or the item's scheduled start for
        one still queued.  Items queued *behind* the cancelled one keep
        their scheduled times (conservative, and deterministic).

        Completed items — evaluated *or merely popped* (a failed item is
        popped without ever being evaluated) — cannot be cancelled: their
        completion event already fired, and rewinding the worker's clock for
        one would corrupt the in-flight accounting of everything scheduled
        after it.
        """
        if item.sample is not None or item.done:
            raise RuntimeError("cannot cancel an already-completed item")
        if item.cancelled:
            return
        item.cancelled = True
        self._n_cancelled += 1
        worker_idx = self._workers.index_of(item.vm.vm_id)
        if self._workers.free_at_of(worker_idx) == item.finish_hours:
            self._workers.set_free_at(
                worker_idx, max(item.start_hours, min(self.now, item.finish_hours))
            )
        if self.liveness is not None:
            self.liveness.settle(item.sequence)
        self.telemetry.record_cancel()
        if self._metrics is not None:
            self._m_cancelled.inc()

    def _purge_cancelled_heads(self) -> None:
        """Drop cancelled items sitting at the top of the event heap."""
        while self._events and self._events[0][2].cancelled:
            heapq.heappop(self._events)
            self._n_cancelled -= 1

    def advance_now(self, hours: float) -> None:
        """Advance the orchestrator clock without a completion.

        Used for *detection events*: straggler mitigation acts at the
        simulated instant an in-flight run crosses the detection threshold,
        which generally falls between completions.  Monotone (never moves
        backwards) and never touches the makespan — only real completions
        define wall-clock.
        """
        if hours > self.now:
            self.now = hours

    # -- liveness --------------------------------------------------------------
    def poll_suspicion(self) -> Optional[WorkItem]:
        """Fire the next lease expiry preceding the next completion, if any.

        Like straggler crossings, a lease expiry is a *detection event*: it
        happens at the simulated instant the silence outlives the lease,
        which generally falls between completions.  The clock advances to
        the expiry, the item's epoch is fenced (its eventual report pops as
        a zombie and is rejected), and the item is returned for the engine
        to re-submit the slot under a new epoch.  One suspicion per call,
        in deterministic ``(deadline, epoch)`` order; ``None`` when no
        lease expires before the next completion.
        """
        if self.liveness is None:
            return None
        expiry = self.liveness.next_suspicion_before(self.peek_finish())
        if expiry is None:
            return None
        deadline, item = expiry
        self.advance_now(deadline)
        item.fenced = True
        return item

    # -- completions ----------------------------------------------------------
    def next_completion(self) -> WorkItem:
        """Pop the earliest pending live completion and advance ``now`` to it.

        Cancelled items are skipped silently; they advance neither ``now``
        nor the makespan (their worker was already released by
        :meth:`cancel`).  A *failed* item pops at its failure instant and
        advances only ``now`` — like a detection event, a failure is an
        observation, not delivered work; only real completions (including
        the eventual retry's) define the run's wall-clock.
        """
        self._purge_cancelled_heads()
        if not self._events:
            raise RuntimeError("no work in flight")
        finish, _, item = heapq.heappop(self._events)
        self.now = max(self.now, finish)
        if not item.failed and not item.fenced:
            # A fenced item's report is a stale observation, not delivered
            # work: like a failure it advances only ``now`` — the slot's
            # wall-clock is defined by its re-submission's real completion.
            self.makespan = max(self.makespan, finish)
        item.done = True
        if self.liveness is not None:
            self.liveness.settle(item.sequence)
        if item.failed or item.fenced:
            self.telemetry.record_fail()
        else:
            self.telemetry.record_complete(finish, finish - item.start_hours)
        if self._metrics is not None:
            vm = item.vm
            if item.fenced:
                self._metrics.inc("loop.items.zombie")
            elif item.failed:
                self._m_failed.inc()
            else:
                self._m_completed.inc()
                self._m_duration.observe(finish - item.start_hours)
            # Per-(region, SKU) delivered busy hours: the utilization split
            # the run report renders (failed items were busy until death).
            group = (vm.region.name, vm.sku.name)
            busy = self._m_busy.get(group)
            if busy is None:
                busy = self._m_busy[group] = self._metrics.counter(
                    "loop.busy_hours", region=group[0], sku=group[1]
                )
            busy.inc(finish - item.start_hours)
        return item


class AsyncExecutionEngine:
    """Keeps every worker VM busy with its own timeline of sample runs.

    The sampler/tuning loop submits :class:`WorkRequest`s; the engine fans
    each out into one :class:`WorkItem` per VM, runs the underlying
    :class:`~repro.core.execution.ExecutionEngine` lazily as completion
    events fire (in completion order, so the measurement RNG follows the
    cluster's simulated schedule), and returns requests once their last
    sample has finished.

    Straggler mitigation (optional, ``speculation=``): at every completion
    event, in-flight runs whose speed-normalised elapsed time exceeds the
    :class:`~repro.faults.StragglerDetector` threshold are duplicated onto
    the fastest idle worker the configuration has never touched.  The first
    copy to finish supplies the slot's sample; the other is cancelled and
    its worker released — so the driver (and through it the optimizer) sees
    exactly one result per sample, speculation or not.  When a task
    scheduler is wired in, duplicate workers are reserved/released and their
    load recorded through it, and :meth:`speculative_workers_for` lets the
    sampler exclude in-flight duplicates from regular placement.
    """

    def __init__(
        self,
        execution: ExecutionEngine,
        cluster: Cluster,
        lockstep: bool = False,
        fault_model: "FaultModel | str | None" = None,
        speculation: "SpeculationPolicy | bool | None" = None,
        scheduler: Optional[MultiFidelityTaskScheduler] = None,
        used_workers_fn: Optional[Callable[[Configuration], Sequence[str]]] = None,
        crash_model: "CrashModel | str | None" = None,
        retry_policy: Optional[RetryPolicy] = None,
        event_log: Optional[EventLog] = None,
        config_exclusion_capacity: int = 65536,
        metrics: "Optional[MetricsRegistry]" = None,
        tracer: "Optional[TraceRecorder]" = None,
        partition_model: "PartitionModel | str | None" = None,
        lease_timeout_hours: Optional[float] = None,
        validation: "ResultValidator | bool | None" = None,
        corruption_model: "CorruptionModel | str | None" = None,
    ) -> None:
        if config_exclusion_capacity < 1:
            raise ValueError("config_exclusion_capacity must be >= 1")
        self.execution = execution
        self.cluster = cluster
        self.lockstep = lockstep
        fault_model = build_fault_model(fault_model)
        crash_model = build_crash_model(crash_model)
        partition_model = build_partition_model(partition_model)
        corruption_model = build_corruption_model(corruption_model)
        if speculation is True:
            speculation = SpeculationPolicy()
        elif speculation is False:
            speculation = None
        if lockstep:
            if fault_model is not None and not fault_model.is_null:
                raise ValueError(
                    "fault injection is not supported in lockstep mode "
                    "(it is the bit-for-bit equivalence gate)"
                )
            if speculation is not None:
                raise ValueError("speculation needs concurrent workers; not lockstep")
            if crash_model is not None and not crash_model.is_null:
                raise ValueError(
                    "crash injection is not supported in lockstep mode "
                    "(it is the bit-for-bit equivalence gate)"
                )
            if partition_model is not None and not partition_model.is_null:
                raise ValueError(
                    "partition injection is not supported in lockstep mode "
                    "(it is the bit-for-bit equivalence gate)"
                )
            if corruption_model is not None and not corruption_model.is_null:
                raise ValueError(
                    "result corruption is not supported in lockstep mode "
                    "(it is the bit-for-bit equivalence gate)"
                )
        if lease_timeout_hours is not None and lease_timeout_hours <= 0:
            raise ValueError("lease_timeout_hours must be positive")
        liveness = (
            LivenessMonitor(lease_timeout_hours)
            if lease_timeout_hours is not None
            else None
        )
        self.loop = ClusterEventLoop(
            cluster,
            lockstep=lockstep,
            fault_model=fault_model,
            crash_model=crash_model,
            metrics=metrics,
            partition_model=partition_model,
            liveness=liveness,
        )
        #: Gray-failure attachments: the result-quarantine gate between the
        #: engine and the optimizer, the seeded corruption injector that
        #: exercises it, and the run's suspicion/fencing/quarantine tallies.
        #: A validator on a clean run rejects nothing (inert); the ``"none"``
        #: corruption model draws no RNG.
        self._validator = build_validator(validation)
        self._corruption_model = corruption_model
        self.gray_stats = GrayStats()
        #: Optional observability instruments (``is not None``-guarded and
        #: write-only, so attaching them is trajectory-inert).
        self._metrics = metrics
        self._tracer = tracer
        if metrics is not None:
            # Pre-resolved handles for the once-per-item sites (submit,
            # complete, land) — same hot-path discipline as the event
            # loop's; rarer sites (retries, cancels, speculation) keep the
            # name-addressed convenience calls.
            self._m_eng_submitted: "Counter" = metrics.counter(
                "engine.items.submitted"
            )
            self._m_eng_completed: "Counter" = metrics.counter(
                "engine.items.completed"
            )
            self._m_eng_landed: "Counter" = metrics.counter("engine.samples.landed")
        self.speculation = speculation
        self.retry_policy = retry_policy
        self.stats = SpeculationStats()
        self.crash_stats = CrashStats()
        self._detector = (
            StragglerDetector(speculation) if speculation is not None else None
        )
        self._scheduler = scheduler
        self._used_workers_fn = used_workers_fn
        self._event_log = event_log
        # Simulated time 0 corresponds to each worker's clock at engine
        # construction; used to keep VM-local clocks on their own timelines.
        # Array-backed (cluster order) so finalize's fleet-wide clock
        # synchronisation is a vectorized op instead of a Python loop.
        self._clock_origin: np.ndarray = np.array(
            [vm.clock_hours for vm in cluster.workers], dtype=np.float64
        )
        self._remaining: Dict[int, int] = {}
        self._samples: Dict[int, List[Sample]] = {}
        self._request_ids: Dict[int, WorkRequest] = {}
        self._next_request_id = 0
        self._request_id_of: Dict[int, int] = {}  # item sequence -> request id
        # Speculation bookkeeping (all keyed by item sequence / config).
        self._live: Dict[int, WorkItem] = {}  # in-flight, not cancelled
        self._clone_of: Dict[int, int] = {}  # clone seq -> original seq
        self._clones_of: Dict[int, List[int]] = {}  # original seq -> live clone seqs
        self._n_clones: Dict[int, int] = {}  # original seq -> clones launched
        self._flagged: Set[int] = set()  # originals already counted as stragglers
        # Per-config worker exclusions (speculation/retry placement must not
        # reuse a node the configuration already touched).  Bounded: once the
        # map exceeds ``config_exclusion_capacity`` entries, the oldest
        # configs with no open requests are evicted (their landed workers
        # remain visible through ``used_workers_fn``), so memory stays
        # independent of run length on million-sample runs.
        self._config_workers: Dict[Configuration, Set[str]] = {}
        self._config_refs: Dict[Configuration, int] = {}  # open requests per config
        self._exclusion_capacity = config_exclusion_capacity
        self.n_evicted_exclusions = 0
        # Crash-recovery bookkeeping (keyed by item sequence).
        self._attempts: Dict[int, int] = {}  # retried item seq -> retries so far
        self._dead_seen: Set[str] = set()  # node deaths already observed
        # Originals that failed while speculative duplicates were still
        # racing: sequence -> retry count carried by the slot.  The slot is
        # decided by whichever duplicate resolves last (win, or failure of
        # the final copy, which triggers the retry/exhaust path).
        self._failed_original: Dict[int, int] = {}
        self.n_submitted_requests = 0
        self.n_completed_requests = 0

    # -- submit ---------------------------------------------------------------
    @property
    def duration_hours(self) -> float:
        """Simulated duration of one sample run on a reference-speed worker."""
        return self.execution.wall_clock_hours_per_evaluation

    def duration_for(self, vm: VirtualMachine) -> float:
        """Per-worker sample duration: the SKU's baseline-performance factor
        stretches slow workers' runs along their own timelines."""
        return self.execution.duration_hours_for(vm)

    def _log(self, kind: str, **fields: Any) -> None:
        """Mirror an engine action into the write-ahead event log, if any."""
        if self._event_log is not None:
            config = fields.pop("config", None)
            if config is not None:
                fields["config"] = config_digest(config)
            self._event_log.append(kind, **fields)

    def submit(self, request: WorkRequest) -> List[WorkItem]:
        """Fan a request out into one work item per VM."""
        if not request.vms:
            raise ValueError(
                "request schedules no samples; complete it inline instead of "
                "submitting it to the event loop"
            )
        request_id = self._next_request_id
        self._next_request_id += 1
        self._request_ids[request_id] = request
        self._remaining[request_id] = len(request.vms)
        self._samples[request_id] = []
        assigned = self._config_workers.setdefault(request.config, set())
        self._config_refs[request.config] = self._config_refs.get(request.config, 0) + 1
        self._evict_exclusions()
        items = []
        submitted_at = self.loop.now
        for vm in request.vms:
            item = self.loop.submit(request, vm, self.duration_for(vm))
            self._request_id_of[item.sequence] = request_id
            self._live[item.sequence] = item
            assigned.add(vm.vm_id)
            items.append(item)
            self._log(
                "submit",
                item=item.sequence,
                config=request.config,
                worker=vm.vm_id,
                t=item.start_hours,
                iteration=request.iteration,
                budget=request.budget,
                submitted=submitted_at,
                region=vm.region.name,
                sku=vm.sku.name,
            )
            if self._metrics is not None:
                self._m_eng_submitted.inc()
            self._trace_begin(item, "run", submitted_at)
        self.n_submitted_requests += 1
        return items

    def _trace_begin(self, item: WorkItem, kind: str, submitted: float) -> None:
        """Open the item's lifecycle span (no-op without a tracer)."""
        if self._tracer is None:
            return
        self._tracer.begin(
            item.sequence,
            item.vm.vm_id,
            kind,
            submitted,
            item.start_hours,
            config=config_digest(item.request.config)
            if item.request.config is not None
            else None,
        )

    def _evict_exclusions(self) -> None:
        """Bound the per-config exclusion map (oldest quiescent configs go).

        Only configs with no open requests are evictable — an open request's
        exclusions must stay exact.  A re-encountered evicted config falls
        back to ``used_workers_fn`` (the datastore's landed workers), which
        covers every worker that produced a sample; only cancelled or
        mid-chain-failed workers of long-closed requests are forgotten.
        """
        while len(self._config_workers) > self._exclusion_capacity:
            victim: Optional[Configuration] = None
            for config in self._config_workers:  # insertion = oldest-first order
                if self._config_refs.get(config, 0) == 0:
                    victim = config
                    break
            if victim is None:
                return  # every tracked config still has an open request
            del self._config_workers[victim]
            self.n_evicted_exclusions += 1

    @property
    def n_in_flight_items(self) -> int:
        return self.loop.n_in_flight

    @property
    def n_in_flight_requests(self) -> int:
        return self.n_submitted_requests - self.n_completed_requests

    @property
    def now(self) -> float:
        return self.loop.now

    @property
    def makespan_hours(self) -> float:
        return self.loop.makespan

    # -- completions ----------------------------------------------------------
    def _evaluate(self, item: WorkItem) -> Sample:
        vm = item.vm
        if not self.lockstep:
            # Bring the worker's local clock to the start of this run: idle
            # gaps (and the per-run setup/teardown overhead) accrue burst
            # credits and move temporal drift along the worker's own
            # timeline.  ``measure`` itself advances the clock through the
            # workload, and lockstep mode leaves all advancement to the
            # driver's uniform ``cluster.advance`` instead.
            worker_idx = self.loop.worker_index.index_of(vm.vm_id)
            target = float(self._clock_origin[worker_idx]) + item.start_hours
            gap = target - vm.clock_hours
            if gap > 0:
                vm.advance(gap)
        sample = self.execution.evaluate_on(
            item.request.config, vm, item.request.iteration, item.request.budget
        )
        if item.stretch > 1.0:
            # The injected slowdown leaves a guest-visible footprint (steal
            # time, queueing) so the noise adjuster sees a signal correlated
            # with the fault, exactly like genuine interference would.
            if sample.telemetry is not None:
                sample.telemetry = apply_interference_signature(
                    sample.telemetry, item.stretch
                )
            sample.details["fault_stretch"] = item.stretch
        if item.speculative:
            sample.details["speculative"] = True
        if self._corruption_model is not None and not self._corruption_model.is_null:
            # Gray-failure garbage injection: the measurement happened (its
            # RNG was consumed above, keeping the measurement streams
            # aligned with clean runs), but the *reported* value is trash.
            # The true value rides along in the details for auditability.
            corruption = self._corruption_model.decide(
                CorruptionContext(
                    worker_id=vm.vm_id,
                    start_hours=item.start_hours,
                    duration_hours=item.finish_hours - item.start_hours,
                    speculative=item.speculative,
                )
            )
            if corruption.corrupted:
                sample.details["corrupt_result"] = corruption.kind
                sample.details["true_value"] = sample.value
                sample.value = corruption.apply(sample.value)
        item.sample = sample
        return sample

    def next_completed_request(self) -> Tuple[WorkRequest, List[Sample]]:
        """Process completions until some request has all its samples.

        Samples are evaluated in completion order (interleaved across
        requests), which is the order the orchestrator would observe results
        arriving from the cluster.
        """
        while True:
            result = self._process_next_item()
            if result is not None:
                return result

    def _process_next_item(self) -> Optional[Tuple[WorkRequest, List[Sample]]]:
        """Pop and evaluate one completion; return its request if it is done.

        First-finish-wins reconciliation happens here: whichever side of a
        speculative pair pops first supplies the slot's sample, and the
        other side is cancelled before any evaluation — so exactly one
        sample per work item ever reaches the datastore and the optimizer,
        and the losing worker is released at the winner's finish time.

        Failure events branch into the recovery path instead of evaluation:
        the slot is retried on another worker (or surfaced as a
        crash-penalty sample once the budget is exhausted), so the driver
        still observes exactly one result per slot.

        Gray failures branch here too: lease expiries fire as detection
        events *before* the next completion (the suspected slot re-enters
        the retry path under a new epoch), a fenced item's eventual report
        is rejected as a zombie without ever being evaluated, and an
        evaluated sample that fails validation is quarantined instead of
        landing — so no stale or garbage result can reach the optimizer.
        """
        self._speculate_at_crossings()
        suspected = self.loop.poll_suspicion()
        if suspected is not None:
            result = self._handle_suspicion(suspected)
            self._maybe_speculate()
            return result
        item = self.loop.next_completion()
        self._live.pop(item.sequence, None)
        if item.fenced:
            self._handle_zombie(item)
            self._maybe_speculate()
            return None
        if item.failed:
            result = self._handle_failure(item)
            self._maybe_speculate()
            return result
        request_id = self._request_id_of.pop(item.sequence)
        if item.speculative:
            # The duplicate won the race: cancel the straggling original and
            # any sibling duplicates of the same slot.
            original_seq = self._clone_of.pop(item.sequence)
            self._cancel_clones_of(original_seq, keep=item.sequence)
            original = self._live.pop(original_seq, None)
            if original is not None:
                self._cancel_item(original)
                if original.retried and self._scheduler is not None:
                    # Retried originals hold engine-owned reservations.
                    self._scheduler.release([original.vm.vm_id])
            # The slot's retry count survives into quarantine re-measures
            # (whichever bookkeeping held it: a plain retry chain, or a
            # failed original whose duplicates were still racing).
            slot_attempts = max(
                self._attempts.pop(original_seq, None) or 0,
                self._failed_original.pop(original_seq, None) or 0,
            )
            self._forget_slot(original_seq)
            self.stats.n_duplicate_wins += 1
            if self._scheduler is not None:
                self._scheduler.release([item.vm.vm_id])
        else:
            # The original finished first after all: cancel its duplicates.
            self._cancel_clones_of(item.sequence)
            slot_attempts = self._attempts.pop(item.sequence, None) or 0
            self._forget_slot(item.sequence)
            if item.retried and self._scheduler is not None:
                self._scheduler.release([item.vm.vm_id])
        sample = self._evaluate(item)
        if self._validator is not None:
            reason = self._validator.check(sample.value)
            if reason is not None:
                result = self._quarantine(item, request_id, slot_attempts, sample, reason)
                self._maybe_speculate()
                return result
        if self._detector is not None:
            self._detector.observe(
                self.execution.work_units(item.vm, item.finish_hours - item.start_hours)
            )
            self.stats.detection_threshold_hours = self._detector.threshold()
        self._log(
            "complete",
            item=item.sequence,
            config=item.request.config,
            worker=item.vm.vm_id,
            t=item.finish_hours,
            value=sample.value,
            crashed=sample.crashed,
        )
        if self._metrics is not None:
            self._m_eng_completed.inc()
            if item.speculative:
                self._metrics.inc("engine.speculation.wins")
        if self._tracer is not None:
            self._tracer.end(
                item.sequence, item.finish_hours, "complete", value=sample.value
            )
        result = self._land(request_id, sample)
        self._maybe_speculate()
        return result

    def _land(
        self, request_id: int, sample: Sample
    ) -> Optional[Tuple[WorkRequest, List[Sample]]]:
        """Count one landed sample (real or crash-penalty) against its
        request; returns the completed pair when it was the last open slot."""
        if self._metrics is not None:
            self._m_eng_landed.inc()
            if sample.crashed:
                self._metrics.inc("engine.samples.crashed")
        self._samples[request_id].append(sample)
        self._remaining[request_id] -= 1
        if self._remaining[request_id] != 0:
            return None
        request = self._request_ids.pop(request_id)
        samples = self._samples.pop(request_id)
        del self._remaining[request_id]
        refs = self._config_refs.get(request.config, 0) - 1
        if refs > 0:
            self._config_refs[request.config] = refs
        else:
            self._config_refs.pop(request.config, None)
        self.n_completed_requests += 1
        return request, samples

    # -- crash recovery --------------------------------------------------------
    def _handle_failure(
        self, item: WorkItem
    ) -> Optional[Tuple[WorkRequest, List[Sample]]]:
        """React to a fail-stop failure event.

        Returns the completed ``(request, samples)`` pair when the failure
        exhausted the slot's retry budget *and* its crash-penalty sample was
        the request's last open slot; ``None`` otherwise (a retry was
        submitted, or other copies of the slot are still racing).
        """
        worker_id = item.vm.vm_id
        self.crash_stats.n_failures += 1
        if item.failure_kind == "transient":
            self.crash_stats.n_transient_failures += 1
        elif item.failure_kind == "node-death":
            self.crash_stats.n_node_death_failures += 1
        if self.loop.is_dead(worker_id) and worker_id not in self._dead_seen:
            # The failure *revealed* the node death: drain the worker from
            # the placement fleet.  Its reservations stay accounted — they
            # are released through the normal completion/failure paths — so
            # the study degrades gracefully onto the survivors.
            self._dead_seen.add(worker_id)
            self.crash_stats.n_workers_dead += 1
            if self._scheduler is not None:
                self._scheduler.mark_dead(worker_id)
        self._log(
            "fail",
            item=item.sequence,
            config=item.request.config,
            worker=worker_id,
            t=item.finish_hours,
            fault=item.failure_kind,
            speculative=item.speculative,
            worker_dead=self.loop.is_dead(worker_id),
        )
        if self._metrics is not None:
            self._metrics.inc("engine.items.failed")
            self._metrics.inc("engine.failures", fault=item.failure_kind)
        if self._tracer is not None:
            self._tracer.end(
                item.sequence, item.finish_hours, "fail", fault=item.failure_kind
            )
        if item.speculative:
            # A speculative duplicate died.  The slot usually still has its
            # original (or sibling duplicates) racing — then the failure
            # costs nothing but the duplicate.  If the original already
            # failed and this was the last live copy, the slot is lost and
            # enters recovery.
            self.crash_stats.n_speculative_failures += 1
            request_id = self._request_id_of.pop(item.sequence)
            original_seq = self._clone_of.pop(item.sequence)
            siblings = self._clones_of.get(original_seq)
            if siblings is not None and item.sequence in siblings:
                siblings.remove(item.sequence)
                if not siblings:
                    self._clones_of.pop(original_seq, None)
            if self._scheduler is not None:
                self._scheduler.release([worker_id])  # engine-owned
            if original_seq in self._failed_original and not self._clones_of.get(
                original_seq
            ):
                attempts = self._failed_original.pop(original_seq)
                self._forget_slot(original_seq)
                return self._retry_or_exhaust(request_id, item, attempts)
            return None
        request_id = self._request_id_of.pop(item.sequence)
        if item.retried and self._scheduler is not None:
            self._scheduler.release([worker_id])  # engine-owned
        attempts = self._attempts.pop(item.sequence, 0)
        if self._clones_of.get(item.sequence):
            # Speculative duplicates of this slot are still racing: no retry
            # yet — whichever copy resolves last decides the slot.
            self._failed_original[item.sequence] = attempts
            self._flagged.discard(item.sequence)
            return None
        return self._retry_or_exhaust(request_id, item, attempts)

    # -- gray-failure handling -------------------------------------------------
    def _handle_suspicion(
        self, item: WorkItem
    ) -> Optional[Tuple[WorkRequest, List[Sample]]]:
        """React to a lease expiry: fence the epoch, re-submit the slot.

        Mirrors :meth:`_handle_failure` structurally — the slot re-enters
        the retry path (or surfaces as a crash-penalty sample on an
        exhausted budget) — but the worker is only *suspected*, not dead:
        its queue stays occupied until the silent item's report finally
        arrives, and that report pops as a fenced zombie.  The clock
        already sits at the expiry instant (``loop.poll_suspicion``
        advanced it).
        """
        worker_id = item.vm.vm_id
        suspected_at = self.loop.now
        self.gray_stats.n_suspected += 1
        self._live.pop(item.sequence, None)
        self._log(
            "suspect",
            item=item.sequence,
            config=item.request.config,
            worker=worker_id,
            t=suspected_at,
            epoch=item.epoch,
            silent_since=item.silent_at,
            partition=item.partition_kind,
            speculative=item.speculative,
        )
        self._log(
            "lease_fence",
            item=item.sequence,
            worker=worker_id,
            t=suspected_at,
            epoch=item.epoch,
        )
        if self._metrics is not None:
            self._metrics.inc("engine.items.suspected")
            self._metrics.inc("engine.leases.fenced")
        if self._tracer is not None:
            self._tracer.end(item.sequence, suspected_at, "suspect")
        if self._scheduler is not None:
            # Placement stops offering the silent worker new work until its
            # stale report drains (the zombie pop restores it).
            self._scheduler.suspend(worker_id)
        if item.speculative:
            # A suspected duplicate: the slot usually still has its original
            # (or sibling duplicates) racing, so losing it costs nothing.
            # If the original already failed and this was the last live
            # copy, the slot is lost and enters recovery — exactly the
            # failed-duplicate path.
            request_id = self._request_id_of.pop(item.sequence)
            original_seq = self._clone_of.pop(item.sequence)
            siblings = self._clones_of.get(original_seq)
            if siblings is not None and item.sequence in siblings:
                siblings.remove(item.sequence)
                if not siblings:
                    self._clones_of.pop(original_seq, None)
            if self._scheduler is not None:
                self._scheduler.release([worker_id])  # engine-owned
            if original_seq in self._failed_original and not self._clones_of.get(
                original_seq
            ):
                attempts = self._failed_original.pop(original_seq)
                self._forget_slot(original_seq)
                return self._retry_or_exhaust(
                    request_id, item, attempts, at_hours=suspected_at
                )
            return None
        request_id = self._request_id_of.pop(item.sequence)
        if item.retried and self._scheduler is not None:
            self._scheduler.release([worker_id])  # engine-owned
        attempts = self._attempts.pop(item.sequence, 0)
        if self._clones_of.get(item.sequence):
            # Duplicates of the suspected slot are still racing: no retry
            # yet — whichever copy resolves last decides the slot.
            self._failed_original[item.sequence] = attempts
            self._flagged.discard(item.sequence)
            return None
        return self._retry_or_exhaust(request_id, item, attempts, at_hours=suspected_at)

    def _handle_zombie(self, item: WorkItem) -> None:
        """Reject the report of a fenced (stale-epoch) item at its pop.

        The slot was re-submitted under a new epoch when the lease expired;
        this report — a completed result carried back by a resurrected
        worker, or a stale failure notice — is deterministically dropped
        without ever being evaluated, so no measurement RNG is consumed and
        at most one result per slot can reach the optimizer.  Its per-slot
        bookkeeping was already torn down at suspicion time.
        """
        self.gray_stats.n_zombies_rejected += 1
        if self._scheduler is not None:
            # The silent worker finally reported back: it is reachable
            # again and rejoins the placement pool.
            self._scheduler.restore(item.vm.vm_id)
        self._log(
            "zombie_rejected",
            item=item.sequence,
            config=item.request.config,
            worker=item.vm.vm_id,
            t=item.finish_hours,
            epoch=item.epoch,
            failed=item.failed,
        )
        if self._metrics is not None:
            self._metrics.inc("engine.items.zombie_rejected")

    def _quarantine(
        self,
        item: WorkItem,
        request_id: int,
        attempts: int,
        sample: Sample,
        reason: str,
    ) -> Optional[Tuple[WorkRequest, List[Sample]]]:
        """Reject an evaluated sample whose value failed validation.

        The garbage value never reaches the detector, the datastore or the
        optimizer: the slot is re-measured under the retry budget, and once
        the budget is exhausted it surfaces as the paper's crash-penalty
        sample — the same degraded-but-finite signal the fail-stop path
        produces.
        """
        self.gray_stats.n_quarantined += 1
        self._log(
            "quarantined",
            item=item.sequence,
            config=item.request.config,
            worker=item.vm.vm_id,
            t=item.finish_hours,
            value=str(sample.value),  # NaN/Inf are not valid JSON numbers
            reason=reason,
            attempt=attempts,
        )
        if self._metrics is not None:
            self._metrics.inc("engine.samples.quarantined")
            self._metrics.inc("engine.quarantines", reason=reason)
        if self._tracer is not None:
            self._tracer.end(
                item.sequence, item.finish_hours, "quarantined", reason=reason
            )
        retries_before = self.crash_stats.n_retries
        result = self._retry_or_exhaust(request_id, item, attempts)
        if self.crash_stats.n_retries > retries_before:
            self.gray_stats.n_quarantine_retries += 1
        else:
            self.gray_stats.n_quarantine_penalized += 1
        return result

    @property
    def gray_enabled(self) -> bool:
        """Whether any gray-failure feature is armed on this engine."""
        partition = self.loop.partition_model
        corruption = self._corruption_model
        return (
            (partition is not None and not partition.is_null)
            or self.loop.liveness is not None
            or self._validator is not None
            or (corruption is not None and not corruption.is_null)
        )

    def _retry_or_exhaust(
        self,
        request_id: int,
        failed_item: WorkItem,
        attempts: int,
        at_hours: Optional[float] = None,
    ) -> Optional[Tuple[WorkRequest, List[Sample]]]:
        """Resubmit a lost slot under the retry policy, or give up on it.

        A retry goes to the best live worker the configuration has never
        touched, after the policy's backoff; exhausting the budget (or
        running out of eligible workers) surfaces the slot as a
        ``crashed=True`` sample carrying the paper's crash-penalty value, so
        the optimizer is told a real (bad) result instead of waiting forever
        on a lost one.

        ``at_hours`` overrides the instant the loss was decided (default:
        the failed item's report time).  Lease expiries pass the suspicion
        instant — the suspected item's ``finish_hours`` is its *future*
        zombie report, which the retry's backoff must not wait for.
        """
        request = self._request_ids[request_id]
        self._forget_slot(failed_item.sequence)
        decided_at = failed_item.finish_hours if at_hours is None else at_hours
        policy = self.retry_policy
        if policy is not None and attempts < policy.max_retries:
            vm = self._pick_retry_worker(request.config)
            if vm is not None:
                not_before = decided_at + policy.delay_hours(attempts)
                item = self.loop.submit(
                    request, vm, self.duration_for(vm), not_before=not_before
                )
                item.retried = True
                self._attempts[item.sequence] = attempts + 1
                self._live[item.sequence] = item
                self._request_id_of[item.sequence] = request_id
                self._config_workers.setdefault(request.config, set()).add(vm.vm_id)
                if self._scheduler is not None:
                    self._scheduler.reserve([vm.vm_id])
                    self._scheduler.record_external_load(vm.vm_id)
                self.crash_stats.n_retries += 1
                self._log(
                    "retry",
                    item=item.sequence,
                    config=request.config,
                    worker=vm.vm_id,
                    t=item.start_hours,
                    attempt=attempts + 1,
                    failed_worker=failed_item.vm.vm_id,
                    submitted=decided_at,
                    region=vm.region.name,
                    sku=vm.sku.name,
                )
                if self._metrics is not None:
                    self._metrics.inc("engine.items.retried")
                self._trace_begin(item, "retry", decided_at)
                return None
        self.crash_stats.n_exhausted += 1
        if self._metrics is not None:
            self._metrics.inc("engine.retries.exhausted")
        sample = self.execution.crashed_sample(
            request.config,
            failed_item.vm.vm_id,
            iteration=request.iteration,
            budget=request.budget,
        )
        return self._land(request_id, sample)

    def _pick_retry_worker(self, config: Configuration) -> Optional[VirtualMachine]:
        """Best live worker the configuration has never touched.

        Unlike speculative duplicates (which only launch on *idle* workers),
        a retry may queue behind busy ones: a lost sample must be recovered
        even on a saturated cluster, so the pick minimises the earliest
        possible start instead of requiring idleness.  Deterministic and
        RNG-free: (earliest start, fastest SKU, cluster position).
        """
        excluded = set(self._config_workers.get(config, ()))
        if self._used_workers_fn is not None:
            excluded.update(self._used_workers_fn(config))
        return self.loop.best_retry_worker(excluded)

    # -- speculative re-execution ---------------------------------------------
    def _cancel_clones_of(self, original_seq: int, keep: Optional[int] = None) -> None:
        """Cancel every live duplicate of a slot (except the winner, if any).

        Each cancelled duplicate lost its race: its engine-owned scheduler
        reservation is released and it counts as a duplicate loss.
        """
        for clone_seq in self._clones_of.pop(original_seq, []):
            if clone_seq == keep:
                continue
            self._clone_of.pop(clone_seq, None)
            clone = self._live.pop(clone_seq, None)
            if clone is None:
                continue
            self._cancel_item(clone)
            if self._scheduler is not None:
                self._scheduler.release([clone.vm.vm_id])
            self.stats.n_duplicate_losses += 1

    def _forget_slot(self, sequence: int) -> None:
        """Drop per-slot speculation bookkeeping once the slot is decided.

        ``_flagged`` and ``_n_clones`` are keyed by item sequence, which
        grows with the number of samples; forgetting resolved slots keeps
        them bounded by the in-flight set on million-sample runs.  Sequences
        are never reused, so this is observation-free.
        """
        self._flagged.discard(sequence)
        self._n_clones.pop(sequence, None)

    def _cancel_item(self, item: WorkItem) -> None:
        """Cancel a pending item and drop its request bookkeeping.

        The winner of the pair decrements the request's remaining count, so
        the loser just disappears; its scheduler reservation is handled by
        the caller (duplicates are engine-owned, originals sampler-owned).
        """
        self.loop.cancel(item)
        self._request_id_of.pop(item.sequence, None)
        self._flagged.discard(item.sequence)
        self.stats.n_items_cancelled += 1
        # The instant the worker is released back to (same expression as
        # ClusterEventLoop.cancel): when the item never started, its span
        # collapses to zero length at its scheduled start.
        cancelled_at = max(item.start_hours, min(self.loop.now, item.finish_hours))
        self._log(
            "cancel",
            item=item.sequence,
            config=item.request.config,
            worker=item.vm.vm_id,
            t=cancelled_at,
        )
        if self._metrics is not None:
            self._metrics.inc("engine.items.cancelled")
            if item.speculative:
                self._metrics.inc("engine.speculation.losses")
        if self._tracer is not None:
            self._tracer.end(item.sequence, cancelled_at, "cancel")

    def speculative_workers_for(self, config: Configuration) -> List[str]:
        """Workers currently running a speculative duplicate of ``config``.

        The sampler's placement excludes these so a regular sample of the
        same configuration cannot land on a node that is about to hold the
        duplicate's result (which would break the distinct-node budget).
        """
        return [
            item.vm.vm_id
            for item in self._live.values()
            if item.speculative and item.request.config == config
        ]

    def auxiliary_workers_for(self, config: Configuration) -> List[str]:
        """Workers running engine-initiated copies of ``config``'s slots.

        Superset of :meth:`speculative_workers_for`: speculative duplicates
        *and* crash retries.  Both occupy an existing budget slot rather
        than a new one, so the sampler's placement excludes these workers
        without letting them count towards the budget.
        """
        return [
            item.vm.vm_id
            for item in self._live.values()
            if (item.speculative or item.retried) and item.request.config == config
        ]

    def _speculate_at_crossings(self) -> None:
        """Process straggler *detection events* before the next completion.

        In a real cluster the monitor notices a straggler the moment its
        elapsed time crosses the threshold — usually between completions.
        Waiting for the next completion would miss exactly the worst case:
        a tail straggler with nothing else in flight (nothing completes
        until the straggler itself does).  So before popping a completion,
        the clock advances to each in-flight run's threshold-crossing time
        that falls earlier, and the duplicate launches there.  Deterministic:
        crossings are processed in (time, submission order) and consume no
        RNG.
        """
        if self.speculation is None or self._detector is None:
            return
        while True:
            threshold = self._detector.threshold()
            if threshold is None:
                return
            next_finish = self.loop.peek_finish()
            if next_finish is None:
                return
            crossings = []
            for sequence, item in self._live.items():
                if item.speculative:
                    continue
                if self._n_clones.get(sequence, 0) >= self.speculation.max_clones_per_item:
                    continue
                # Normalised elapsed reaches the threshold at this instant.
                crossing = item.start_hours + threshold / item.vm.speed_factor
                if crossing < next_finish:
                    crossings.append((crossing, sequence, item))
            if not crossings:
                return
            crossings.sort(key=lambda entry: (entry[0], entry[1]))
            progressed = False
            for crossing, sequence, item in crossings:
                next_finish = self.loop.peek_finish()
                if next_finish is not None and crossing >= next_finish:
                    break  # a clone launched this pass moved the horizon
                self.loop.advance_now(crossing)
                if sequence not in self._flagged:
                    self._flagged.add(sequence)
                    self.stats.n_stragglers_detected += 1
                    if self._metrics is not None:
                        self._metrics.inc("engine.stragglers.detected")
                clone_vm = self._pick_speculative_worker(item)
                if clone_vm is None:
                    continue  # nobody idle and eligible at the crossing
                self._submit_clone(item, clone_vm)
                progressed = True
            if not progressed:
                return

    def _maybe_speculate(self) -> None:
        """LATE-style check at a completion event: clone flagged stragglers.

        Runs whose speed-normalised elapsed time exceeds the detector
        threshold are flagged (counted once) and, as soon as an idle
        eligible worker exists, duplicated onto the fastest such worker.
        Deterministic: the live-item scan follows submission order, worker
        ranking is by (speed, cluster index), and no RNG is consumed.
        """
        if self.speculation is None or self._detector is None:
            return
        threshold = self._detector.threshold()
        if threshold is None:
            return
        now = self.loop.now
        for sequence in list(self._live):
            item = self._live.get(sequence)
            if item is None or item.speculative or item.cancelled:
                continue
            if self._n_clones.get(sequence, 0) >= self.speculation.max_clones_per_item:
                continue
            if item.start_hours > now:
                continue  # still queued behind other work, not running
            elapsed = self.execution.work_units(item.vm, now - item.start_hours)
            if elapsed <= threshold:
                continue
            if sequence not in self._flagged:
                self._flagged.add(sequence)
                self.stats.n_stragglers_detected += 1
                if self._metrics is not None:
                    self._metrics.inc("engine.stragglers.detected")
            clone_vm = self._pick_speculative_worker(item)
            if clone_vm is None:
                continue  # no idle eligible worker right now; retry later
            self._submit_clone(item, clone_vm)

    def _pick_speculative_worker(self, item: WorkItem) -> Optional[VirtualMachine]:
        """Fastest idle worker the item's configuration has never touched.

        With a task scheduler wired in, its (identically-ordered)
        ``rank_speculative`` keeps the pick pluggable; otherwise the loop's
        per-group idle heaps answer it in O(log n) without a fleet scan.
        """
        config = item.request.config
        excluded = set(self._config_workers.get(config, ()))
        if self._used_workers_fn is not None:
            excluded.update(self._used_workers_fn(config))
        if self._scheduler is not None:
            candidates = [
                vm for vm in self.loop.idle_workers() if vm.vm_id not in excluded
            ]
            if not candidates:
                return None
            return self._scheduler.rank_speculative(candidates)[0]
        return self.loop.fastest_idle_worker(excluded)

    def _submit_clone(self, item: WorkItem, vm: VirtualMachine) -> None:
        """Launch the speculative duplicate of a straggling item."""
        request = item.request
        clone = self.loop.submit(request, vm, self.duration_for(vm), speculative=True)
        self._live[clone.sequence] = clone
        self._request_id_of[clone.sequence] = self._request_id_of[item.sequence]
        self._clone_of[clone.sequence] = item.sequence
        self._clones_of.setdefault(item.sequence, []).append(clone.sequence)
        self._n_clones[item.sequence] = self._n_clones.get(item.sequence, 0) + 1
        self._config_workers.setdefault(request.config, set()).add(vm.vm_id)
        if self._scheduler is not None:
            self._scheduler.reserve([vm.vm_id])
            self._scheduler.record_external_load(vm.vm_id)
        self.stats.n_duplicates_submitted += 1
        self._log(
            "speculate",
            item=clone.sequence,
            config=request.config,
            worker=vm.vm_id,
            t=clone.start_hours,
            original_item=item.sequence,
            submitted=self.loop.now,
            region=vm.region.name,
            sku=vm.sku.name,
        )
        if self._metrics is not None:
            self._metrics.inc("engine.items.speculated")
        self._trace_begin(clone, "speculative", self.loop.now)

    def next_completed_requests(self) -> List[Tuple[WorkRequest, List[Sample]]]:
        """Drain one *wave* of completions: every request finishing at the
        same simulated instant as the first one to complete.

        Completions that land together (e.g. a batch of equal-duration
        samples launched in the same scheduling round) come back as one list,
        so the driver can feed them to the optimizer as a single
        ``tell_batch`` — one surrogate refit per wave instead of one per
        landed result.  Items are still evaluated in exactly the event loop's
        completion order, so the measurement RNG sequence is identical to
        draining requests one at a time.
        """
        completed: List[Tuple[WorkRequest, List[Sample]]] = []
        while True:
            result = self._process_next_item()
            if result is not None:
                completed.append(result)
            next_finish = self.loop.peek_finish()
            if next_finish is None and not completed:
                # Everything left in flight was stale: fenced zombie reports
                # (their slots already landed through re-submissions) drain
                # without landing anything.  An empty wave, not an error.
                return completed
            if completed and (next_finish is None or next_finish > self.loop.now):
                return completed

    # -- teardown -------------------------------------------------------------
    def finalize(self) -> float:
        """Synchronise all clocks to the makespan; returns the makespan.

        At the end of a run every worker has existed for the full makespan
        even if its own timeline finished earlier, and the cluster-wide
        clock advances by the makespan (per-worker clocks were already moved
        individually, so only the orchestrator clock is touched).
        """
        if self.loop.n_in_flight:
            raise RuntimeError("cannot finalize with work still in flight")
        makespan = self.loop.makespan
        if not self.lockstep:
            # Vectorized drain: one gather of the fleet's clocks, one array
            # of gaps, then per-VM advancement only where a gap exists (the
            # VM objects own burst-credit state, so the final touch is
            # per-object by design).
            workers = self.cluster.workers
            clocks = np.fromiter(
                (vm.clock_hours for vm in workers),
                dtype=np.float64,
                count=len(workers),
            )
            gaps = self._clock_origin + makespan - clocks
            for worker_idx in np.nonzero(gaps > 0)[0]:
                workers[worker_idx].advance(float(gaps[worker_idx]))
            self.cluster.advance_clock(makespan)
        return makespan

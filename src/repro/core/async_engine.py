"""Asynchronous batched cluster execution (discrete-event simulation).

The paper's premise is that samples taken on *different* worker nodes run in
parallel, yet a naive reproduction evaluates them one tuning iteration at a
time and charges wall-clock as ``n_iterations x eval_cost``.  This module
supplies the missing machinery:

* :class:`ClusterEventLoop` — a discrete-event timeline per worker VM.
  Submissions queue FIFO on their assigned worker; completions pop in
  finish-time order (ties broken by submission order, so runs are exactly
  reproducible).  Tuning wall-clock becomes the *makespan* of the busiest
  worker instead of the sum over iterations.
* :class:`AsyncExecutionEngine` — the request-level wrapper the tuning loop
  drives: a :class:`WorkRequest` (one configuration, one budget, one node
  set) is submitted as one work item per VM; the engine evaluates items
  lazily as their completion events fire, keeps every worker's local clock
  on its own timeline (idle gaps accrue burst credits, drift follows the
  worker's position in simulated time), and hands back fully completed
  requests.

``lockstep=True`` reproduces the legacy sequential semantics exactly — one
request in flight, the whole cluster advanced uniformly by the driver after
each completion — which is the batch-size-1 equivalence gate: same seeds
must yield bit-for-bit the same samples as the sequential loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.cluster import Cluster
from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration
from repro.core.datastore import Sample
from repro.core.execution import ExecutionEngine


@dataclass
class WorkRequest:
    """One unit of sampler work: a configuration to run on a set of nodes.

    ``vms`` may be empty (e.g. a promotion whose budget is already covered by
    reusable samples); such requests never enter the event loop and complete
    immediately at zero wall-clock cost.
    """

    config: Configuration
    budget: int
    vms: List[VirtualMachine]
    iteration: int
    kind: str = "new"  # "new" | "promotion"

    @property
    def worker_ids(self) -> List[str]:
        return [vm.vm_id for vm in self.vms]


@dataclass
class WorkItem:
    """One sample of one request on one worker, with its scheduled times."""

    request: WorkRequest
    vm: VirtualMachine
    start_hours: float
    finish_hours: float
    sequence: int
    sample: Optional[Sample] = None


class ClusterEventLoop:
    """Discrete-event timeline of a worker cluster.

    Every worker owns an independent ``free_at`` clock; a submitted item
    starts at ``max(worker free_at, now)`` — it cannot start before the
    orchestrator decided to submit it — and completion events pop in
    ``(finish time, submission order)`` order, which makes the simulation
    deterministic for a fixed submission sequence.
    """

    def __init__(self, cluster: Cluster, lockstep: bool = False) -> None:
        self.cluster = cluster
        self.lockstep = lockstep
        self._free_at: Dict[str, float] = {vm.vm_id: 0.0 for vm in cluster.workers}
        self._events: List[Tuple[float, int, WorkItem]] = []
        self._sequence = 0
        #: Simulated time of the orchestrator = finish time of the last
        #: completion processed (monotone non-decreasing).
        self.now = 0.0
        #: Largest finish time processed so far — the run's wall-clock.
        self.makespan = 0.0

    # -- submit ---------------------------------------------------------------
    def submit(self, request: WorkRequest, vm: VirtualMachine, duration_hours: float) -> WorkItem:
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if vm.vm_id not in self._free_at:
            raise KeyError(f"worker {vm.vm_id!r} is not part of this cluster")
        if self.lockstep:
            # Legacy sequential semantics: every request starts at the global
            # clock; there is never more than one request in flight.
            start = self.now
        else:
            start = max(self._free_at[vm.vm_id], self.now)
        finish = start + duration_hours
        self._free_at[vm.vm_id] = finish
        item = WorkItem(request, vm, start, finish, self._sequence)
        heapq.heappush(self._events, (finish, self._sequence, item))
        self._sequence += 1
        return item

    # -- introspection --------------------------------------------------------
    @property
    def n_in_flight(self) -> int:
        return len(self._events)

    def worker_free_at(self, vm_id: str) -> float:
        return self._free_at[vm_id]

    def peek_finish(self) -> Optional[float]:
        """Finish time of the earliest pending completion (None when idle)."""
        if not self._events:
            return None
        return self._events[0][0]

    # -- completions ----------------------------------------------------------
    def next_completion(self) -> WorkItem:
        """Pop the earliest pending completion and advance ``now`` to it."""
        if not self._events:
            raise RuntimeError("no work in flight")
        finish, _, item = heapq.heappop(self._events)
        self.now = max(self.now, finish)
        self.makespan = max(self.makespan, finish)
        return item


class AsyncExecutionEngine:
    """Keeps every worker VM busy with its own timeline of sample runs.

    The sampler/tuning loop submits :class:`WorkRequest`s; the engine fans
    each out into one :class:`WorkItem` per VM, runs the underlying
    :class:`~repro.core.execution.ExecutionEngine` lazily as completion
    events fire (in completion order, so the measurement RNG follows the
    cluster's simulated schedule), and returns requests once their last
    sample has finished.
    """

    def __init__(
        self,
        execution: ExecutionEngine,
        cluster: Cluster,
        lockstep: bool = False,
    ) -> None:
        self.execution = execution
        self.cluster = cluster
        self.lockstep = lockstep
        self.loop = ClusterEventLoop(cluster, lockstep=lockstep)
        # Simulated time 0 corresponds to each worker's clock at engine
        # construction; used to keep VM-local clocks on their own timelines.
        self._clock_origin: Dict[str, float] = {
            vm.vm_id: vm.clock_hours for vm in cluster.workers
        }
        self._remaining: Dict[int, int] = {}
        self._samples: Dict[int, List[Sample]] = {}
        self._request_ids: Dict[int, WorkRequest] = {}
        self._next_request_id = 0
        self._request_id_of: Dict[int, int] = {}  # item sequence -> request id
        self.n_submitted_requests = 0
        self.n_completed_requests = 0

    # -- submit ---------------------------------------------------------------
    @property
    def duration_hours(self) -> float:
        """Simulated duration of one sample run on a reference-speed worker."""
        return self.execution.wall_clock_hours_per_evaluation

    def duration_for(self, vm: VirtualMachine) -> float:
        """Per-worker sample duration: the SKU's baseline-performance factor
        stretches slow workers' runs along their own timelines."""
        return self.execution.duration_hours_for(vm)

    def submit(self, request: WorkRequest) -> List[WorkItem]:
        """Fan a request out into one work item per VM."""
        if not request.vms:
            raise ValueError(
                "request schedules no samples; complete it inline instead of "
                "submitting it to the event loop"
            )
        request_id = self._next_request_id
        self._next_request_id += 1
        self._request_ids[request_id] = request
        self._remaining[request_id] = len(request.vms)
        self._samples[request_id] = []
        items = []
        for vm in request.vms:
            item = self.loop.submit(request, vm, self.duration_for(vm))
            self._request_id_of[item.sequence] = request_id
            items.append(item)
        self.n_submitted_requests += 1
        return items

    @property
    def n_in_flight_items(self) -> int:
        return self.loop.n_in_flight

    @property
    def n_in_flight_requests(self) -> int:
        return self.n_submitted_requests - self.n_completed_requests

    @property
    def now(self) -> float:
        return self.loop.now

    @property
    def makespan_hours(self) -> float:
        return self.loop.makespan

    # -- completions ----------------------------------------------------------
    def _evaluate(self, item: WorkItem) -> Sample:
        vm = item.vm
        if not self.lockstep:
            # Bring the worker's local clock to the start of this run: idle
            # gaps (and the per-run setup/teardown overhead) accrue burst
            # credits and move temporal drift along the worker's own
            # timeline.  ``measure`` itself advances the clock through the
            # workload, and lockstep mode leaves all advancement to the
            # driver's uniform ``cluster.advance`` instead.
            target = self._clock_origin[vm.vm_id] + item.start_hours
            gap = target - vm.clock_hours
            if gap > 0:
                vm.advance(gap)
        sample = self.execution.evaluate_on(
            item.request.config, vm, item.request.iteration, item.request.budget
        )
        item.sample = sample
        return sample

    def next_completed_request(self) -> Tuple[WorkRequest, List[Sample]]:
        """Process completions until some request has all its samples.

        Samples are evaluated in completion order (interleaved across
        requests), which is the order the orchestrator would observe results
        arriving from the cluster.
        """
        while True:
            result = self._process_next_item()
            if result is not None:
                return result

    def _process_next_item(self) -> Optional[Tuple[WorkRequest, List[Sample]]]:
        """Pop and evaluate one completion; return its request if it is done."""
        item = self.loop.next_completion()
        request_id = self._request_id_of.pop(item.sequence)
        sample = self._evaluate(item)
        self._samples[request_id].append(sample)
        self._remaining[request_id] -= 1
        if self._remaining[request_id] != 0:
            return None
        request = self._request_ids.pop(request_id)
        samples = self._samples.pop(request_id)
        del self._remaining[request_id]
        self.n_completed_requests += 1
        return request, samples

    def next_completed_requests(self) -> List[Tuple[WorkRequest, List[Sample]]]:
        """Drain one *wave* of completions: every request finishing at the
        same simulated instant as the first one to complete.

        Completions that land together (e.g. a batch of equal-duration
        samples launched in the same scheduling round) come back as one list,
        so the driver can feed them to the optimizer as a single
        ``tell_batch`` — one surrogate refit per wave instead of one per
        landed result.  Items are still evaluated in exactly the event loop's
        completion order, so the measurement RNG sequence is identical to
        draining requests one at a time.
        """
        completed: List[Tuple[WorkRequest, List[Sample]]] = []
        while True:
            result = self._process_next_item()
            if result is not None:
                completed.append(result)
            next_finish = self.loop.peek_finish()
            if completed and (next_finish is None or next_finish > self.loop.now):
                return completed

    # -- teardown -------------------------------------------------------------
    def finalize(self) -> float:
        """Synchronise all clocks to the makespan; returns the makespan.

        At the end of a run every worker has existed for the full makespan
        even if its own timeline finished earlier, and the cluster-wide
        clock advances by the makespan (per-worker clocks were already moved
        individually, so only the orchestrator clock is touched).
        """
        if self.loop.n_in_flight:
            raise RuntimeError("cannot finalize with work still in flight")
        makespan = self.loop.makespan
        if not self.lockstep:
            for vm in self.cluster.workers:
                target = self._clock_origin[vm.vm_id] + makespan
                gap = target - vm.clock_hours
                if gap > 0:
                    vm.advance(gap)
            self.cluster.advance_clock(makespan)
        return makespan

"""Append-only JSONL write-ahead event log for tuning studies.

Durability substrate of the crash-fault subsystem: every externally
observable action of a study (submissions, completions, failures, retries,
speculative launches, landed samples, checkpoints) is appended as one JSON
object per line, so a killed study can be audited line by line and resumed
from its last checkpoint.  The file format is deliberately boring — JSONL,
append-only, flushed per event — because boring is what survives a crash.

Records share a tiny envelope: a contiguous ``seq`` number (gaps mean lost
events), the record ``kind``, and kind-specific fields.  The first record is
the ``"open"`` header carrying provenance (format version, git SHA, UTC
timestamp), mirroring the benchmark artifacts, so a weeks-old log can be
traced to the commit that produced it.

:func:`EventLog.replay` is strict by design: a truncated tail, a corrupted
line or a sequence gap raises :class:`EventLogError` naming the offending
line — silently loading a partial study would poison every conclusion drawn
from it.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from datetime import datetime, timezone
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # annotation only; configspace never imports core
    from repro.configspace import Configuration

_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..")
)


class EventLogError(RuntimeError):
    """A log could not be replayed; ``line`` is the 1-based offending line."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        super().__init__(message)
        self.line = line


_GIT_SHA_MEMO: Optional[str] = None


def _git_sha() -> str:
    """Current commit SHA, or "unknown" outside a usable git checkout.

    Memoised per process: the checkout cannot change mid-run, and opening
    many logs (one per study in a multi-tenant process) must not fork a
    ``git rev-parse`` subprocess per open.
    """
    global _GIT_SHA_MEMO
    if _GIT_SHA_MEMO is not None:
        return _GIT_SHA_MEMO
    _GIT_SHA_MEMO = _git_sha_uncached()
    return _GIT_SHA_MEMO


def _git_sha_uncached() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


@lru_cache(maxsize=4096)
def config_digest(config: Configuration) -> str:
    """Short stable digest identifying a configuration in log records.

    Hashes the sorted parameter/value mapping, so the digest is independent
    of dict ordering and process hash randomisation — the same configuration
    always logs the same digest, across runs and across resumes.  Memoised
    (configurations are immutable and hashable): a study logs and traces the
    same configuration once per worker fan-out, and re-serialising it every
    time would dominate the instrumentation cost.
    """
    payload = json.dumps(config.as_dict(), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def file_sha256(path: str) -> str:
    """Content digest of a file (checkpoint integrity verification)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


class EventLog:
    """Append-only JSONL event log, one study per file.

    The file handle opens lazily on the first append (in append mode, so a
    resumed study continues the same file) and is dropped on pickling —
    checkpoints capture the sequence counter, not the handle, and the next
    append after a resume reopens the file.
    """

    VERSION = 1

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = None
        self._seq = 0

    # -- writes ---------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._fh is not None:
            return
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        if not fresh:
            # Reopening an existing log (a resumed study, or a handle closed
            # mid-run): the file is the source of truth for the sequence
            # counter.  The pickled counter is stale whenever events landed
            # between checkpoint time and the kill — e.g. the "checkpoint"
            # record itself, which is written *after* the state is pickled.
            self._seq = self._recover_next_seq()
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh and self._seq == 0:
            self.append(
                "open",
                version=self.VERSION,
                git_sha=_git_sha(),
                # detlint: allow[DET002] -- provenance stamp in the header only; replay never consumes it
                generated_at=datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            )

    def _recover_next_seq(self) -> int:
        """WAL-style tail recovery: next sequence number for an existing log.

        A kill mid-``write`` can leave a partial final line; that event was
        never durable (its write never completed), so the partial tail is
        truncated away before appending resumes — otherwise the next append
        would concatenate onto it and corrupt the record.  Complete lines
        are never touched; :meth:`replay` still reports any damage loudly.
        """
        with open(self.path, "rb") as fh:
            data = fh.read()
        if not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            with open(self.path, "r+b") as fh:
                fh.truncate(cut)
            data = data[:cut]
        next_seq = 0
        for line in data.decode("utf-8", errors="replace").splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and isinstance(record.get("seq"), int):
                next_seq = max(next_seq, record["seq"] + 1)
        return next_seq

    def append(self, kind: str, **fields: Any) -> Dict:
        """Append one event; flushed immediately so a kill loses at most the
        event being written (which replay then reports as a truncated tail).
        """
        self._ensure_open()
        clash = {"seq", "kind"} & fields.keys()
        if clash:
            raise ValueError(
                f"event fields {sorted(clash)} would clobber the log envelope"
            )
        record = {"seq": self._seq, "kind": str(kind)}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._fh.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def n_events(self) -> int:
        return self._seq

    # -- checkpoint durability across pickling --------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_fh"] = None
        return state

    # -- replay ---------------------------------------------------------------
    @staticmethod
    def replay(path: str) -> List[Dict]:
        """Load and validate a log; fails loudly on any damage.

        Raises :class:`EventLogError` with the 1-based line number when a
        line is not valid JSON (corruption or a truncated tail), when the
        ``seq`` chain has a gap or reordering (lost events), or when the
        header is missing or from an unknown format version.
        """
        if not os.path.exists(path):
            raise EventLogError(f"event log {path!r} does not exist")
        events: List[Dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if line.strip() == "" and lineno > 1:
                    raise EventLogError(
                        f"{path}:{lineno}: blank line inside the event log "
                        "(truncated or corrupted write)",
                        line=lineno,
                    )
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise EventLogError(
                        f"{path}:{lineno}: corrupted or truncated event "
                        f"({exc.msg}); refusing to load a partial study",
                        line=lineno,
                    ) from exc
                if not isinstance(record, dict) or "seq" not in record:
                    raise EventLogError(
                        f"{path}:{lineno}: not an event record (missing 'seq')",
                        line=lineno,
                    )
                if record["seq"] != lineno - 1:
                    raise EventLogError(
                        f"{path}:{lineno}: sequence gap — expected seq "
                        f"{lineno - 1}, found {record['seq']} (events were "
                        "lost or reordered)",
                        line=lineno,
                    )
                events.append(record)
        if not events:
            raise EventLogError(f"{path}: empty event log", line=1)
        header = events[0]
        if header.get("kind") != "open":
            raise EventLogError(
                f"{path}:1: first record must be the 'open' header, "
                f"found {header.get('kind')!r}",
                line=1,
            )
        if header.get("version") != EventLog.VERSION:
            raise EventLogError(
                f"{path}:1: unsupported event-log version "
                f"{header.get('version')!r} (supported: {EventLog.VERSION})",
                line=1,
            )
        return events

    @staticmethod
    def last_checkpoint(path: str) -> Dict:
        """Replay a log and return its most recent ``"checkpoint"`` event.

        Verifies that the referenced checkpoint file still exists and that
        its content digest matches what was recorded at checkpoint time —
        a tampered or half-written checkpoint must not resurrect a study.
        """
        events = EventLog.replay(path)
        checkpoints = [e for e in events if e.get("kind") == "checkpoint"]
        if not checkpoints:
            raise EventLogError(
                f"{path}: no checkpoint recorded; the study cannot be resumed"
            )
        last = checkpoints[-1]
        ckpt_path = last.get("path", "")
        if not os.path.isabs(ckpt_path):
            ckpt_path = os.path.join(os.path.dirname(os.path.abspath(path)), ckpt_path)
        if not os.path.exists(ckpt_path):
            raise EventLogError(
                f"{path}: checkpoint file {last.get('path')!r} is missing"
            )
        digest = file_sha256(ckpt_path)
        if digest != last.get("sha256"):
            raise EventLogError(
                f"{path}: checkpoint {last.get('path')!r} content digest "
                f"{digest[:12]}... does not match the recorded "
                f"{str(last.get('sha256'))[:12]}... (corrupted or tampered)"
            )
        last = dict(last)
        last["path"] = ckpt_path
        return last

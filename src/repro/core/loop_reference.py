"""Retained linear-scan reference of the cluster event loop.

:class:`ScanEventLoop` is the pre-refactor :class:`ClusterEventLoop`
preserved verbatim: a ``Dict[str, float]`` of per-worker clocks and O(n)
linear scans over ``cluster.workers`` for every idle/placement query.  It
exists for two reasons, mirroring the ``fit`` vs ``fit_pointer`` discipline
in ``ml/``:

* **equivalence** — the indexed loop must reproduce the scans' completion
  order, placements and clocks bit-for-bit (the property tests in
  ``tests/core/test_indexed_loop.py`` drive randomized submit / complete /
  cancel / fail sequences through both);
* **benchmark baseline** — ``make bench-eventloop`` measures the indexed
  loop's events/sec *against this loop* at 1k workers, guarding the >=10x
  speedup that makes 10k-worker / 1M-sample runs feasible.

Do not grow features here: the point of the file is to stay the scan-based
semantics that the indexed implementation is checked against.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cloud.cluster import Cluster
from repro.cloud.vm import VirtualMachine
from repro.core.async_engine import WorkItem, WorkRequest
from repro.faults import (
    CrashContext,
    CrashModel,
    FaultContext,
    FaultModel,
    build_crash_model,
    build_fault_model,
)


class ScanEventLoop:
    """Linear-scan discrete-event loop (the pre-refactor implementation).

    Semantics are identical to :class:`~repro.core.ClusterEventLoop`; only
    the data structures differ — every query walks ``cluster.workers``.
    """

    def __init__(
        self,
        cluster: Cluster,
        lockstep: bool = False,
        fault_model: "FaultModel | str | None" = None,
        crash_model: "CrashModel | str | None" = None,
    ) -> None:
        self.cluster = cluster
        self.lockstep = lockstep
        self.fault_model = build_fault_model(fault_model)
        self.crash_model = build_crash_model(crash_model)
        self._free_at: Dict[str, float] = {vm.vm_id: 0.0 for vm in cluster.workers}
        self._events: List[Tuple[float, int, WorkItem]] = []
        self._sequence = 0
        self._n_cancelled = 0
        self._dead: Dict[str, float] = {}
        self.now = 0.0
        self.makespan = 0.0

    # -- submit ---------------------------------------------------------------
    def submit(
        self,
        request: WorkRequest,
        vm: VirtualMachine,
        duration_hours: float,
        speculative: bool = False,
        not_before: float = 0.0,
    ) -> WorkItem:
        """Queue one run on a worker; returns its scheduled work item."""
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if vm.vm_id not in self._free_at:
            raise KeyError(f"worker {vm.vm_id!r} is not part of this cluster")
        if self.lockstep:
            start = self.now
        else:
            start = max(self._free_at[vm.vm_id], self.now, not_before)
        stretch = 1.0
        if self.fault_model is not None and not self.fault_model.is_null:
            context = FaultContext(
                worker_id=vm.vm_id,
                start_hours=start,
                duration_hours=duration_hours,
                concurrent_items=self.n_in_flight,
                n_workers=len(self._free_at),
                speculative=speculative,
            )
            stretch = max(float(self.fault_model.stretch(context)), 0.05)
            finish = start + duration_hours * stretch
        else:
            finish = start + duration_hours
        item = WorkItem(
            request,
            vm,
            start,
            finish,
            self._sequence,
            stretch=stretch,
            speculative=speculative,
        )
        if vm.vm_id in self._dead:
            item.failed = True
            item.failure_kind = "node-death"
            finish = start
            item.finish_hours = start
        elif self.crash_model is not None and not self.crash_model.is_null:
            decision = self.crash_model.decide(
                CrashContext(
                    worker_id=vm.vm_id,
                    start_hours=start,
                    duration_hours=finish - start,
                    speculative=speculative,
                )
            )
            if decision.failed:
                fail_at = min(max(decision.fail_at_hours, start), finish)
                item.failed = True
                item.failure_kind = decision.kind
                finish = fail_at
                item.finish_hours = fail_at
                if decision.worker_dead:
                    self._dead[vm.vm_id] = fail_at
        self._free_at[vm.vm_id] = finish
        heapq.heappush(self._events, (finish, self._sequence, item))
        self._sequence += 1
        return item

    # -- introspection --------------------------------------------------------
    @property
    def n_in_flight(self) -> int:
        return len(self._events) - self._n_cancelled

    def worker_free_at(self, vm_id: str) -> float:
        return self._free_at[vm_id]

    def idle_workers(self) -> List[VirtualMachine]:
        """Live workers whose queue has drained — the O(n) linear scan."""
        return [
            vm
            for vm in self.cluster.workers
            if self._free_at[vm.vm_id] <= self.now and vm.vm_id not in self._dead
        ]

    def first_idle_worker(self) -> Optional[VirtualMachine]:
        """First idle live worker in cluster order (O(n) scan)."""
        for vm in self.cluster.workers:
            if self._free_at[vm.vm_id] <= self.now and vm.vm_id not in self._dead:
                return vm
        return None

    def fastest_idle_worker(
        self, excluded_ids: Iterable[str] = ()
    ) -> Optional[VirtualMachine]:
        """Fastest idle live worker not excluded; ties by cluster index."""
        excluded = frozenset(excluded_ids)
        candidates = [
            vm for vm in self.idle_workers() if vm.vm_id not in excluded
        ]
        if not candidates:
            return None
        order = {vm.vm_id: i for i, vm in enumerate(self.cluster.workers)}
        return min(candidates, key=lambda vm: (-vm.speed_factor, order[vm.vm_id]))

    def best_retry_worker(
        self, excluded_ids: Iterable[str] = ()
    ) -> Optional[VirtualMachine]:
        """Live worker minimising ``(max(free_at, now), -speed, index)``."""
        excluded = frozenset(excluded_ids)
        candidates = [
            vm
            for vm in self.cluster.workers
            if vm.vm_id not in excluded and vm.vm_id not in self._dead
        ]
        if not candidates:
            return None
        order = {vm.vm_id: i for i, vm in enumerate(self.cluster.workers)}
        now = self.now
        return min(
            candidates,
            key=lambda vm: (
                max(self._free_at[vm.vm_id], now),
                -vm.speed_factor,
                order[vm.vm_id],
            ),
        )

    def is_dead(self, vm_id: str) -> bool:
        return vm_id in self._dead

    @property
    def n_dead(self) -> int:
        return len(self._dead)

    def peek_finish(self) -> Optional[float]:
        self._purge_cancelled_heads()
        if not self._events:
            return None
        return self._events[0][0]

    # -- cancellation ----------------------------------------------------------
    def cancel(self, item: WorkItem) -> None:
        """Cancel a pending item (it will never pop as a completion)."""
        if item.sample is not None or item.done:
            raise RuntimeError("cannot cancel an already-completed item")
        if item.cancelled:
            return
        item.cancelled = True
        self._n_cancelled += 1
        vm_id = item.vm.vm_id
        if self._free_at[vm_id] == item.finish_hours:
            self._free_at[vm_id] = max(
                item.start_hours, min(self.now, item.finish_hours)
            )

    def _purge_cancelled_heads(self) -> None:
        while self._events and self._events[0][2].cancelled:
            heapq.heappop(self._events)
            self._n_cancelled -= 1

    def advance_now(self, hours: float) -> None:
        if hours > self.now:
            self.now = hours

    # -- completions ----------------------------------------------------------
    def next_completion(self) -> WorkItem:
        """Pop the earliest pending live completion and advance ``now``."""
        self._purge_cancelled_heads()
        if not self._events:
            raise RuntimeError("no work in flight")
        finish, _, item = heapq.heappop(self._events)
        self.now = max(self.now, finish)
        if not item.failed:
            self.makespan = max(self.makespan, finish)
        item.done = True
        return item

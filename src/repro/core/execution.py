"""Execution engine: runs configurations on worker VMs.

This is the stand-in for the Nautilus benchmarking platform the paper uses to
instantiate, benchmark and clean up the SuT on each worker.  It turns an
:class:`~repro.systems.base.EvaluationResult` into a
:class:`~repro.core.datastore.Sample`, applying the crash-penalty policy
(crashed runs are replaced with a conservative bad value rather than ±∞,
following §6.4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration
from repro.core.datastore import Sample
from repro.systems.base import SystemUnderTest
from repro.workloads.base import Workload


class ExecutionEngine:
    """Evaluates configurations of one system/workload pair on VMs."""

    #: Crash penalty factors relative to the default configuration's baseline:
    #: a crashed throughput run reports 5 % of the baseline; a crashed
    #: latency/runtime run reports 3x the baseline.
    CRASH_THROUGHPUT_FACTOR = 0.05
    CRASH_LATENCY_FACTOR = 3.0

    def __init__(
        self,
        system: SystemUnderTest,
        workload: Workload,
        seed: Optional[int] = None,
    ) -> None:
        if not system.supports(workload):
            raise ValueError(
                f"system {system.name!r} does not support workload {workload.name!r}"
            )
        self.system = system
        self.workload = workload
        self._rng = np.random.default_rng(seed)
        self.n_evaluations = 0
        self.n_crashes = 0
        # Reference duration cache, keyed on workload identity: the event
        # loop reads it once per submitted item, which at 10k-worker / 1M-
        # sample scale makes the recomputation a measurable constant.
        self._duration_cache: Optional[tuple[Workload, float]] = None

    # ------------------------------------------------------------------ api
    def crash_penalty(self) -> float:
        """Objective value substituted for a crashed run."""
        if self.workload.higher_is_better:
            return self.workload.baseline_performance * self.CRASH_THROUGHPUT_FACTOR
        return self.workload.baseline_performance * self.CRASH_LATENCY_FACTOR

    def evaluate_on(
        self,
        config: Configuration,
        vm: VirtualMachine,
        iteration: int = 0,
        budget: int = 1,
    ) -> Sample:
        """Run one configuration once on one VM and return a sample."""
        result = self.system.run(config, self.workload, vm, rng=self._rng)
        self.n_evaluations += 1
        if result.crashed:
            self.n_crashes += 1
            value = self.crash_penalty()
            telemetry = None
        else:
            value = result.objective_value
            telemetry = (
                result.telemetry.as_vector() if result.telemetry is not None else None
            )
        return Sample(
            config=config,
            worker_id=vm.vm_id,
            value=float(value),
            objective_unit=self.workload.objective.unit,
            iteration=iteration,
            budget=budget,
            crashed=result.crashed,
            telemetry=telemetry,
            details=dict(result.details),
        )

    def crashed_sample(
        self,
        config: Configuration,
        worker_id: str,
        iteration: int = 0,
        budget: int = 1,
    ) -> Sample:
        """Synthesize the sample for a run lost to a fail-stop crash.

        Used when the recovery machinery exhausts its retry budget: the
        measurement never happened, so no RNG is consumed and no telemetry
        exists — the sample carries only the crash-penalty value (§6.4),
        exactly like a run that crashed inside the SuT.
        """
        self.n_crashes += 1
        return Sample(
            config=config,
            worker_id=worker_id,
            value=float(self.crash_penalty()),
            objective_unit=self.workload.objective.unit,
            iteration=iteration,
            budget=budget,
            crashed=True,
            telemetry=None,
            details={"fail_stop": True},
        )

    def evaluate_on_many(
        self,
        config: Configuration,
        vms: Sequence[VirtualMachine],
        iteration: int = 0,
        budget: int = 1,
    ) -> List[Sample]:
        """Run one configuration on several VMs (conceptually in parallel)."""
        return [self.evaluate_on(config, vm, iteration, budget) for vm in vms]

    @property
    def wall_clock_hours_per_evaluation(self) -> float:
        """Wall-clock cost of one evaluation on a reference-speed worker.

        Samples taken on different nodes run in parallel, so a configuration's
        wall-clock cost is independent of its budget; what the budget consumes
        is node-hours (cost), which is what §6.5's equal-cost comparison uses.
        """
        cached = self._duration_cache
        if cached is not None and cached[0] is self.workload:
            return cached[1]
        duration = self.workload.duration_hours
        if duration <= 0:
            duration = self.workload.baseline_performance / 3_600.0  # OLAP batch
        value = duration + 1.0 / 60.0  # one minute of setup/teardown overhead
        self._duration_cache = (self.workload, value)
        return value

    def duration_hours_for(self, vm: VirtualMachine) -> float:
        """Wall-clock cost of one evaluation on a specific worker.

        The SKU's baseline-performance factor stretches (or shrinks) the run:
        a worker at ``speed_factor == 0.8`` takes 1.25x the reference
        duration, so in a mixed fleet a slow SKU genuinely lengthens its own
        timeline and the run makespan.  Reference-speed workers (factor 1.0)
        keep the legacy duration bit-for-bit.
        """
        return self.wall_clock_hours_per_evaluation / vm.speed_factor

    def work_units(self, vm: VirtualMachine, observed_hours: float) -> float:
        """Speed-normalise an observed wall-clock duration on a worker.

        Multiplying by the SKU's speed factor converts "hours on this
        worker" into "hours on a reference-speed worker", so straggler
        detection compares like with like in a mixed fleet — a slow SKU's
        legitimately longer runs do not read as stragglers, and a genuine
        slowdown reads the same no matter which SKU it hit.
        """
        return float(observed_hours) * vm.speed_factor

    def request_duration_hours(self, vms: Sequence[VirtualMachine]) -> float:
        """Wall-clock cost of one request: its samples run in parallel, so
        the slowest assigned worker dominates.  Zero for an empty node set
        (a promotion fully covered by reused samples runs nothing)."""
        if not vms:
            return 0.0
        return max(self.duration_hours_for(vm) for vm in vms)

"""Successive-Halving budget schedule (§4.1, §5.1).

TUNA associates a configuration's multi-fidelity *budget* with the number of
distinct worker nodes it has been evaluated on.  New configurations start at
the lowest budget; the best fraction of each rung is promoted to the next,
until the most promising configurations have been evaluated on the whole
cluster (budget 10 in the paper's setup, chosen in Fig. 9 to give 95 %
confidence of catching unstable configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.configspace import Configuration
from repro.workloads.base import Objective


@dataclass
class _RungEntry:
    config: Configuration
    value: float  # aggregated objective value at this rung
    promoted: bool = False
    #: Reserved by :meth:`SuccessiveHalvingSchedule.propose_promotion` but not
    #: yet committed — the promotion is in flight (being scheduled/evaluated).
    pending: bool = False


@dataclass
class SuccessiveHalvingSchedule:
    """Decides whether to promote an existing configuration or try a new one.

    Parameters
    ----------
    objective:
        The workload objective (defines which direction is "better").
    budgets:
        Increasing node budgets; the paper's implementation uses a minimum of
        1, an intermediate rung of ~3, and the full 10-node cluster.
    eta:
        Promotion ratio: roughly the top ``1/eta`` of a rung moves up.
    """

    objective: Objective
    budgets: Tuple[int, ...] = (1, 3, 10)
    eta: float = 3.0
    _rungs: Dict[int, List[_RungEntry]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.budgets) < 2:
            raise ValueError("need at least two budget levels")
        if list(self.budgets) != sorted(set(self.budgets)):
            raise ValueError("budgets must be strictly increasing")
        if self.eta <= 1.0:
            raise ValueError("eta must be > 1")
        self._rungs = {budget: [] for budget in self.budgets}

    # ------------------------------------------------------------------ info
    @property
    def min_budget(self) -> int:
        return self.budgets[0]

    @property
    def max_budget(self) -> int:
        return self.budgets[-1]

    def next_budget(self, budget: int) -> Optional[int]:
        """The rung above ``budget`` (``None`` if already at the top)."""
        if budget not in self.budgets:
            raise ValueError(f"unknown budget {budget}")
        index = self.budgets.index(budget)
        if index + 1 >= len(self.budgets):
            return None
        return self.budgets[index + 1]

    def rung_configs(self, budget: int) -> List[Configuration]:
        return [entry.config for entry in self._rungs[budget]]

    def configs_at_max_budget(self) -> List[Configuration]:
        return self.rung_configs(self.max_budget)

    # ------------------------------------------------------------------ record
    def record(self, config: Configuration, budget: int, value: float) -> None:
        """Record the aggregated value a configuration achieved at a rung."""
        if budget not in self._rungs:
            raise ValueError(f"unknown budget {budget}")
        for entry in self._rungs[budget]:
            if entry.config == config:
                entry.value = value
                return
        self._rungs[budget].append(_RungEntry(config, value))

    # ------------------------------------------------------------------ decide
    def _better(self, a: float, b: float) -> bool:
        if self.objective.higher_is_better:
            return a > b
        return a < b

    def _sorted_entries(self, budget: int) -> List[_RungEntry]:
        return sorted(
            self._rungs[budget],
            key=lambda entry: entry.value,
            reverse=self.objective.higher_is_better,
        )

    def propose_promotion(self) -> Optional[Tuple[Configuration, int]]:
        """Return ``(config, next_budget)`` if some rung is ready to promote.

        Higher rungs are inspected first so promising configurations reach the
        full cluster quickly.  A rung is ready when it holds at least ``eta``
        finished configurations and its best not-yet-promoted configuration
        ranks within the top ``1/eta`` of the rung.

        A proposal only *reserves* the entry (it will not be proposed again
        while in flight).  The caller must either :meth:`commit_promotion`
        once the promotion's samples are scheduled, or
        :meth:`rollback_promotion` if scheduling fails — otherwise the
        configuration would be silently lost from its rung forever.
        """
        for budget in reversed(self.budgets[:-1]):
            entries = self._rungs[budget]
            if len(entries) < self.eta:
                continue
            ranked = self._sorted_entries(budget)
            n_promotable = max(1, int(len(ranked) / self.eta))
            top = ranked[:n_promotable]
            for entry in top:
                if not entry.promoted and not entry.pending:
                    entry.pending = True
                    return entry.config, self.next_budget(budget)
        return None

    def _pending_entry(self, config: Configuration) -> _RungEntry:
        for budget in self.budgets[:-1]:
            for entry in self._rungs[budget]:
                if entry.config == config and entry.pending:
                    return entry
        raise KeyError(f"no pending promotion for {config!r}")

    def commit_promotion(self, config: Configuration) -> None:
        """Finalise a proposed promotion once its samples are scheduled."""
        entry = self._pending_entry(config)
        entry.pending = False
        entry.promoted = True

    def rollback_promotion(self, config: Configuration) -> None:
        """Release a proposed promotion whose scheduling failed.

        The entry becomes proposable again, so a transient scheduling error
        (e.g. no free workers) does not permanently drop the configuration
        from the successive-halving race.
        """
        entry = self._pending_entry(config)
        entry.pending = False

    def n_pending_promotions(self) -> int:
        """How many configurations are currently eligible for promotion."""
        count = 0
        for budget in self.budgets[:-1]:
            ranked = self._sorted_entries(budget)
            if len(ranked) < self.eta:
                continue
            n_promotable = max(1, int(len(ranked) / self.eta))
            count += sum(
                1 for entry in ranked[:n_promotable]
                if not entry.promoted and not entry.pending
            )
        return count

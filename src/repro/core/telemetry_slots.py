"""Bounded (slotted) telemetry containers for million-sample runs.

The discrete-event engine used to be safe to introspect only because runs
were small: any map keyed by work-item sequence or configuration grows with
the number of *samples*, and at the ROADMAP's target scale (10k workers,
1M samples) an unbounded dict of per-event records is the difference
between a run that completes and one that pages itself to death.

This module supplies the two slotting primitives the event loop uses to
keep memory independent of run length:

* :class:`RingBuffer` — a fixed-capacity numpy-backed ring of float values.
  Appends are O(1); once full, the oldest value is *spilled* (evicted) and
  only its aggregate survives.  The buffer always holds the most recent
  ``capacity`` values in chronological order.
* :class:`SpillSummary` — running aggregates (count / sum / min / max) of
  everything ever observed, O(1) memory.  Paired with a ring buffer it
  answers "what happened overall" after the raw events are gone.
* :class:`LoopTelemetry` — the event loop's own instrument panel: per-kind
  event counters (O(1)) plus a ring of recent completion instants, so a
  million-event run retains full aggregate statistics and a bounded recent
  window instead of a per-event log.

Determinism: nothing here draws entropy or reads wall-clock; contents are a
pure function of the observed sequence.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class SpillSummary:
    """Running aggregates over an unbounded stream, O(1) memory."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def merge(self, other: "SpillSummary") -> None:
        """Fold another summary into this one (per-group → rollup).

        Equivalent to having observed both streams: counts and totals add,
        extrema combine.  Merging an empty summary is a no-op, so rollups
        can fold groups unconditionally.
        """
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class RingBuffer:
    """Fixed-capacity ring of floats; evicted values feed a spill summary.

    The ring holds the most recent ``capacity`` appended values.  Older
    values are gone from the buffer but remain visible through
    :attr:`spilled` (a :class:`SpillSummary` of evictions only) and through
    the all-time counters, so bounded memory never silently truncates the
    run's aggregate story.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._values = np.empty(capacity, dtype=np.float64)
        self._next = 0  # write cursor
        self._size = 0
        self.n_appended = 0
        self.spilled = SpillSummary()

    def __len__(self) -> int:
        return self._size

    @property
    def n_spilled(self) -> int:
        return self.spilled.count

    def append(self, value: float) -> None:
        value = float(value)
        if self._size == self.capacity:
            self.spilled.observe(float(self._values[self._next]))
        else:
            self._size += 1
        self._values[self._next] = value
        self._next = (self._next + 1) % self.capacity
        self.n_appended += 1

    def as_array(self) -> np.ndarray:
        """Buffered values, oldest first (a copy; safe to mutate)."""
        if self._size < self.capacity:
            return self._values[: self._size].copy()
        return np.concatenate(
            (self._values[self._next :], self._values[: self._next])
        )

    def snapshot(self) -> Dict[str, object]:
        """All-time aggregates plus the buffered window, one dict.

        Combines the spill summary (evictions) with the still-buffered
        values, so ``count``/``total``/extrema describe *everything* ever
        appended — the bounded window never silently truncates the story.
        """
        window = self.as_array()
        combined = SpillSummary()
        combined.merge(self.spilled)
        for value in window:
            combined.observe(float(value))
        out = combined.as_dict()
        out["n_appended"] = self.n_appended
        out["n_spilled"] = self.n_spilled
        out["window"] = window.tolist()
        return out

    def quantile(self, q: float) -> float:
        """Quantile over the *buffered* (most recent) window."""
        if self._size == 0:
            raise ValueError("quantile of an empty ring buffer")
        if self._size < self.capacity:
            window = self._values[: self._size]
        else:
            window = self._values
        return float(np.quantile(window, q))


class LoopTelemetry:
    """Bounded instrument panel of a :class:`ClusterEventLoop`.

    Per-kind event counters are O(1); the completion-instant ring keeps the
    most recent window for post-hoc inspection (and lets the scale
    benchmark *assert* that memory stayed bounded at a million samples).
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.n_submitted = 0
        self.n_completed = 0
        self.n_failed = 0
        self.n_cancelled = 0
        self.recent_completions = RingBuffer(capacity)
        self.durations = SpillSummary()

    def record_submit(self) -> None:
        self.n_submitted += 1

    def record_complete(self, finish_hours: float, duration_hours: float) -> None:
        self.n_completed += 1
        self.recent_completions.append(finish_hours)
        self.durations.observe(duration_hours)

    def record_fail(self) -> None:
        self.n_failed += 1

    def record_cancel(self) -> None:
        self.n_cancelled += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_failed": self.n_failed,
            "n_cancelled": self.n_cancelled,
            "recent_window": len(self.recent_completions),
            "window_capacity": self.capacity,
            "durations": self.durations.as_dict(),
        }

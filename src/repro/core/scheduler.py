"""Multi-fidelity task scheduler: node placement for samples (§5.1).

Samples taken at a lower budget are *reused* when a configuration is promoted
to a higher budget, so only the missing samples are scheduled — and they must
land on worker nodes the configuration has not used before, otherwise the
detection guarantees of Fig. 9 (which assume samples from distinct nodes)
would not hold.

Placement is **heterogeneity-aware** by default: in a mixed fleet the
scheduler trades node diversity against queue depth and SKU speed, preferring
free fast workers (Gavel-style throughput-normalised placement: the cost of a
worker is its expected queue wait ``(queued + 1) / speed``) while still
spreading a configuration's samples across regions so the noise aggregation
sees every environment.  On a homogeneous single-region cluster every term of
the ranking collapses to the legacy ``(reserved, load, random)`` order, so
existing trajectories are reproduced bit-for-bit under the same seeds.  The
``"fifo"`` mode is the naive baseline: round-robin over workers in fixed
order, blind to speed and queue depth — what a heterogeneity-oblivious
scheduler would do, and what the heterogeneous-fleet benchmark beats.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.cluster import Cluster
from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration

if TYPE_CHECKING:  # annotation only; obs is an optional attachment
    from repro.obs.metrics import MetricsRegistry

#: Known placement policies (see class docstring).
PLACEMENT_POLICIES = ("heterogeneity", "fifo")


class MultiFidelityTaskScheduler:
    """Chooses which worker nodes run the next samples of a configuration."""

    def __init__(
        self,
        cluster: Cluster,
        seed: Optional[int] = None,
        placement: str = "heterogeneity",
    ) -> None:
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {placement!r}; "
                f"known: {PLACEMENT_POLICIES}"
            )
        self.cluster = cluster
        self.placement = placement
        self._rng = np.random.default_rng(seed)
        # Load balancing: how many samples each worker has executed so far.
        self._load: Dict[str, int] = {vm.vm_id: 0 for vm in cluster.workers}
        # In-flight reservations: how many submitted-but-unfinished samples
        # each worker currently holds (asynchronous mode).  Reserved workers
        # are deprioritised by :meth:`assign` so new samples land on idle
        # nodes first and the cluster stays uniformly busy.
        self._reserved: Dict[str, int] = {vm.vm_id: 0 for vm in cluster.workers}
        self._n_reserved_total = 0  # running sum, so n_reserved() is O(1)
        # Static per-worker facts consumed by the placement ranking.
        self._speed: Dict[str, float] = {
            vm.vm_id: vm.speed_factor for vm in cluster.workers
        }
        self._region: Dict[str, str] = {
            vm.vm_id: vm.region.name for vm in cluster.workers
        }
        self._index: Dict[str, int] = {
            vm.vm_id: i for i, vm in enumerate(cluster.workers)
        }
        self._rr_cursor = 0  # next worker index for "fifo" round-robin
        #: Optional observability registry (attached by the tuning loop).
        #: Write-only and ``is not None``-guarded — trajectory-inert.
        self.metrics: Optional["MetricsRegistry"] = None
        # Workers permanently drained from the fleet (fail-stop node death).
        # They keep their load/reservation bookkeeping — in-flight samples on
        # a dying worker are still released through the normal paths — but
        # never appear in an eligible set again.
        self._dead: set = set()
        # Workers under an expired liveness lease (gray-failure suspicion).
        # Reversible, unlike ``_dead``: the worker rejoins the eligible pool
        # the moment its silent item's report finally drains as a zombie —
        # queueing fresh work behind a multi-hour silence would otherwise
        # serialize the study on the one worker everyone gave up on.
        self._suspended: set = set()

    @property
    def n_workers(self) -> int:
        return self.cluster.n_workers

    # -- fail-stop node death -------------------------------------------------
    def mark_dead(self, worker_id: str) -> None:
        """Permanently drain a worker from the fleet (graceful degradation).

        Idempotent.  Placement never selects a dead worker again; existing
        reservations stay accounted so the failure/retry paths can release
        them without tripping the over-release guard.
        """
        if worker_id not in self._reserved:
            raise KeyError(f"unknown worker {worker_id!r}")
        self._dead.add(worker_id)

    def is_dead(self, worker_id: str) -> bool:
        return worker_id in self._dead

    @property
    def n_alive(self) -> int:
        """Workers still accepting placements (fleet size minus the dead)."""
        return self.cluster.n_workers - len(self._dead)

    # -- gray-failure suspension ----------------------------------------------
    def suspend(self, worker_id: str) -> None:
        """Temporarily drain a worker whose liveness lease expired.

        The worker is only *suspected*, not dead: placement avoids it while
        it is silent, and :meth:`restore` re-admits it the moment its
        delayed report arrives.  Idempotent.
        """
        if worker_id not in self._reserved:
            raise KeyError(f"unknown worker {worker_id!r}")
        self._suspended.add(worker_id)

    def restore(self, worker_id: str) -> None:
        """Re-admit a suspended worker to the eligible pool (idempotent)."""
        self._suspended.discard(worker_id)

    def is_suspended(self, worker_id: str) -> bool:
        return worker_id in self._suspended

    # -- in-flight reservations ---------------------------------------------
    def reserve(self, worker_ids: Sequence[str]) -> None:
        """Mark workers as running in-flight samples (one reservation each)."""
        for worker_id in worker_ids:
            if worker_id not in self._reserved:
                raise KeyError(f"unknown worker {worker_id!r}")
            self._reserved[worker_id] += 1
            self._n_reserved_total += 1
        if self.metrics is not None:
            self.metrics.set("scheduler.reserved", self._n_reserved_total)

    def release(self, worker_ids: Sequence[str]) -> None:
        """Release reservations taken out by :meth:`reserve`."""
        for worker_id in worker_ids:
            if worker_id not in self._reserved:
                raise KeyError(f"unknown worker {worker_id!r}")
            if self._reserved[worker_id] <= 0:
                raise RuntimeError(f"worker {worker_id!r} has no reservation to release")
            self._reserved[worker_id] -= 1
            self._n_reserved_total -= 1
        if self.metrics is not None:
            self.metrics.set("scheduler.reserved", self._n_reserved_total)

    def n_reserved(self) -> int:
        """Total in-flight sample reservations across the cluster (O(1))."""
        return self._n_reserved_total

    def eligible_workers(
        self, config: Configuration, already_used: Sequence[str]
    ) -> List[VirtualMachine]:
        """Live workers that have never run this configuration."""
        used = set(already_used)
        return [
            vm
            for vm in self.cluster.workers
            if vm.vm_id not in used
            and vm.vm_id not in self._dead
            and vm.vm_id not in self._suspended
        ]

    # -- placement rankings ---------------------------------------------------
    def _region_usage(self, used: Sequence[str]) -> Dict[str, int]:
        """How many of the configuration's samples sit in each region."""
        usage: Dict[str, int] = {}
        for worker_id in used:
            region = self._region.get(worker_id)
            if region is not None:
                usage[region] = usage.get(region, 0) + 1
        return usage

    def _rank_heterogeneity(
        self, eligible: List[VirtualMachine], used: Sequence[str]
    ) -> List[VirtualMachine]:
        """Throughput-normalised, diversity-aware ranking.

        Selection key, most significant first:

        1. expected queue wait ``(reserved + 1) / speed`` — a free fast
           worker beats a free slow one, and a deep queue on a fast worker
           can lose to an idle slow one (Gavel-style normalisation);
        2. how many of this configuration's samples its region already holds
           — spread across regions so noise aggregation sees every
           environment;
        3. historical load normalised by speed (long-run balance in
           delivered node-hours, not sample counts);
        4. a random tie-break for even spread.

        Workers are picked greedily one at a time, and each pick feeds back
        into the diversity term, so a multi-node request spreads across
        regions instead of scoring them all against the same pre-request
        usage.  The random tie-break is drawn once per eligible worker up
        front; on a homogeneous single-region fleet (uniform speed, one
        region) terms 1-3 are round-invariant and order exactly like the
        legacy ``(reserved, load)`` pair, the RNG is consumed identically,
        and the greedy selection equals the legacy one-shot sort — placement
        is bit-for-bit the legacy placement.
        """
        region_usage = self._region_usage(used)
        tiebreak = {vm.vm_id: self._rng.random() for vm in eligible}
        remaining = list(eligible)
        ordered: List[VirtualMachine] = []
        while remaining:
            best = min(
                remaining,
                key=lambda vm: (
                    (self._reserved[vm.vm_id] + 1) / self._speed[vm.vm_id],
                    region_usage.get(self._region[vm.vm_id], 0),
                    self._load[vm.vm_id] / self._speed[vm.vm_id],
                    tiebreak[vm.vm_id],
                ),
            )
            remaining.remove(best)
            ordered.append(best)
            region = self._region[best.vm_id]
            region_usage[region] = region_usage.get(region, 0) + 1
        return ordered

    def rank_speculative(
        self, eligible: Sequence[VirtualMachine]
    ) -> List[VirtualMachine]:
        """Ranking for speculative duplicate placement: fastest worker first.

        A duplicate races an already-straggling run, so raw speed dominates
        every other concern; ties break on cluster position.  Deliberately
        RNG-free — straggler mitigation fires between regular placements and
        must not perturb the scheduler's tie-break stream (that would break
        the ``"none"``-model equivalence guarantee the moment a speculation
        policy is merely *armed*).
        """
        return sorted(
            eligible,
            key=lambda vm: (-self._speed[vm.vm_id], self._index[vm.vm_id]),
        )

    def _rank_fifo(self, eligible: List[VirtualMachine]) -> List[VirtualMachine]:
        """Naive round-robin: next worker in fixed order, blind to speed,
        queue depth and regions — the heterogeneity-oblivious baseline."""
        n = self.n_workers
        return sorted(
            eligible,
            key=lambda vm: (self._index[vm.vm_id] - self._rr_cursor) % n,
        )

    def assign(
        self,
        config: Configuration,
        target_budget: int,
        already_used: Sequence[str],
        excluded: Sequence[str] = (),
    ) -> List[VirtualMachine]:
        """Pick the nodes for the samples still needed to reach a budget.

        Returns an empty list when the configuration already has samples from
        ``target_budget`` distinct nodes.  Raises if the budget exceeds the
        cluster size.

        ``excluded`` workers are removed from the eligible set *without*
        counting towards the budget — used for nodes running a speculative
        duplicate of this configuration, whose eventual result occupies an
        existing slot rather than a new one.
        """
        if target_budget < 1:
            raise ValueError("target_budget must be >= 1")
        if target_budget > self.n_workers:
            raise ValueError(
                f"budget {target_budget} exceeds cluster size {self.n_workers}"
            )
        used = list(dict.fromkeys(already_used))  # preserve order, dedupe
        needed = target_budget - len(used)
        if needed <= 0:
            return []
        eligible = self.eligible_workers(config, list(used) + list(excluded))
        if len(eligible) < needed:
            raise RuntimeError(
                "not enough unused workers to honour the budget: "
                f"need {needed}, have {len(eligible)}"
            )
        if self.placement == "fifo":
            order = self._rank_fifo(eligible)
        else:
            order = self._rank_heterogeneity(eligible, used)
        chosen = order[:needed]
        for vm in chosen:
            self._load[vm.vm_id] += 1
        if self.metrics is not None:
            self.metrics.inc("scheduler.assignments")
            for vm in chosen:
                self.metrics.inc(
                    "scheduler.placements", region=self._region[vm.vm_id]
                )
        if self.placement == "fifo" and chosen:
            self._rr_cursor = (self._index[chosen[-1].vm_id] + 1) % self.n_workers
        return chosen

    def record_external_load(self, worker_id: str, n_samples: int = 1) -> None:
        """Account for samples scheduled outside :meth:`assign` (baselines)."""
        if worker_id not in self._load:
            raise KeyError(f"unknown worker {worker_id!r}")
        self._load[worker_id] += n_samples

    def load_snapshot(self) -> Dict[str, int]:
        return dict(self._load)

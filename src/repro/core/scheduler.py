"""Multi-fidelity task scheduler: node placement for samples (§5.1).

Samples taken at a lower budget are *reused* when a configuration is promoted
to a higher budget, so only the missing samples are scheduled — and they must
land on worker nodes the configuration has not used before, otherwise the
detection guarantees of Fig. 9 (which assume samples from distinct nodes)
would not hold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.cluster import Cluster
from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration


class MultiFidelityTaskScheduler:
    """Chooses which worker nodes run the next samples of a configuration."""

    def __init__(self, cluster: Cluster, seed: Optional[int] = None) -> None:
        self.cluster = cluster
        self._rng = np.random.default_rng(seed)
        # Load balancing: how many samples each worker has executed so far.
        self._load: Dict[str, int] = {vm.vm_id: 0 for vm in cluster.workers}
        # In-flight reservations: how many submitted-but-unfinished samples
        # each worker currently holds (asynchronous mode).  Reserved workers
        # are deprioritised by :meth:`assign` so new samples land on idle
        # nodes first and the cluster stays uniformly busy.
        self._reserved: Dict[str, int] = {vm.vm_id: 0 for vm in cluster.workers}

    @property
    def n_workers(self) -> int:
        return self.cluster.n_workers

    # -- in-flight reservations ---------------------------------------------
    def reserve(self, worker_ids: Sequence[str]) -> None:
        """Mark workers as running in-flight samples (one reservation each)."""
        for worker_id in worker_ids:
            if worker_id not in self._reserved:
                raise KeyError(f"unknown worker {worker_id!r}")
            self._reserved[worker_id] += 1

    def release(self, worker_ids: Sequence[str]) -> None:
        """Release reservations taken out by :meth:`reserve`."""
        for worker_id in worker_ids:
            if worker_id not in self._reserved:
                raise KeyError(f"unknown worker {worker_id!r}")
            if self._reserved[worker_id] <= 0:
                raise RuntimeError(f"worker {worker_id!r} has no reservation to release")
            self._reserved[worker_id] -= 1

    def n_reserved(self) -> int:
        """Total in-flight sample reservations across the cluster."""
        return sum(self._reserved.values())

    def eligible_workers(
        self, config: Configuration, already_used: Sequence[str]
    ) -> List[VirtualMachine]:
        """Workers that have never run this configuration."""
        used = set(already_used)
        return [vm for vm in self.cluster.workers if vm.vm_id not in used]

    def assign(
        self,
        config: Configuration,
        target_budget: int,
        already_used: Sequence[str],
    ) -> List[VirtualMachine]:
        """Pick the nodes for the samples still needed to reach a budget.

        Returns an empty list when the configuration already has samples from
        ``target_budget`` distinct nodes.  Raises if the budget exceeds the
        cluster size.
        """
        if target_budget < 1:
            raise ValueError("target_budget must be >= 1")
        if target_budget > self.n_workers:
            raise ValueError(
                f"budget {target_budget} exceeds cluster size {self.n_workers}"
            )
        used = list(dict.fromkeys(already_used))  # preserve order, dedupe
        needed = target_budget - len(used)
        if needed <= 0:
            return []
        eligible = self.eligible_workers(config, used)
        if len(eligible) < needed:
            raise RuntimeError(
                "not enough unused workers to honour the budget: "
                f"need {needed}, have {len(eligible)}"
            )
        # Idle workers first, then least historical load; ties broken
        # randomly for even spread.  Reserved (in-flight) workers are still
        # eligible — samples queue on their timeline — but only as a last
        # resort, so asynchronous batches fan out across idle nodes.
        order = sorted(
            eligible,
            key=lambda vm: (
                self._reserved[vm.vm_id],
                self._load[vm.vm_id],
                self._rng.random(),
            ),
        )
        chosen = order[:needed]
        for vm in chosen:
            self._load[vm.vm_id] += 1
        return chosen

    def record_external_load(self, worker_id: str, n_samples: int = 1) -> None:
        """Account for samples scheduled outside :meth:`assign` (baselines)."""
        if worker_id not in self._load:
            raise KeyError(f"unknown worker {worker_id!r}")
        self._load[worker_id] += n_samples

    def load_snapshot(self) -> Dict[str, int]:
        return dict(self._load)

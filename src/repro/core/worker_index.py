"""Indexed worker-state structures for the event loop at fleet scale.

The event loop's original bookkeeping was a ``Dict[str, float]`` of
per-worker ``free_at`` clocks plus linear scans over ``cluster.workers``
for every idle-worker lookup, speculative ranking and retry placement.
At the paper's scale (10 workers) a scan is free; at the ROADMAP's target
(10k workers, 1M samples) every completion event paying O(n_workers) turns
the run into O(events x workers).

:class:`WorkerIndex` replaces the scans with indexed structures while
reproducing the scans' *exact* tie-break order (stable ordering by worker
index — the determinism contract's DET005 discipline):

* **NumPy array-backed per-worker clocks** — ``free_at``, ``speed`` and
  ``alive`` are flat arrays over the cluster order, so bulk queries
  (idle sets, retry ranking) are single vectorized ops;
* a **release calendar** — a min-heap of ``(free_at, worker)`` entries that
  lazily promotes workers into the idle structures as simulated time
  advances; O(log n) per clock update;
* a **sorted idle-set per (region, SKU) group** — one min-heap of worker
  indices per fleet group (uniform speed inside a group), plus a global
  by-index heap, giving O(log n) claim/release and O(log n)
  first-idle / fastest-idle queries.

Laziness contract: heap entries are invalidated in place (``_idle_mark``)
rather than removed; every query pops invalid heads before trusting one.
Determinism: all orderings derive from ``(finish, worker index)`` or
``(-speed, worker index)`` — no entropy, no wall-clock, no hash order.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cloud.cluster import Cluster
from repro.cloud.vm import VirtualMachine


class WorkerIndex:
    """Indexed view of a cluster's workers for O(log n) event-loop queries."""

    def __init__(self, cluster: Cluster) -> None:
        self._vms: List[VirtualMachine] = list(cluster.workers)
        n = len(self._vms)
        self._index_of: Dict[str, int] = {
            vm.vm_id: i for i, vm in enumerate(self._vms)
        }
        #: Per-worker queue-drain instants (the event loop's worker clocks).
        self.free_at = np.zeros(n, dtype=np.float64)
        self.speed = np.array([vm.speed_factor for vm in self._vms], dtype=np.float64)
        self.alive = np.ones(n, dtype=bool)
        # (region, SKU) fleet groups: uniform speed inside a group, so a
        # per-group sorted idle-set answers "fastest idle" by walking groups
        # in (-speed, first-member) order and comparing their head indices.
        self._group_of = np.zeros(n, dtype=np.int64)
        group_ids: Dict[Tuple[str, str], int] = {}
        for i, vm in enumerate(self._vms):
            key = (vm.region.name, vm.sku.name)
            gid = group_ids.setdefault(key, len(group_ids))
            self._group_of[i] = gid
        self.n_groups = len(group_ids)
        # Group visit order for fastest-idle: by descending speed, ties by
        # the group's first member (stable cluster order).
        first_member: Dict[int, int] = {}
        group_speed: Dict[int, float] = {}
        for i in range(n):
            gid = int(self._group_of[i])
            if gid not in first_member:
                first_member[gid] = i
                group_speed[gid] = float(self.speed[i])
        self._group_order: List[int] = sorted(
            range(self.n_groups),
            key=lambda gid: (-group_speed[gid], first_member[gid]),
        )
        self._group_speed = group_speed
        # Idle bookkeeping: a worker is idle iff free_at <= now and alive.
        # ``_idle_mark`` caches that predicate and doubles as the lazy
        # validity bit for heap entries.
        self._idle_mark = np.ones(n, dtype=bool)
        self._idle_by_index: List[int] = list(range(n))  # already a heap
        self._group_heaps: List[List[int]] = [[] for _ in range(self.n_groups)]
        for i in range(n):
            heapq.heappush(self._group_heaps[int(self._group_of[i])], i)
        # Release calendar: (free_at, worker) entries promoted to idle as
        # ``now`` sweeps past them.  Entries are validated against the
        # current free_at, so rewound/overwritten clocks leave only
        # harmless stale entries behind.
        self._release_cal: List[Tuple[float, int]] = []

    # -- identity -------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._vms)

    def index_of(self, vm_id: str) -> int:
        """Cluster position of a worker (KeyError for foreign workers)."""
        return self._index_of[vm_id]

    def has_worker(self, vm_id: str) -> bool:
        return vm_id in self._index_of

    def vm(self, idx: int) -> VirtualMachine:
        return self._vms[idx]

    # -- clocks ---------------------------------------------------------------
    def free_at_of(self, idx: int) -> float:
        return float(self.free_at[idx])

    def set_free_at(self, idx: int, t: float) -> None:
        """Move a worker's queue-drain clock (claim on submit, or release
        on cancel).  O(log n): one release-calendar push; the worker leaves
        the idle structures by mark-invalidation, not removal."""
        t = float(t)
        self.free_at[idx] = t
        self._idle_mark[idx] = False
        heapq.heappush(self._release_cal, (t, idx))

    def kill(self, idx: int) -> None:
        """Permanently drain a worker (fail-stop node death)."""
        self.alive[idx] = False
        self._idle_mark[idx] = False

    # -- idle promotion -------------------------------------------------------
    def refresh(self, now: float) -> None:
        """Promote every worker whose queue has drained by ``now`` into the
        idle structures.  Amortized O(log n) per clock update."""
        cal = self._release_cal
        mark = self._idle_mark
        free_at = self.free_at
        alive = self.alive
        while cal and cal[0][0] <= now:
            t, idx = heapq.heappop(cal)
            # Stale entries (the clock moved again after this push) and
            # already-idle duplicates are dropped silently.
            if alive[idx] and not mark[idx] and free_at[idx] == t:
                mark[idx] = True
                heapq.heappush(self._idle_by_index, idx)
                heapq.heappush(self._group_heaps[int(self._group_of[idx])], idx)

    def idle_indices(self, now: float) -> np.ndarray:
        """All idle live workers in cluster order (one vectorized op)."""
        self.refresh(now)
        return np.nonzero(self._idle_mark)[0]

    def is_idle(self, idx: int, now: float) -> bool:
        self.refresh(now)
        return bool(self._idle_mark[idx])

    def first_idle(self, now: float) -> Optional[int]:
        """Lowest-index idle live worker — the scan order's first hit.

        O(log n) amortized: invalid heads are popped, the first valid head
        is *peeked* (it leaves the heap when a later claim invalidates it).
        """
        self.refresh(now)
        heap = self._idle_by_index
        while heap:
            idx = heap[0]
            if self._idle_mark[idx]:
                return idx
            heapq.heappop(heap)
        return None

    def _group_head(self, gid: int, excluded: frozenset) -> Optional[int]:
        """Lowest-index valid idle worker of a group, skipping ``excluded``.

        Excluded-but-valid entries are stashed and pushed back — exclusion
        is per-query (one configuration's used workers), not a state change.
        """
        heap = self._group_heaps[gid]
        stash: List[int] = []
        head: Optional[int] = None
        while heap:
            idx = heap[0]
            if not self._idle_mark[idx]:
                heapq.heappop(heap)
                continue
            if idx in excluded:
                stash.append(heapq.heappop(heap))
                continue
            head = idx
            break
        for idx in stash:
            heapq.heappush(heap, idx)
        return head

    def fastest_idle(self, now: float, excluded_ids: Iterable[str] = ()) -> Optional[int]:
        """Fastest idle live worker not in ``excluded_ids``; ties break on
        cluster index — exactly ``min(idle, key=(-speed, index))``."""
        self.refresh(now)
        excluded = frozenset(
            self._index_of[vm_id] for vm_id in excluded_ids if vm_id in self._index_of
        )
        best: Optional[int] = None
        best_key: Optional[Tuple[float, int]] = None
        for gid in self._group_order:
            head = self._group_head(gid, excluded)
            if head is None:
                continue
            key = (-self._group_speed[gid], head)
            if best_key is None or key < best_key:
                best_key = key
                best = head
        return best

    def best_queued(self, now: float, excluded_ids: Iterable[str] = ()) -> Optional[int]:
        """Live worker minimising ``(max(free_at, now), -speed, index)`` —
        the retry placement's earliest-possible-start ranking, vectorized.

        Unlike the idle queries this may pick a *busy* worker (a lost
        sample must be recovered even on a saturated cluster).
        """
        mask = self.alive.copy()
        for vm_id in excluded_ids:
            idx = self._index_of.get(vm_id)
            if idx is not None:
                mask[idx] = False
        if not mask.any():
            return None
        eff = np.where(mask, np.maximum(self.free_at, now), np.inf)
        earliest = eff.min()
        candidates = np.nonzero(eff == earliest)[0]
        # argmax returns the first maximum: lowest index among the fastest.
        return int(candidates[np.argmax(self.speed[candidates])])

"""Sample datastore: the catalog of all evaluations in a tuning run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.configspace import Configuration

if TYPE_CHECKING:  # annotation only; the log is attached by the tuning loop
    from repro.core.eventlog import EventLog


@dataclass
class Sample:
    """One evaluation of one configuration on one worker node.

    ``value`` is the raw measured objective value (crash penalty already
    applied for crashed runs); ``adjusted_value`` is the value after the noise
    adjuster, filled in by the TUNA pipeline (equal to ``value`` when the
    model is bypassed).
    """

    config: Configuration
    worker_id: str
    value: float
    objective_unit: str
    iteration: int
    budget: int
    crashed: bool = False
    adjusted_value: Optional[float] = None
    telemetry: Optional[np.ndarray] = None
    details: Dict = field(default_factory=dict)

    @property
    def effective_value(self) -> float:
        """The adjusted value when available, otherwise the raw value."""
        return self.value if self.adjusted_value is None else self.adjusted_value


class Datastore:
    """All samples collected during a tuning run, indexed by configuration.

    When an :class:`~repro.core.eventlog.EventLog` is attached (durable
    studies), every write is mirrored as a ``"sample"`` event *before* the
    in-memory catalog is updated — write-ahead, so a kill between the two
    can lose at most an event the replay validator then flags, never a
    sample the log knows nothing about.
    """

    def __init__(self, event_log: Optional[EventLog] = None) -> None:
        self._samples: List[Sample] = []
        self._by_config: Dict[Configuration, List[Sample]] = {}
        #: Optional write-ahead event log (attached by the tuning loop).
        self.event_log = event_log

    # -- writes -------------------------------------------------------
    def add(self, sample: Sample) -> None:
        if self.event_log is not None:
            from repro.core.eventlog import config_digest

            self.event_log.append(
                "sample",
                config=config_digest(sample.config),
                worker=sample.worker_id,
                value=sample.value,
                iteration=sample.iteration,
                budget=sample.budget,
                crashed=sample.crashed,
            )
        self._samples.append(sample)
        self._by_config.setdefault(sample.config, []).append(sample)

    def extend(self, samples: List[Sample]) -> None:
        for sample in samples:
            self.add(sample)

    # -- reads -------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self._samples)

    @property
    def n_configs(self) -> int:
        return len(self._by_config)

    def all_samples(self) -> List[Sample]:
        return list(self._samples)

    def samples_for(self, config: Configuration) -> List[Sample]:
        return list(self._by_config.get(config, []))

    def values_for(self, config: Configuration) -> List[float]:
        return [s.value for s in self._by_config.get(config, [])]

    def workers_used(self, config: Configuration) -> List[str]:
        return [s.worker_id for s in self._by_config.get(config, [])]

    def configs(self) -> List[Configuration]:
        return list(self._by_config.keys())

    def configs_with_at_least(self, n_samples: int) -> List[Configuration]:
        """Configurations with at least ``n_samples`` non-crashed samples."""
        return [
            config
            for config, samples in self._by_config.items()
            if sum(not s.crashed for s in samples) >= n_samples
        ]

    def max_samples_per_config(self) -> int:
        if not self._by_config:
            return 0
        return max(len(samples) for samples in self._by_config.values())

"""Sampling methodologies: TUNA and the baselines it is compared against.

* :class:`TunaSampler` — the full pipeline of Fig. 7: multi-fidelity budgets,
  outlier detection, noise adjustment, ``min`` aggregation.
* :class:`TraditionalSampler` — the state-of-the-art baseline (§6): a single
  node sequentially evaluating each suggested configuration exactly once.
* :class:`NaiveDistributedSampler` — the §6.5.2 equal-cost baseline: every
  configuration evaluated on every node of the cluster.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cloud.cluster import Cluster
from repro.configspace import Configuration
from repro.core.aggregation import (
    AggregationPolicy,
    aggregate,
    apply_instability_penalty,
)
from repro.core.async_engine import WorkRequest
from repro.core.datastore import Datastore, Sample
from repro.core.execution import ExecutionEngine
from repro.core.multi_fidelity import SuccessiveHalvingSchedule
from repro.core.noise_adjuster import NoiseAdjuster
from repro.core.outlier import OutlierDetector
from repro.core.scheduler import MultiFidelityTaskScheduler
from repro.optimizers.base import Optimizer, objective_to_cost

if TYPE_CHECKING:  # annotation only
    from repro.workloads.base import Objective


@dataclass
class IterationReport:
    """What one tuning iteration did and reported to the optimizer."""

    iteration: int
    config: Configuration
    budget: int
    reported_value: float  # objective units, after adjustment/penalty
    raw_values: List[float]
    unstable: bool
    n_new_samples: int
    wall_clock_hours: float
    details: Dict = field(default_factory=dict)


class Sampler(abc.ABC):
    """A sampling methodology driving one tuning run.

    The unit of work is a :class:`~repro.core.async_engine.WorkRequest`:
    :meth:`propose_work` decides what to run next (ask the optimizer, pick
    nodes), :meth:`complete_work` consumes the finished samples (aggregate,
    tell the optimizer).  The sequential :meth:`run_iteration` composes the
    two around an inline evaluation; the asynchronous tuning loop instead
    submits proposals to an event loop and feeds completions back as they
    land, keeping several requests in flight at once.
    """

    name = "abstract"

    #: Optional hook set by the asynchronous driver when speculative
    #: re-execution or crash recovery is armed: maps a configuration to the
    #: workers currently running engine-initiated copies of it (speculative
    #: duplicates, crash retries), so placement can exclude them without
    #: counting them towards the budget.  ``None`` (the default) means no
    #: exclusions — the legacy behaviour.
    speculation_probe = None

    def __init__(
        self,
        optimizer: Optimizer,
        execution: ExecutionEngine,
        cluster: Cluster,
        seed: Optional[int] = None,
    ) -> None:
        self.optimizer = optimizer
        self.execution = execution
        self.cluster = cluster
        self.datastore = Datastore()
        self._rng = np.random.default_rng(seed)

    @property
    def objective(self) -> Objective:
        return self.execution.workload.objective

    @abc.abstractmethod
    def propose_work(self, iteration: int) -> WorkRequest:
        """Decide the next configuration/budget/node set to evaluate."""

    @abc.abstractmethod
    def complete_work(
        self, request: WorkRequest, new_samples: List[Sample]
    ) -> IterationReport:
        """Consume the finished samples of a request and tell the optimizer."""

    def complete_work_batch(
        self, completed: List[Tuple[WorkRequest, List[Sample]]]
    ) -> List[IterationReport]:
        """Consume a *wave* of completed requests (same event-loop drain).

        The default simply completes them one at a time; samplers that can
        batch their optimizer ``tell``s (one surrogate refit per wave rather
        than one per landed result) override this.
        """
        return [self.complete_work(request, samples) for request, samples in completed]

    def run_iteration(self, iteration: int) -> IterationReport:
        """Evaluate one optimizer suggestion synchronously and report back."""
        request = self.propose_work(iteration)
        new_samples = self.execution.evaluate_on_many(
            request.config, request.vms, iteration, request.budget
        )
        return self.complete_work(request, new_samples)

    @abc.abstractmethod
    def best_configuration(self) -> Tuple[Configuration, float]:
        """The configuration this methodology would deploy, plus its catalog value."""

    # -- helpers -------------------------------------------------------
    def _better(self, a: float, b: float) -> bool:
        return a > b if self.objective.higher_is_better else a < b


class TraditionalSampler(Sampler):
    """Single-machine, single-sample-per-configuration tuning (§6 baseline)."""

    name = "traditional"

    def __init__(
        self,
        optimizer: Optimizer,
        execution: ExecutionEngine,
        cluster: Cluster,
        seed: Optional[int] = None,
        worker_index: int = 0,
    ) -> None:
        super().__init__(optimizer, execution, cluster, seed=seed)
        if not 0 <= worker_index < cluster.n_workers:
            raise ValueError("worker_index out of range")
        self.worker = cluster.workers[worker_index]

    def propose_work(self, iteration: int) -> WorkRequest:
        config = self.optimizer.ask_batch(1)[0]
        return WorkRequest(config, budget=1, vms=[self.worker], iteration=iteration)

    def complete_work(
        self, request: WorkRequest, new_samples: List[Sample]
    ) -> IterationReport:
        (sample,) = new_samples
        self.datastore.add(sample)
        cost = objective_to_cost(sample.value, self.objective)
        self.optimizer.tell(request.config, cost, budget=1)
        return IterationReport(
            iteration=request.iteration,
            config=request.config,
            budget=1,
            reported_value=sample.value,
            raw_values=[sample.value],
            unstable=False,
            n_new_samples=1,
            wall_clock_hours=self.execution.duration_hours_for(self.worker),
            details={"crashed": sample.crashed},
        )

    def best_configuration(self) -> Tuple[Configuration, float]:
        samples = self.datastore.all_samples()
        if not samples:
            raise RuntimeError("no samples collected yet")
        best = samples[0]
        for sample in samples[1:]:
            if self._better(sample.value, best.value):
                best = sample
        return best.config, best.value


class NaiveDistributedSampler(Sampler):
    """Every configuration on every node, aggregated with ``min`` (§6.5.2)."""

    name = "naive-distributed"

    def __init__(
        self,
        optimizer: Optimizer,
        execution: ExecutionEngine,
        cluster: Cluster,
        seed: Optional[int] = None,
        aggregation: AggregationPolicy = AggregationPolicy.MIN,
    ) -> None:
        super().__init__(optimizer, execution, cluster, seed=seed)
        self.aggregation = aggregation
        self._catalog: Dict[Configuration, float] = {}

    def propose_work(self, iteration: int) -> WorkRequest:
        config = self.optimizer.ask_batch(1)[0]
        return WorkRequest(
            config,
            budget=self.cluster.n_workers,
            vms=list(self.cluster.workers),
            iteration=iteration,
        )

    def complete_work(
        self, request: WorkRequest, new_samples: List[Sample]
    ) -> IterationReport:
        config, budget = request.config, request.budget
        self.datastore.extend(new_samples)
        values = [s.value for s in new_samples]
        agg = aggregate(values, self.objective, self.aggregation)
        self._catalog[config] = agg
        self.optimizer.tell(config, objective_to_cost(agg, self.objective), budget=budget)
        return IterationReport(
            iteration=request.iteration,
            config=config,
            budget=budget,
            reported_value=agg,
            raw_values=values,
            unstable=False,
            n_new_samples=len(new_samples),
            wall_clock_hours=self.execution.request_duration_hours(request.vms),
            details={},
        )

    def best_configuration(self) -> Tuple[Configuration, float]:
        if not self._catalog:
            raise RuntimeError("no configurations evaluated yet")
        best_config = None
        best_value = None
        for config, value in self._catalog.items():
            if best_value is None or self._better(value, best_value):
                best_config, best_value = config, value
        return best_config, best_value


class TunaSampler(Sampler):
    """The TUNA sampling pipeline (Fig. 7).

    Parameters
    ----------
    use_noise_adjuster, use_outlier_detector:
        Ablation switches used by §6.6 (Figs. 19 and 20).
    budgets:
        Successive-halving node budgets; the top budget must not exceed the
        cluster size.
    eta:
        Successive-halving promotion ratio (top ``1/eta`` of a rung moves
        up); the schedule's default when ``None``.
    placement:
        Node-placement policy for the task scheduler:
        ``"heterogeneity"`` (default) trades queue depth against SKU speed
        and region diversity — on a homogeneous cluster it reproduces the
        legacy placement bit-for-bit; ``"fifo"`` is the naive round-robin
        baseline the heterogeneous-fleet benchmark compares against.
    liar:
        Constant-liar strategy for in-flight fantasies (``"min"``,
        ``"mean"`` or ``"max"``); the §6.6-style ablation knob.  The default
        ``"min"`` is the legacy behaviour, bit-for-bit.
    """

    name = "tuna"

    def __init__(
        self,
        optimizer: Optimizer,
        execution: ExecutionEngine,
        cluster: Cluster,
        seed: Optional[int] = None,
        budgets: Tuple[int, ...] = (1, 3, 10),
        eta: Optional[float] = None,
        aggregation: AggregationPolicy = AggregationPolicy.MIN,
        outlier_threshold: float = 0.30,
        use_noise_adjuster: bool = True,
        use_outlier_detector: bool = True,
        placement: str = "heterogeneity",
        liar: str = "min",
    ) -> None:
        super().__init__(optimizer, execution, cluster, seed=seed)
        if budgets[-1] > cluster.n_workers:
            raise ValueError("maximum budget cannot exceed the cluster size")
        schedule_kwargs = {} if eta is None else {"eta": eta}
        self.schedule = SuccessiveHalvingSchedule(
            objective=self.objective, budgets=budgets, **schedule_kwargs
        )
        self.scheduler = MultiFidelityTaskScheduler(
            cluster,
            seed=int(self._rng.integers(0, 2**31 - 1)),
            placement=placement,
        )
        self.outlier_detector = OutlierDetector(threshold=outlier_threshold)
        self.aggregation = aggregation
        self.use_noise_adjuster = use_noise_adjuster
        self.use_outlier_detector = use_outlier_detector
        self.noise_adjuster = NoiseAdjuster(
            worker_ids=cluster.worker_ids,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )
        self.liar = liar
        self._catalog: Dict[Configuration, Tuple[int, float]] = {}  # budget, value
        self._unstable_configs: set = set()
        # Workers currently running in-flight samples of a configuration
        # (asynchronous mode); they count towards the configuration's budget
        # and must never receive another sample of it.
        self._in_flight: Dict[Configuration, List[str]] = {}

    # ------------------------------------------------------------------ steps
    def _propose(self) -> Tuple[Configuration, int, str]:
        promotion, skipped = None, []
        while True:
            candidate = self.schedule.propose_promotion()
            if candidate is None:
                break
            if candidate[1] <= self.scheduler.n_alive:
                promotion = candidate
                break
            # Graceful degradation: node deaths shrank the fleet below this
            # rung's distinct-node budget, so the promotion can never be
            # scheduled again.  Park it (kept pending so the next
            # propose_promotion offers the rung's runner-up) and roll all
            # parked entries back afterwards — the study continues on the
            # survivors instead of deadlocking on an unreachable rung.
            skipped.append(candidate[0])
        for config in skipped:
            self.schedule.rollback_promotion(config)
        if promotion is not None:
            config, budget = promotion
            return config, budget, "promotion"
        config = self.optimizer.ask_batch(1, liar=self.liar)[0]
        # With several requests in flight the optimizer can re-suggest a
        # configuration whose samples have not landed yet.  The constant-liar
        # fantasy recorded by the duplicate ask steers the next suggestion
        # elsewhere, so retrying converges quickly; all fantasies for the
        # configuration are retracted together when its real result arrives.
        for _ in range(4):
            if config not in self._in_flight:
                break
            config = self.optimizer.ask_batch(1, liar=self.liar)[0]
        return config, self.schedule.min_budget, "new"

    def _adjust_samples(self, samples: List[Sample], unstable: bool) -> List[float]:
        adjusted = []
        for sample in samples:
            if self.use_noise_adjuster:
                value = self.noise_adjuster.adjust(sample, is_outlier=unstable)
            else:
                value = sample.value
            sample.adjusted_value = value
            adjusted.append(value)
        return adjusted

    def _retrain_noise_adjuster(self) -> None:
        if not self.use_noise_adjuster:
            return
        groups = []
        for config in self.schedule.configs_at_max_budget():
            if config in self._unstable_configs:
                continue
            groups.append(self.datastore.samples_for(config))
        if groups:
            self.noise_adjuster.train(groups)

    def propose_work(self, iteration: int) -> WorkRequest:
        config, budget, kind = self._propose()

        in_flight = list(self._in_flight.get(config, []))
        if kind == "promotion" and in_flight:
            # Promotion decisions must rest on landed samples only: counting
            # unlanded duplicates towards the budget would record the higher
            # rung from fewer distinct-node results than it claims.  Defer —
            # the async driver drains a completion and retries.
            self.schedule.rollback_promotion(config)
            raise RuntimeError(
                f"promotion deferred: samples of {config!r} are still in flight"
            )
        used_workers = self.datastore.workers_used(config)
        # Workers running speculative duplicates of this configuration hold
        # a result for an *existing* slot: exclude them from placement
        # without letting them count towards the budget.
        speculative = (
            list(self.speculation_probe(config))
            if self.speculation_probe is not None
            else []
        )
        try:
            vms = self.scheduler.assign(
                config, budget, used_workers + in_flight, excluded=speculative
            )
            if not vms and not used_workers:
                # Every sample counting towards the budget is still in
                # flight, so there is nothing to aggregate yet; schedule one
                # genuine sample on a fresh node instead of reporting on an
                # empty set.
                vms = self.scheduler.assign(
                    config,
                    min(len(in_flight) + 1, self.scheduler.n_workers),
                    in_flight,
                    excluded=speculative,
                )
                if not vms:
                    # In-flight duplicates already occupy every worker; an
                    # empty request would complete with nothing to report.
                    # Defer until they land.
                    raise RuntimeError(
                        f"proposal deferred: every worker already runs an "
                        f"in-flight sample of {config!r}"
                    )
        except (RuntimeError, ValueError):
            # Promotion is transactional: scheduling failed, so release the
            # reservation and leave the configuration proposable in its rung
            # rather than silently dropping it from the race (the async
            # driver retries once in-flight work frees workers).  A failed
            # new suggestion likewise retracts the one fantasy this proposal
            # recorded — not every fantasy for the configuration, which
            # would strip the lie still guarding an in-flight duplicate.
            if kind == "promotion":
                self.schedule.rollback_promotion(config)
            else:
                self.optimizer.retract_fantasy(config)
            raise
        if kind == "promotion":
            self.schedule.commit_promotion(config)

        worker_ids = [vm.vm_id for vm in vms]
        if worker_ids:
            self._in_flight.setdefault(config, []).extend(worker_ids)
            self.scheduler.reserve(worker_ids)
        return WorkRequest(config, budget, vms, iteration, kind=kind)

    def _complete(
        self,
        request: WorkRequest,
        new_samples: List[Sample],
        deferred_tells: Optional[List[Tuple[Configuration, float, float]]] = None,
    ) -> IterationReport:
        """Consume a finished request; the optimizer ``tell`` is appended to
        ``deferred_tells`` when given (wave batching) or issued inline."""
        config, budget = request.config, request.budget
        worker_ids = request.worker_ids
        if worker_ids:
            self.scheduler.release(worker_ids)
            in_flight = self._in_flight.get(config, [])
            for worker_id in worker_ids:
                if worker_id in in_flight:
                    in_flight.remove(worker_id)
            if not in_flight:
                self._in_flight.pop(config, None)

        self.datastore.extend(new_samples)
        all_samples = self.datastore.samples_for(config)
        if not all_samples:
            raise RuntimeError(
                f"request for {config!r} completed without any samples to report"
            )

        unstable = False
        if self.use_outlier_detector:
            unstable = self.outlier_detector.is_unstable(all_samples)
            if unstable:
                self._unstable_configs.add(config)

        adjusted_values = self._adjust_samples(all_samples, unstable)
        agg = aggregate(adjusted_values, self.objective, self.aggregation)
        if unstable:
            agg = apply_instability_penalty(agg, self.objective)

        self.schedule.record(config, budget, agg)
        self._catalog[config] = (budget, agg)
        cost = objective_to_cost(agg, self.objective)
        if deferred_tells is None:
            self.optimizer.tell(config, cost, budget=budget)
        else:
            deferred_tells.append((config, cost, float(budget)))

        # Training happens after inference so no information leaks into the
        # values reported this iteration (§6.6).
        if budget == self.schedule.max_budget and not unstable:
            self._retrain_noise_adjuster()

        # Samples on different nodes run in parallel, so a request costs one
        # evaluation of wall-clock — the slowest assigned worker's, in a
        # mixed fleet — unless it scheduled nothing (a promotion fully
        # covered by reused samples), which is free: charging it a full
        # evaluation would skew the equal-cost comparison of §6.5.
        wall_clock_hours = (
            self.execution.request_duration_hours(request.vms) if new_samples else 0.0
        )

        return IterationReport(
            iteration=request.iteration,
            config=config,
            budget=budget,
            reported_value=agg,
            raw_values=[s.value for s in all_samples],
            unstable=unstable,
            n_new_samples=len(new_samples),
            wall_clock_hours=wall_clock_hours,
            details={
                "adjusted_values": adjusted_values,
                "model_generation": self.noise_adjuster.generation,
            },
        )

    def complete_work(
        self, request: WorkRequest, new_samples: List[Sample]
    ) -> IterationReport:
        return self._complete(request, new_samples)

    def complete_work_batch(
        self, completed: List[Tuple[WorkRequest, List[Sample]]]
    ) -> List[IterationReport]:
        """Complete a wave of requests with one batched optimizer tell.

        Completions that land in the same event-loop drain go through a
        single :meth:`~repro.optimizers.base.Optimizer.tell_batch`, so the
        surrogate refits once per wave instead of once per landed result
        (single-``tell`` semantics are unchanged: same observations, same
        retracted fantasies, one cache invalidation instead of several).
        An empty wave is a no-op: nothing recorded, no data-version bump.
        """
        if not completed:
            return []
        tells: List[Tuple[Configuration, float, float]] = []
        reports = [
            self._complete(request, samples, deferred_tells=tells)
            for request, samples in completed
        ]
        self.optimizer.tell_batch(tells)
        return reports

    # ------------------------------------------------------------------ output
    def best_configuration(self) -> Tuple[Configuration, float]:
        """Best stable configuration, preferring the highest budget reached."""
        if not self._catalog:
            raise RuntimeError("no configurations evaluated yet")
        candidates = []
        for config, (budget, value) in self._catalog.items():
            if config in self._unstable_configs:
                continue
            candidates.append((budget, value, config))
        if not candidates:  # everything unstable: fall back to the full catalog
            candidates = [
                (budget, value, config)
                for config, (budget, value) in self._catalog.items()
            ]
        max_budget_reached = max(budget for budget, _, _ in candidates)
        finalists = [c for c in candidates if c[0] == max_budget_reached]
        best = finalists[0]
        for entry in finalists[1:]:
            if self._better(entry[1], best[1]):
                best = entry
        return best[2], best[1]

    @property
    def n_unstable_configs(self) -> int:
        return len(self._unstable_configs)


def build_sampler(
    name: str,
    optimizer: Optimizer,
    execution: ExecutionEngine,
    cluster: Cluster,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> Sampler:
    """Instantiate a sampler by name (``tuna``, ``traditional``, ``naive``)."""
    name = name.lower()
    if name == "tuna":
        return TunaSampler(optimizer, execution, cluster, seed=seed, **kwargs)
    if name == "traditional":
        return TraditionalSampler(optimizer, execution, cluster, seed=seed, **kwargs)
    if name in ("naive", "naive-distributed"):
        return NaiveDistributedSampler(optimizer, execution, cluster, seed=seed, **kwargs)
    raise KeyError(f"unknown sampler {name!r}; known: tuna, traditional, naive")

"""Noise-adjuster model (§4.3, Algorithms 1 and 2).

Given a sample's guest-OS telemetry and a one-hot encoding of the worker it
ran on, a random-forest regressor predicts the sample's *relative error*
(how far the measured value sits from the configuration's mean), and the
measured value is divided by ``1 + prediction`` to recover an estimate of the
noise-free mean.  Design decisions follow the paper:

* the model starts empty for every tuning run (no transfer learning);
* it trains only on configurations that have been evaluated at the highest
  budget (those are the most reliable, and unstable configs have already been
  filtered out of them by the outlier detector);
* it is rebuilt from scratch every time a new training point arrives (random
  forests are cheap to train at this scale — the vectorized all-trees-at-once
  builder in :mod:`repro.ml.treebuilder` fits the whole 24-tree forest in one
  level-synchronous pass); rebuilds against an *unchanged* training set are
  skipped via a :class:`~repro.ml.cache.SurrogateCache` keyed on a
  fingerprint of the training matrix;
* inference is bypassed for configurations flagged unstable — they are
  outside the training distribution and already heavily penalised.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cloud.telemetry import TELEMETRY_METRICS
from repro.core.datastore import Sample
from repro.ml.cache import SurrogateCache
from repro.ml.forest import RandomForestRegressor
from repro.ml.preprocessing import OneHotEncoder, StandardScaler


class NoiseAdjuster:
    """Random-forest model of sample noise."""

    def __init__(
        self,
        worker_ids: Sequence[str],
        n_trees: int = 24,
        min_training_configs: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        if not worker_ids:
            raise ValueError("worker_ids must be non-empty")
        if min_training_configs < 1:
            raise ValueError("min_training_configs must be >= 1")
        self._worker_encoder = OneHotEncoder(categories=list(worker_ids)).fit([])
        self.n_trees = n_trees
        self.min_training_configs = min_training_configs
        self._rng = np.random.default_rng(seed)
        self._scaler: Optional[StandardScaler] = None
        self._model: Optional[RandomForestRegressor] = None
        self._cache = SurrogateCache()
        self.n_training_samples = 0
        self.n_training_configs = 0
        self.generation = 0

    # ------------------------------------------------------------------ state
    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def _features(self, telemetry: np.ndarray, worker_id: str) -> np.ndarray:
        telemetry = np.asarray(telemetry, dtype=float)
        if telemetry.shape != (len(TELEMETRY_METRICS),):
            raise ValueError(
                f"telemetry vector must have {len(TELEMETRY_METRICS)} entries, "
                f"got shape {telemetry.shape}"
            )
        worker_vec = self._worker_encoder.transform_one(worker_id)
        return np.concatenate([telemetry, worker_vec])

    # ------------------------------------------------------------------ train
    def train(self, groups: Sequence[Sequence[Sample]]) -> bool:
        """(Re)build the model from max-budget configurations' samples.

        Parameters
        ----------
        groups:
            One sequence of samples per configuration (Algorithm 1's
            ``C × W`` loop).  Crashed samples and samples without telemetry
            are skipped.  Returns ``True`` when a model was fitted.
        """
        X_rows: List[np.ndarray] = []
        y_rows: List[float] = []
        n_configs = 0
        for samples in groups:
            usable = [s for s in samples if not s.crashed and s.telemetry is not None]
            if len(usable) < 2:
                continue
            mean_value = float(np.mean([s.value for s in usable]))
            if mean_value == 0.0:
                continue
            n_configs += 1
            for sample in usable:
                X_rows.append(self._features(sample.telemetry, sample.worker_id))
                y_rows.append(sample.value / mean_value - 1.0)  # percent error

        if n_configs < self.min_training_configs or len(X_rows) < 4:
            return False

        X = np.stack(X_rows, axis=0)
        y = np.asarray(y_rows, dtype=float)
        # Exact fingerprint of the training matrix: a retrain against
        # byte-identical data (e.g. repeated max-budget evaluations that
        # contributed no usable new samples) reuses the fitted forest.
        # Hashing the raw bytes is O(n·d) — negligible next to a refit —
        # and cannot collide the way summary statistics can.
        key = (n_configs, X.shape, X.tobytes(), y.tobytes())
        cached = self._cache.get(key)
        if cached is not None:
            # The refit is skipped, but a training round still happened:
            # keep the generation counter (exposed in iteration telemetry)
            # advancing exactly as an uncached rebuild would.
            self._scaler, self._model = cached
            self.n_training_samples = len(y_rows)
            self.n_training_configs = n_configs
            self.generation += 1
            return True
        scaler = StandardScaler().fit(X)
        model = RandomForestRegressor(
            n_estimators=self.n_trees,
            min_samples_leaf=2,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )
        model.fit(scaler.transform(X), y)
        self._cache.put(key, (scaler, model))
        self._scaler = scaler
        self._model = model
        self.n_training_samples = len(y_rows)
        self.n_training_configs = n_configs
        self.generation += 1
        return True

    # ------------------------------------------------------------------ infer
    def predict_error(self, telemetry: np.ndarray, worker_id: str) -> float:
        """Predicted relative error ``s`` for one sample (Algorithm 2 line 1)."""
        if self._model is None or self._scaler is None:
            raise RuntimeError("noise adjuster has not been trained yet")
        features = self._features(telemetry, worker_id)[None, :]
        return float(self._model.predict(self._scaler.transform(features))[0])

    def adjust(self, sample: Sample, is_outlier: bool = False) -> float:
        """Return the de-noised value for a sample (Algorithm 2).

        Crashed samples, unstable configurations and samples without telemetry
        bypass the model and keep their raw value, as does everything before
        the first training round.
        """
        if (
            is_outlier
            or sample.crashed
            or sample.telemetry is None
            or not self.is_trained
        ):
            return float(sample.value)
        predicted = self.predict_error(sample.telemetry, sample.worker_id)
        # Guard against pathological predictions (paper's future-work note on
        # guardrails): never let the model swing a value by more than 30 %.
        predicted = float(np.clip(predicted, -0.30, 0.30))
        return float(sample.value / (1.0 + predicted))

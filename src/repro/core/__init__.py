"""TUNA core: the paper's primary contribution.

TUNA changes *how configurations are sampled*, not the optimizer or the
system under test (Fig. 7).  The pieces map one-to-one onto the paper's
design section:

* :mod:`repro.core.multi_fidelity` — Successive-Halving budget schedule where
  budget = number of distinct worker nodes (§4.1).
* :mod:`repro.core.outlier` — relative-range unstable-configuration detector
  with the 30 % threshold and performance-halving penalty (§4.2).
* :mod:`repro.core.noise_adjuster` — random-forest noise model over guest
  telemetry + one-hot worker id (§4.3, Algorithms 1-2).
* :mod:`repro.core.aggregation` — ``min`` aggregation policy (§4.4).
* :mod:`repro.core.scheduler` — node placement that never re-runs a config on
  a node it already used (§5.1).
* :mod:`repro.core.async_engine` — discrete-event cluster simulation for
  asynchronous batched execution: per-worker timelines, makespan accounting,
  fault-model duration stretch and speculative re-execution of stragglers
  (the models and policies live in :mod:`repro.faults`).  Scales to
  10k-worker fleets via :mod:`repro.core.worker_index` (indexed idle/claim
  structures) and :mod:`repro.core.telemetry_slots` (bounded telemetry);
  :mod:`repro.core.loop_reference` retains the linear-scan loop the indexed
  one is equivalence-tested and benchmarked against.
* :mod:`repro.core.liveness` / :mod:`repro.core.validation` — gray-failure
  tolerance: simulated-time liveness leases with epoch fencing (silent
  workers are *suspected*, their stale reports rejected as zombies) and the
  result-quarantine gate that keeps NaN/Inf/out-of-domain measurements away
  from the optimizer (the silence models live in
  :mod:`repro.faults.partition`).
* :mod:`repro.core.samplers` — the full TUNA pipeline plus the baselines it
  is compared against (traditional single-node sampling and naive
  distributed sampling, §6).
* :mod:`repro.core.tuner` — the offline tuning loop and deployment
  evaluation harness.
"""

from repro.core.aggregation import AggregationPolicy, aggregate
from repro.core.async_engine import (
    AsyncExecutionEngine,
    ClusterEventLoop,
    RetryPolicy,
    WorkItem,
    WorkRequest,
)
from repro.core.datastore import Datastore, Sample
from repro.core.eventlog import EventLog, EventLogError
from repro.core.execution import ExecutionEngine
from repro.core.liveness import GrayStats, LivenessMonitor
from repro.core.loop_reference import ScanEventLoop
from repro.core.multi_fidelity import SuccessiveHalvingSchedule
from repro.core.noise_adjuster import NoiseAdjuster
from repro.core.outlier import OutlierDetector
from repro.core.samplers import (
    IterationReport,
    NaiveDistributedSampler,
    Sampler,
    TraditionalSampler,
    TunaSampler,
    build_sampler,
)
from repro.core.scheduler import MultiFidelityTaskScheduler
from repro.core.telemetry_slots import LoopTelemetry, RingBuffer, SpillSummary
from repro.core.tuner import (
    DeploymentResult,
    StudyInterrupted,
    TuningLoop,
    TuningResult,
    deploy_configuration,
)
from repro.core.validation import (
    CORRUPTION_MODELS,
    CorruptionContext,
    CorruptionDecision,
    CorruptionModel,
    CorruptResultModel,
    NoCorruptionModel,
    ResultValidator,
    build_corruption_model,
    build_validator,
)
from repro.core.worker_index import WorkerIndex

__all__ = [
    "AggregationPolicy",
    "AsyncExecutionEngine",
    "CORRUPTION_MODELS",
    "ClusterEventLoop",
    "CorruptResultModel",
    "CorruptionContext",
    "CorruptionDecision",
    "CorruptionModel",
    "Datastore",
    "EventLog",
    "EventLogError",
    "GrayStats",
    "IterationReport",
    "build_corruption_model",
    "build_sampler",
    "build_validator",
    "DeploymentResult",
    "ExecutionEngine",
    "LivenessMonitor",
    "LoopTelemetry",
    "RetryPolicy",
    "RingBuffer",
    "ScanEventLoop",
    "SpillSummary",
    "StudyInterrupted",
    "MultiFidelityTaskScheduler",
    "NaiveDistributedSampler",
    "NoCorruptionModel",
    "NoiseAdjuster",
    "OutlierDetector",
    "ResultValidator",
    "Sample",
    "Sampler",
    "SuccessiveHalvingSchedule",
    "TraditionalSampler",
    "TunaSampler",
    "TuningLoop",
    "TuningResult",
    "WorkItem",
    "WorkRequest",
    "WorkerIndex",
    "aggregate",
    "deploy_configuration",
]

"""TUNA core: the paper's primary contribution.

TUNA changes *how configurations are sampled*, not the optimizer or the
system under test (Fig. 7).  The pieces map one-to-one onto the paper's
design section:

* :mod:`repro.core.multi_fidelity` — Successive-Halving budget schedule where
  budget = number of distinct worker nodes (§4.1).
* :mod:`repro.core.outlier` — relative-range unstable-configuration detector
  with the 30 % threshold and performance-halving penalty (§4.2).
* :mod:`repro.core.noise_adjuster` — random-forest noise model over guest
  telemetry + one-hot worker id (§4.3, Algorithms 1-2).
* :mod:`repro.core.aggregation` — ``min`` aggregation policy (§4.4).
* :mod:`repro.core.scheduler` — node placement that never re-runs a config on
  a node it already used (§5.1).
* :mod:`repro.core.async_engine` — discrete-event cluster simulation for
  asynchronous batched execution: per-worker timelines, makespan accounting,
  fault-model duration stretch and speculative re-execution of stragglers
  (the models and policies live in :mod:`repro.faults`).  Scales to
  10k-worker fleets via :mod:`repro.core.worker_index` (indexed idle/claim
  structures) and :mod:`repro.core.telemetry_slots` (bounded telemetry);
  :mod:`repro.core.loop_reference` retains the linear-scan loop the indexed
  one is equivalence-tested and benchmarked against.
* :mod:`repro.core.samplers` — the full TUNA pipeline plus the baselines it
  is compared against (traditional single-node sampling and naive
  distributed sampling, §6).
* :mod:`repro.core.tuner` — the offline tuning loop and deployment
  evaluation harness.
"""

from repro.core.aggregation import AggregationPolicy, aggregate
from repro.core.async_engine import (
    AsyncExecutionEngine,
    ClusterEventLoop,
    RetryPolicy,
    WorkItem,
    WorkRequest,
)
from repro.core.datastore import Datastore, Sample
from repro.core.eventlog import EventLog, EventLogError
from repro.core.execution import ExecutionEngine
from repro.core.loop_reference import ScanEventLoop
from repro.core.multi_fidelity import SuccessiveHalvingSchedule
from repro.core.noise_adjuster import NoiseAdjuster
from repro.core.outlier import OutlierDetector
from repro.core.samplers import (
    IterationReport,
    NaiveDistributedSampler,
    Sampler,
    TraditionalSampler,
    TunaSampler,
    build_sampler,
)
from repro.core.scheduler import MultiFidelityTaskScheduler
from repro.core.telemetry_slots import LoopTelemetry, RingBuffer, SpillSummary
from repro.core.tuner import (
    DeploymentResult,
    StudyInterrupted,
    TuningLoop,
    TuningResult,
    deploy_configuration,
)
from repro.core.worker_index import WorkerIndex

__all__ = [
    "AggregationPolicy",
    "AsyncExecutionEngine",
    "ClusterEventLoop",
    "Datastore",
    "EventLog",
    "EventLogError",
    "IterationReport",
    "build_sampler",
    "DeploymentResult",
    "ExecutionEngine",
    "LoopTelemetry",
    "RetryPolicy",
    "RingBuffer",
    "ScanEventLoop",
    "SpillSummary",
    "StudyInterrupted",
    "MultiFidelityTaskScheduler",
    "NaiveDistributedSampler",
    "NoiseAdjuster",
    "OutlierDetector",
    "Sample",
    "Sampler",
    "SuccessiveHalvingSchedule",
    "TraditionalSampler",
    "TunaSampler",
    "TuningLoop",
    "TuningResult",
    "WorkItem",
    "WorkRequest",
    "WorkerIndex",
    "aggregate",
    "deploy_configuration",
]

"""Sample aggregation policies (§4.4).

TUNA reports the *minimum* performance across a configuration's samples to
the optimizer: it penalises unstable configurations and optimises for the
worst case a deployment could see.  Mean and median are provided for the
ablations discussed in the paper (§4.4 argues they hide outliers).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.workloads.base import Objective


class AggregationPolicy(str, enum.Enum):
    """Supported policies for collapsing samples into one optimizer value."""

    MIN = "min"
    MEAN = "mean"
    MEDIAN = "median"
    MAX = "max"


def aggregate(
    values: Sequence[float],
    objective: Objective,
    policy: AggregationPolicy = AggregationPolicy.MIN,
) -> float:
    """Aggregate objective values into a single number.

    ``MIN`` always means "worst case in the objective's own sense": the lowest
    throughput, or the highest latency / runtime.  ``MAX`` is the symmetric
    best case.
    """
    if len(values) == 0:
        raise ValueError("cannot aggregate zero samples")
    arr = np.asarray(list(values), dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError("values must be finite (apply crash penalties first)")

    if policy is AggregationPolicy.MEAN:
        return float(arr.mean())
    if policy is AggregationPolicy.MEDIAN:
        return float(np.median(arr))
    if policy is AggregationPolicy.MIN:
        return float(arr.min()) if objective.higher_is_better else float(arr.max())
    if policy is AggregationPolicy.MAX:
        return float(arr.max()) if objective.higher_is_better else float(arr.min())
    raise ValueError(f"unknown aggregation policy {policy!r}")


def apply_instability_penalty(value: float, objective: Objective) -> float:
    """Penalise an unstable configuration's reported value (§4.2).

    The paper halves the reported performance; for minimisation objectives the
    equivalent is doubling the reported runtime/latency.
    """
    if objective.higher_is_better:
        return float(value) / 2.0
    return float(value) * 2.0

"""Result quarantine: the gate between the engine and the optimizer.

A gray-failing worker does not only stall — it can return *garbage*: NaN
from a wedged benchmark harness, infinities from a division by a zeroed
counter, wildly out-of-domain readings from a half-configured SuT.  Told to
the optimizer, a single such value poisons the surrogate (NaN propagates
through every fit) or pins the incumbent to a physically impossible
optimum.  The :class:`ResultValidator` sits between
:class:`~repro.core.async_engine.AsyncExecutionEngine` and the sampler: a
completed sample whose objective value fails validation is *quarantined* —
logged, tallied, and re-measured under the slot's retry budget; a slot that
exhausts its budget surfaces as the paper's crash-penalty sample, exactly
like the fail-stop path, so the optimizer always receives exactly one
finite, in-domain result per slot.

:class:`CorruptResultModel` is the matching fault injector: a seeded
per-worker model (domain tag 19, same contract as the crash and partition
models) that corrupts a configurable fraction of measured values into NaN,
infinity or wild out-of-domain readings — exercising the quarantine gate
end to end.  The validator itself consumes no RNG and, on finite in-domain
values, changes nothing: enabling validation on a clean run is bit-for-bit
inert.
"""

from __future__ import annotations

import abc
import math
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ResultValidator:
    """Objective-domain gate: rejects NaN/Inf and out-of-domain values.

    ``lower``/``upper`` optionally bound the physically plausible objective
    domain (throughput cannot be negative, latency cannot exceed the
    timeout...); without bounds only non-finite values are rejected.
    :meth:`check` returns ``None`` for an acceptable value or a short
    reason string — pure arithmetic, no RNG, no state.
    """

    lower: Optional[float] = None
    upper: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.lower is not None
            and self.upper is not None
            and self.lower > self.upper
        ):
            raise ValueError("lower bound must not exceed upper bound")

    def check(self, value: float) -> Optional[str]:
        """``None`` when the value may reach the optimizer, else the reason."""
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf"
        if self.lower is not None and value < self.lower:
            return "below-domain"
        if self.upper is not None and value > self.upper:
            return "above-domain"
        return None


def build_validator(
    spec: "ResultValidator | bool | None",
) -> Optional[ResultValidator]:
    """Normalise the ``validation=`` argument: ``True`` means defaults."""
    if spec is True:
        return ResultValidator()
    if spec is False or spec is None:
        return None
    return spec


@dataclass(frozen=True)
class CorruptionContext:
    """The completed run a corruption decision is drawn for."""

    worker_id: str
    start_hours: float
    duration_hours: float
    speculative: bool = False


@dataclass(frozen=True)
class CorruptionDecision:
    """What a corruption model decided for one measured value.

    ``kind`` is one of ``"nan"``, ``"inf"``, ``"wild"``; :meth:`apply`
    turns the true measurement into the corrupted reading.
    """

    corrupted: bool
    kind: str = ""

    #: Multiplier for ``"wild"`` corruption: far outside any plausible
    #: objective domain, but still finite (only a bounded validator can
    #: catch it — NaN/Inf are caught unconditionally).
    WILD_FACTOR = 1e9

    def apply(self, value: float) -> float:
        if not self.corrupted:
            return value
        if self.kind == "nan":
            return float("nan")
        if self.kind == "inf":
            return float("inf") if value >= 0 else float("-inf")
        return value * self.WILD_FACTOR


#: The shared "measurement is sound" decision (no per-call allocation).
SOUND = CorruptionDecision(corrupted=False)


class CorruptionModel(abc.ABC):
    """Base class: seeded per-worker RNG streams + the decision interface."""

    name = "abstract"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = 0 if seed is None else int(seed)
        self._streams: Dict[Tuple[str, int], np.random.Generator] = {}

    @property
    def is_null(self) -> bool:
        """True when the model never corrupts and never consumes RNG."""
        return False

    def stream_for(self, worker_id: str, channel: int = 0) -> np.random.Generator:
        """A worker's private corruption-RNG stream (lazily derived).

        Domain tag 19 (crash 13, partition 17, windowed faults 7): the same
        master seed yields decorrelated streams across fault domains.
        Channel 0 carries regular submissions, channel 1 speculative
        duplicates.
        """
        key = (worker_id, channel)
        stream = self._streams.get(key)
        if stream is None:
            entropy = np.random.SeedSequence(
                [self._seed, zlib.crc32(worker_id.encode("utf-8")), 19, channel]
            )
            stream = np.random.default_rng(entropy)
            self._streams[key] = stream
        return stream

    def _stream(self, context: CorruptionContext) -> np.random.Generator:
        return self.stream_for(context.worker_id, 1 if context.speculative else 0)

    @abc.abstractmethod
    def decide(self, context: CorruptionContext) -> CorruptionDecision:
        """Decide whether (and how) the measured value is corrupted."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self._seed})"


class NoCorruptionModel(CorruptionModel):
    """The ``"none"`` model: every measurement is sound, no RNG consumed."""

    name = "none"

    @property
    def is_null(self) -> bool:
        return True

    def decide(self, context: CorruptionContext) -> CorruptionDecision:
        return SOUND


class CorruptResultModel(CorruptionModel):
    """Seeded garbage injection: NaN, infinities, wild readings.

    With probability ``rate`` a measured value is replaced: a third of the
    hits each become NaN, signed infinity, or a wild (finite but absurd)
    reading.  Two draws per decision, unconditionally, so the stream
    position never depends on earlier outcomes.
    """

    name = "corrupt_result"

    def __init__(self, seed: Optional[int] = None, rate: float = 0.05) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = float(rate)

    def decide(self, context: CorruptionContext) -> CorruptionDecision:
        rng = self._stream(context)
        hit = rng.random() < self.rate
        mode = float(rng.random())
        if not hit:
            return SOUND
        if mode < 1.0 / 3.0:
            kind = "nan"
        elif mode < 2.0 / 3.0:
            kind = "inf"
        else:
            kind = "wild"
        return CorruptionDecision(corrupted=True, kind=kind)


#: Known model names for :func:`build_corruption_model` (aliases included).
CORRUPTION_MODELS = {
    "none": NoCorruptionModel,
    "corrupt_result": CorruptResultModel,
    "corrupt": CorruptResultModel,
}


def build_corruption_model(
    spec: "CorruptionModel | str | None",
    seed: Optional[int] = None,
    **kwargs: Any,
) -> Optional[CorruptionModel]:
    """Instantiate a corruption model by name; instances/None pass through."""
    if spec is None or isinstance(spec, CorruptionModel):
        return spec
    name = str(spec).lower()
    if name not in CORRUPTION_MODELS:
        raise KeyError(
            f"unknown corruption model {spec!r}; known: {sorted(CORRUPTION_MODELS)}"
        )
    cls = CORRUPTION_MODELS[name]
    if cls is NoCorruptionModel:
        return NoCorruptionModel()
    return cls(seed=seed, **kwargs)

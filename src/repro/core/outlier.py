"""Unstable-configuration detection (§4.2).

A configuration is classified *unstable* when the relative range of its
samples — ``(max - min) / mean`` — exceeds a fixed threshold (30 % in the
paper, anywhere in 15-30 % argued to be reasonable).  The heuristic is
deliberately insensitive to how many outliers there are: one catastrophic
node is enough, because a single such node in production would violate the
SLA the configuration is being tuned for.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.datastore import Sample
from repro.ml.metrics import relative_range


class OutlierDetector:
    """Relative-range stability classifier."""

    def __init__(self, threshold: float = 0.30) -> None:
        if not 0.0 < threshold:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def relative_range(self, values: Sequence[float]) -> float:
        """Relative range of a set of measured values."""
        return relative_range(list(values))

    def is_unstable_values(self, values: Sequence[float]) -> bool:
        """Classify a set of raw objective values."""
        if len(values) < 2:
            # A single sample carries no spread information; never flag it.
            return False
        return self.relative_range(values) > self.threshold

    def is_unstable(self, samples: Sequence[Sample]) -> bool:
        """Classify a configuration from its samples.

        A crashed sample is an immediate instability verdict — a config that
        kills the SuT on some nodes is the extreme case of what the detector
        exists to catch.
        """
        samples = list(samples)
        if not samples:
            return False
        if any(sample.crashed for sample in samples):
            return True
        return self.is_unstable_values([sample.value for sample in samples])

"""Simulated-time liveness leases: heartbeat monitoring and epoch fencing.

A gray failure is a worker that goes *silent* without dying — stalled,
partitioned, or just slow to report.  The orchestrator cannot distinguish
"slow" from "lost", so it leases: every :class:`WorkItem` assignment carries
a monotonically increasing **lease epoch**, and the :class:`LivenessMonitor`
tracks, per in-flight item, the last simulated instant a heartbeat was
heard (``item.silent_at``, set by the event loop from the partition model's
decision).  When silence outlives the lease timeout the item's lease
expires: the engine declares the worker *suspected* (not dead), fences the
item's epoch and re-submits the slot under a new epoch through the existing
retry path.  A fenced item's eventual report — the *zombie* — is
deterministically rejected at its pop, so exactly one accepted result per
sample slot holds under any interleaving of stalls, partitions, crashes and
speculation.

Determinism: the monitor consumes no RNG.  Suspicion instants are pure
arithmetic (``silent_at + lease_timeout``), processed in ``(deadline,
epoch)`` order strictly before any completion they precede, and epochs are
assigned in submission order — so a fixed seed reproduces the suspicion and
fencing trace exactly.  Without a partition model no item is ever silent
before its report (``silent_at == finish``), so an armed monitor schedules
no suspicions and the trajectory is bit-for-bit the unleased one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # annotation only; avoids the core<->engine import cycle
    from repro.core.async_engine import WorkItem


@dataclass
class GrayStats:
    """What the gray-failure machinery observed and did during a run."""

    n_suspected: int = 0
    n_zombies_rejected: int = 0
    n_quarantined: int = 0
    n_quarantine_retries: int = 0
    n_quarantine_penalized: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "n_suspected": self.n_suspected,
            "n_zombies_rejected": self.n_zombies_rejected,
            "n_quarantined": self.n_quarantined,
            "n_quarantine_retries": self.n_quarantine_retries,
            "n_quarantine_penalized": self.n_quarantine_penalized,
        }


class LivenessMonitor:
    """Lease table over in-flight work items, in simulated time.

    :meth:`grant` stamps each submitted item with the next lease epoch and —
    only when the item will actually outlive its lease in silence — queues
    its suspicion deadline; :meth:`next_suspicion_before` hands expiries to
    the event loop in deterministic ``(deadline, epoch)`` order;
    :meth:`settle` lazily retires leases whose item already reported or was
    cancelled (stale heap entries are skipped on pop, the usual lazy-heap
    discipline).
    """

    def __init__(self, lease_timeout_hours: float) -> None:
        if lease_timeout_hours <= 0:
            raise ValueError("lease_timeout_hours must be positive")
        self.lease_timeout_hours = float(lease_timeout_hours)
        self._next_epoch = 1
        #: Items under a live (unsettled) lease, keyed by item sequence.
        self._leased: Dict[int, "WorkItem"] = {}
        #: Pending suspicion deadlines: (deadline, epoch, item sequence).
        self._deadlines: List[Tuple[float, int, int]] = []

    @property
    def n_leased(self) -> int:
        """Leases that could still expire (suspicion scheduled, unsettled)."""
        return len(self._leased)

    def grant(self, item: "WorkItem") -> int:
        """Stamp the item with a fresh lease epoch; schedule its expiry.

        The suspicion deadline is ``silent_at + lease_timeout``.  An item
        that reports before its deadline (``deadline >= finish_hours``) can
        never be suspected, so no heap entry is created for it — with no
        partition model armed this is every item, and the monitor reduces
        to an epoch counter.
        """
        epoch = self._next_epoch
        self._next_epoch += 1
        item.epoch = epoch
        deadline = item.silent_at + self.lease_timeout_hours
        if deadline < item.finish_hours:
            self._leased[item.sequence] = item
            heapq.heappush(self._deadlines, (deadline, epoch, item.sequence))
        return epoch

    def settle(self, sequence: int) -> None:
        """Retire a lease (its item reported or was cancelled)."""
        self._leased.pop(sequence, None)

    def next_suspicion_before(
        self, horizon: Optional[float]
    ) -> Optional[Tuple[float, "WorkItem"]]:
        """Pop the earliest pending suspicion strictly before ``horizon``.

        ``horizon`` is the next completion's pop time (``None``: no work in
        flight, every pending suspicion is eligible).  A report arriving
        exactly at the deadline wins the race: only strictly earlier
        suspicions fire, so the suspicion/completion interleaving is
        unambiguous.  The popped item's lease is retired here; the caller
        fences its epoch.
        """
        while self._deadlines:
            deadline, epoch, sequence = self._deadlines[0]
            item = self._leased.get(sequence)
            if item is None or item.epoch != epoch or item.cancelled or item.done:
                heapq.heappop(self._deadlines)  # stale lease: lazily dropped
                continue
            if horizon is not None and deadline >= horizon:
                return None
            heapq.heappop(self._deadlines)
            del self._leased[sequence]
            return deadline, item
        return None

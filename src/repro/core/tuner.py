"""Offline tuning loop and deployment evaluation.

The paper's evaluation protocol (§6) is: run a sampling methodology offline
for a fixed wall-clock budget, pick the best configuration from its catalog,
then *deploy* that configuration on a set of brand-new nodes and report the
mean and standard deviation of its performance there.  :class:`TuningLoop`
implements the first half and :func:`deploy_configuration` the second.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration
from repro.core.async_engine import AsyncExecutionEngine, RetryPolicy
from repro.core.eventlog import EventLog
from repro.core.execution import ExecutionEngine
from repro.core.samplers import IterationReport, Sampler
from repro.core.validation import (
    CorruptionModel,
    ResultValidator,
    build_corruption_model,
    build_validator,
)
from repro.faults import (
    CrashModel,
    FaultModel,
    PartitionModel,
    SpeculationPolicy,
    build_crash_model,
    build_fault_model,
    build_partition_model,
)
from repro.ml.metrics import coefficient_of_variation, relative_range
from repro.systems.base import SystemUnderTest
from repro.workloads.base import Workload

if TYPE_CHECKING:  # annotation only; obs is an optional attachment
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import TraceRecorder


@dataclass
class TuningResult:
    """Everything a tuning run produced.

    ``engine_stats`` carries the speculative re-execution counters
    (stragglers detected, duplicates submitted/won/lost) when straggler
    mitigation was armed; ``None`` otherwise.
    """

    sampler_name: str
    workload_name: str
    best_config: Configuration
    best_catalog_value: float
    higher_is_better: bool = True
    history: List[IterationReport] = field(default_factory=list)
    n_iterations: int = 0
    n_samples: int = 0
    wall_clock_hours: float = 0.0
    engine_stats: Optional[dict] = None

    def best_so_far_trace(self) -> List[float]:
        """Best *reported* value after each iteration (convergence curve)."""
        trace: List[float] = []
        best: Optional[float] = None
        for report in self.history:
            value = report.reported_value
            if best is None:
                best = value
            elif self.higher_is_better:
                best = max(best, value)
            else:
                best = min(best, value)
            trace.append(best)
        return trace

    def samples_per_iteration(self) -> List[int]:
        return [report.n_new_samples for report in self.history]


@dataclass
class DeploymentResult:
    """Performance of one configuration deployed on fresh nodes (§6)."""

    config: Configuration
    values: List[float]
    crashes: int
    objective_unit: str
    higher_is_better: bool

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def cov(self) -> float:
        return coefficient_of_variation(self.values)

    @property
    def worst(self) -> float:
        return float(np.min(self.values)) if self.higher_is_better else float(np.max(self.values))

    @property
    def relative_range(self) -> float:
        """Relative range, by the same definition the outlier detector uses.

        A single deployment value carries no spread information, so — like
        :meth:`repro.core.outlier.OutlierDetector.is_unstable_values` — it
        reports zero rather than dividing a degenerate range by the mean
        (and a zero mean raises, exactly as in
        :func:`repro.ml.metrics.relative_range`).
        """
        if len(self.values) < 2:
            return 0.0
        return relative_range(self.values)


class StudyInterrupted(RuntimeError):
    """The ``stop_after_waves`` kill switch fired mid-study.

    Simulates a fail-stop of the tuning *process* itself (as opposed to a
    worker): the study stops dead at a wave boundary, exactly like a killed
    run, and can be resurrected with :meth:`TuningLoop.resume` from its
    last checkpoint.
    """

    def __init__(self, wave: int, checkpoint_path: Optional[str] = None) -> None:
        self.wave = wave
        self.checkpoint_path = checkpoint_path
        message = f"study interrupted after wave {wave}"
        if checkpoint_path:
            message += f"; resume from {checkpoint_path}"
        super().__init__(message)


@dataclass
class _AsyncRunState:
    """Everything the asynchronous driver accumulates between waves.

    This is the unit of checkpointing: pickling it (together with the
    owning :class:`TuningLoop`) captures the engine — and through it the
    event-loop clocks, fault/crash RNG streams, in-flight item set and
    scheduler reservations — plus the driver's own counters, so a resumed
    run continues from the exact wave boundary the checkpoint was taken at.
    """

    engine: AsyncExecutionEngine
    batch_size: int
    lockstep: bool
    history: List[IterationReport] = field(default_factory=list)
    hours: float = 0.0
    samples: int = 0
    submitted: int = 0
    submitted_samples: int = 0
    completed: int = 0
    zero_streak: int = 0
    wave_index: int = 0


class TuningLoop:
    """Runs a sampler for a fixed number of iterations or wall-clock budget.

    Parameters
    ----------
    batch_size:
        In-flight sample watermark.  ``None`` (default) runs the legacy
        sequential loop: one request per iteration, the whole cluster
        advanced uniformly between iterations.  Any integer ``>= 1`` drives
        the asynchronous engine instead; ``batch_size=1`` is the synchronous
        degenerate mode and reproduces the sequential trajectory bit-for-bit
        under the same seeds, while larger batches keep every worker busy on
        its own timeline, so the run's wall-clock is the makespan of the
        busiest worker rather than ``n_iterations x eval_cost``.  The
        watermark gates *submission*, not admission: a request is submitted
        whole, so a multi-node request entering below the watermark may
        momentarily push the in-flight count above it (a hard cap would
        deadlock any request wider than the remaining window).
    fault_model:
        Optional runtime-variability injection for the asynchronous engine:
        a :class:`~repro.faults.FaultModel` instance or a registry name
        (``"none"``, ``"lognormal"``, ``"interference"``, ``"brownout"``).
        The ``"none"`` model (and ``None``) reproduce existing trajectories
        bit-for-bit; any *active* model requires ``batch_size >= 2``
        (lockstep mode is the equivalence gate and stays uninjected).
    fault_seed:
        Master seed for a fault model built from a name (ignored when an
        instance is passed).
    speculation:
        Straggler mitigation: ``True`` for the default
        :class:`~repro.faults.SpeculationPolicy`, or a policy instance.
        Requires ``batch_size >= 2`` (duplicates need idle workers).
    crash_model:
        Optional fail-stop crash injection: a
        :class:`~repro.faults.CrashModel` instance or a registry name
        (``"none"``, ``"transient"``, ``"node-death"``).  Same contract as
        ``fault_model``: ``"none"`` (and ``None``) reproduce existing
        trajectories bit-for-bit, any *active* model requires
        ``batch_size >= 2``.
    crash_seed:
        Master seed for a crash model built from a name (ignored when an
        instance is passed).
    retry_policy:
        :class:`~repro.core.async_engine.RetryPolicy` governing recovery of
        failed work items (capped exponential backoff, per-slot retry
        budget).  ``None`` means no retries: every failure immediately
        surfaces as a crash-penalty sample.  Inert without an active crash
        model.
    event_log:
        Durable append-only JSONL write-ahead log for the study: a file
        path or an :class:`~repro.core.eventlog.EventLog` instance.  Every
        submission/completion/failure/retry/speculation/sample event and
        every checkpoint is recorded, so the study is auditable and
        resumable.
    checkpoint_path:
        Where :meth:`checkpoint` serializes the study (atomic
        write-then-rename).  When set, a checkpoint is taken automatically
        every ``checkpoint_every`` waves; requires the asynchronous driver
        (``batch_size`` set).
    checkpoint_every:
        Wave interval between automatic checkpoints (default 1: every wave
        boundary).
    checkpoint_keep:
        When set, every checkpoint is additionally hard-linked to a
        per-wave snapshot (``<checkpoint_path>.w<wave>``) and the snapshot
        set is pruned to the most recent ``checkpoint_keep`` files — a
        bounded rolling history.  ``None`` (default) keeps only the single
        stable checkpoint file.
    stop_after_waves:
        Testing/demo kill switch: raise :class:`StudyInterrupted` once this
        many waves have been processed (after the wave's checkpoint, when
        checkpointing is armed), simulating a killed tuning process.
    metrics:
        Observability: a :class:`~repro.obs.metrics.MetricsRegistry` (or
        ``True`` for a default one) receiving lifecycle counters, gauges
        and latency histograms from the event loop, engine, scheduler and
        optimizer.  Off by default; when attached it is write-only and
        trajectory-inert — the study's samples, placements and clocks are
        bit-for-bit identical with or without it.
    tracer:
        Observability: a :class:`~repro.obs.tracing.TraceRecorder` (or
        ``True`` for a default one) recording a span per work-item
        lifecycle over simulated time, exportable as Chrome trace-event
        JSON.  Same trajectory-inertness contract as ``metrics``.
    partition_model:
        Optional gray-failure silence injection: a
        :class:`~repro.faults.PartitionModel` instance or a registry name
        (``"none"``, ``"stall"``, ``"partition"``, ``"flaky"``).  Delays a
        work item's *terminal report* instead of killing its run — the
        worker keeps computing but goes silent, so only a liveness lease
        (``lease_timeout``) can tell it apart from a dead one.  Same
        contract as the fault/crash models: ``"none"`` (and ``None``)
        reproduce existing trajectories bit-for-bit, any *active* model
        requires ``batch_size >= 2``.
    partition_seed:
        Master seed for a partition model built from a name (ignored when
        an instance is passed).
    lease_timeout:
        Liveness-lease timeout in simulated hours.  When set, every work
        item carries a monotone lease epoch; a worker silent for longer
        than the timeout is *suspected*, its slot re-submitted under a new
        epoch through the retry path, and the stale report — the zombie —
        deterministically rejected when it eventually arrives.  ``None``
        (default) disables the monitor; with no active partition model an
        armed monitor never fires and is trajectory-inert.
    validation:
        Result quarantine: a
        :class:`~repro.core.validation.ResultValidator` instance, or
        ``True`` for the default (reject NaN/Inf only).  A completed
        sample failing validation never reaches the optimizer: it is
        quarantined and re-measured under the slot's retry budget, then
        surfaced as a crash-penalty sample once the budget is exhausted.
        On finite in-domain values the gate is bit-for-bit inert.
    corruption_model:
        Optional garbage injection exercising the quarantine gate: a
        :class:`~repro.core.validation.CorruptionModel` instance or a
        registry name (``"none"``, ``"corrupt_result"``).  Corrupts a
        seeded fraction of measured values into NaN/Inf/wild readings
        *after* measurement, so the measurement RNG stays aligned with
        clean runs.  ``"none"`` (and ``None``) are bit-for-bit inert; any
        *active* model requires ``batch_size >= 2``.
    corruption_seed:
        Master seed for a corruption model built from a name (ignored when
        an instance is passed).
    """

    #: Abort after this many *consecutive* iterations that schedule no new
    #: samples.  Such iterations cost no wall-clock and collect no samples,
    #: so they advance no stopping criterion; a sampler stuck re-proposing
    #: fully-covered configurations would otherwise spin forever.  Genuine
    #: zero-sample events (promotions covered by reused samples, the odd
    #: duplicate suggestion) never cluster anywhere near this bound.
    MAX_ZERO_PROGRESS_ITERATIONS = 32

    def __init__(
        self,
        sampler: Sampler,
        n_iterations: Optional[int] = None,
        wall_clock_hours: Optional[float] = None,
        max_samples: Optional[int] = None,
        batch_size: Optional[int] = None,
        fault_model: FaultModel | str | None = None,
        fault_seed: Optional[int] = None,
        speculation: SpeculationPolicy | bool | None = None,
        crash_model: CrashModel | str | None = None,
        crash_seed: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        event_log: EventLog | str | os.PathLike | None = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        checkpoint_keep: Optional[int] = None,
        stop_after_waves: Optional[int] = None,
        metrics: "MetricsRegistry | bool | None" = None,
        tracer: "TraceRecorder | bool | None" = None,
        partition_model: PartitionModel | str | None = None,
        partition_seed: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        validation: "ResultValidator | bool | None" = None,
        corruption_model: CorruptionModel | str | None = None,
        corruption_seed: Optional[int] = None,
    ) -> None:
        if n_iterations is None and wall_clock_hours is None and max_samples is None:
            raise ValueError(
                "specify at least one stopping criterion "
                "(n_iterations, wall_clock_hours or max_samples)"
            )
        if n_iterations is not None and n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.sampler = sampler
        self.n_iterations = n_iterations
        self.wall_clock_hours = wall_clock_hours
        self.max_samples = max_samples
        self.batch_size = batch_size
        self.fault_model = build_fault_model(fault_model, seed=fault_seed)
        self.speculation = speculation if speculation not in (False,) else None
        self.crash_model = build_crash_model(crash_model, seed=crash_seed)
        self.retry_policy = retry_policy
        self.partition_model = build_partition_model(partition_model, seed=partition_seed)
        self.lease_timeout = lease_timeout
        self.validation = build_validator(validation)
        self.corruption_model = build_corruption_model(
            corruption_model, seed=corruption_seed
        )
        if isinstance(event_log, (str, os.PathLike)):
            event_log = EventLog(event_log)
        self.event_log = event_log
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.stop_after_waves = stop_after_waves
        # Observability attachments.  ``True`` means "build me a default";
        # note an *empty* registry is falsy, so the normalisation compares
        # against the booleans explicitly instead of truth-testing.
        if metrics is True:
            from repro.obs.metrics import MetricsRegistry as _Registry

            self.metrics: Optional["MetricsRegistry"] = _Registry()
        elif metrics is False:
            self.metrics = None
        else:
            self.metrics = metrics
        if tracer is True:
            from repro.obs.tracing import TraceRecorder as _Recorder

            self.tracer: Optional["TraceRecorder"] = _Recorder()
        elif tracer is False:
            self.tracer = None
        else:
            self.tracer = tracer
        #: Run state captured by :meth:`checkpoint` / restored by
        #: :meth:`resume`; only non-None while a run/resume is in progress.
        self._active_state: Optional[_AsyncRunState] = None
        self._resume_state: Optional[_AsyncRunState] = None
        self._probe_armed = False
        fault_active = self.fault_model is not None and not self.fault_model.is_null
        if fault_active and (batch_size is None or batch_size < 2):
            raise ValueError(
                "an active fault model requires batch_size >= 2: the "
                "sequential and lockstep paths are the bit-for-bit "
                "equivalence gates and stay uninjected"
            )
        if self.speculation is not None and (batch_size is None or batch_size < 2):
            raise ValueError(
                "speculative re-execution requires batch_size >= 2 "
                "(duplicates race on otherwise-idle workers)"
            )
        crash_active = self.crash_model is not None and not self.crash_model.is_null
        if crash_active and (batch_size is None or batch_size < 2):
            raise ValueError(
                "an active crash model requires batch_size >= 2: the "
                "sequential and lockstep paths are the bit-for-bit "
                "equivalence gates and stay uninjected"
            )
        partition_active = (
            self.partition_model is not None and not self.partition_model.is_null
        )
        if partition_active and (batch_size is None or batch_size < 2):
            raise ValueError(
                "an active partition model requires batch_size >= 2: the "
                "sequential and lockstep paths are the bit-for-bit "
                "equivalence gates and stay uninjected"
            )
        corruption_active = (
            self.corruption_model is not None and not self.corruption_model.is_null
        )
        if corruption_active and (batch_size is None or batch_size < 2):
            raise ValueError(
                "an active corruption model requires batch_size >= 2: the "
                "sequential and lockstep paths are the bit-for-bit "
                "equivalence gates and stay uninjected"
            )
        if lease_timeout is not None and batch_size is None:
            raise ValueError(
                "liveness leases live on the asynchronous engine; set batch_size"
            )
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if checkpoint_keep is not None and checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        if stop_after_waves is not None and stop_after_waves < 1:
            raise ValueError("stop_after_waves must be >= 1")
        if (checkpoint_path is not None or stop_after_waves is not None) and (
            batch_size is None
        ):
            raise ValueError(
                "checkpointing and the wave kill switch live at the "
                "asynchronous driver's wave boundaries; set batch_size"
            )

    def _should_stop(self, iteration: int, hours: float, samples: int) -> bool:
        if self.n_iterations is not None and iteration >= self.n_iterations:
            return True
        if self.wall_clock_hours is not None and hours >= self.wall_clock_hours:
            return True
        if self.max_samples is not None and samples >= self.max_samples:
            return True
        return False

    def _track_progress(self, report: IterationReport, streak: int) -> int:
        """Update (and bound) the consecutive zero-progress iteration count."""
        if report.n_new_samples > 0:
            return 0
        streak += 1
        if streak > self.MAX_ZERO_PROGRESS_ITERATIONS:
            raise RuntimeError(
                f"{streak} consecutive iterations scheduled no new samples; "
                "the sampler keeps re-proposing fully-covered configurations "
                "and the run would never reach its stopping criterion"
            )
        return streak

    def run(self) -> TuningResult:
        if self.event_log is not None:
            # Write-ahead logging: the datastore mirrors every landed sample
            # into the log before recording it in memory.
            self.sampler.datastore.event_log = self.event_log
        if self.batch_size is not None:
            try:
                return self._run_async(self.batch_size)
            finally:
                # The speculation/recovery probe binds the sampler to this
                # run's engine; never leave it dangling (even on abort).
                if self._probe_armed:
                    self.sampler.speculation_probe = None
        return self._run_sequential()

    def _run_sequential(self) -> TuningResult:
        history: List[IterationReport] = []
        hours = 0.0
        samples = 0
        iteration = 0
        zero_streak = 0
        workload = self.sampler.execution.workload
        while not self._should_stop(iteration, hours, samples):
            report = self.sampler.run_iteration(iteration)
            report.details.setdefault("objective_unit", workload.objective.unit)
            report.details.setdefault("higher_is_better", workload.higher_is_better)
            history.append(report)
            hours += report.wall_clock_hours
            samples += report.n_new_samples
            iteration += 1
            zero_streak = self._track_progress(report, zero_streak)
            # A request that scheduled no new samples consumed no time, so
            # the per-worker clocks must not move (re-advancing them would
            # shift every later measurement's drift and credit state).
            if report.wall_clock_hours > 0:
                self.sampler.cluster.advance(report.wall_clock_hours)

        best_config, best_value = self.sampler.best_configuration()
        return TuningResult(
            sampler_name=self.sampler.name,
            workload_name=workload.name,
            best_config=best_config,
            best_catalog_value=best_value,
            higher_is_better=workload.higher_is_better,
            history=history,
            n_iterations=iteration,
            n_samples=samples,
            wall_clock_hours=hours,
        )

    def _run_async(self, batch_size: int) -> TuningResult:
        """Drive the sampler through the asynchronous execution engine.

        Proposals are submitted while in-flight capacity remains and no
        stopping criterion has tripped; completions are fed back to the
        sampler as they land (in completion order, which for batches > 1
        interleaves requests).  Once a criterion trips, in-flight work is
        drained — matching a real cluster, where started benchmarks finish.
        ``batch_size=1`` runs the engine in lockstep mode: one request in
        flight and uniform cluster advancement, reproducing the sequential
        loop exactly.
        """
        if self._resume_state is not None:
            state = self._resume_state
            self._resume_state = None
        else:
            state = self._start_async_state(batch_size)
        return self._drive_async(state)

    def _start_async_state(self, batch_size: int) -> _AsyncRunState:
        """Build the engine and a fresh driver state for an async run."""
        lockstep = batch_size == 1
        engine = AsyncExecutionEngine(
            self.sampler.execution,
            self.sampler.cluster,
            lockstep=lockstep,
            fault_model=self.fault_model,
            speculation=self.speculation,
            crash_model=self.crash_model,
            retry_policy=self.retry_policy,
            partition_model=self.partition_model,
            lease_timeout_hours=self.lease_timeout,
            validation=self.validation,
            corruption_model=self.corruption_model,
            event_log=self.event_log,
            scheduler=getattr(self.sampler, "scheduler", None),
            used_workers_fn=self.sampler.datastore.workers_used,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        if self.metrics is not None:
            # One registry observes the whole stack: placement decisions and
            # surrogate refits land next to the engine's lifecycle counters.
            scheduler = getattr(self.sampler, "scheduler", None)
            if scheduler is not None:
                scheduler.metrics = self.metrics
            optimizer = getattr(self.sampler, "optimizer", None)
            if optimizer is not None:
                optimizer.metrics = self.metrics
        return _AsyncRunState(engine=engine, batch_size=batch_size, lockstep=lockstep)

    def _crash_active(self) -> bool:
        return self.crash_model is not None and not self.crash_model.is_null

    def _handle_report(self, state: _AsyncRunState, report: IterationReport) -> None:
        workload = self.sampler.execution.workload
        report.details.setdefault("objective_unit", workload.objective.unit)
        report.details.setdefault("higher_is_better", workload.higher_is_better)
        state.history.append(report)
        state.samples += report.n_new_samples
        state.completed += 1
        state.zero_streak = self._track_progress(report, state.zero_streak)

    def _drive_async(self, state: _AsyncRunState) -> TuningResult:
        engine = state.engine
        crash_active = self._crash_active()
        if engine.speculation is not None or (
            crash_active and engine.retry_policy is not None
        ):
            # Let placement exclude workers running speculative duplicates
            # or crash retries (their eventual result occupies an existing
            # budget slot rather than a fresh one).
            self.sampler.speculation_probe = engine.auxiliary_workers_for
            self._probe_armed = True
        workload = self.sampler.execution.workload
        self._active_state = state
        try:
            while True:
                # Fill the in-flight window.  Submission is gated on
                # *submitted* work (samples already in flight count towards
                # the budget), so a large batch does not overshoot
                # ``max_samples`` while the final samples are still running.
                while state.engine.n_in_flight_items < state.batch_size and not (
                    self._should_stop(
                        state.submitted, state.hours, state.submitted_samples
                    )
                ):
                    try:
                        request = self.sampler.propose_work(state.submitted)
                    except RuntimeError:
                        if engine.n_in_flight_items > 0:
                            # Scheduling failed (the sampler already rolled
                            # back any promotion reservation); draining
                            # in-flight work frees workers, so retry after
                            # the next completion.
                            break
                        raise
                    state.submitted += 1
                    if not request.vms:
                        # Nothing to run (budget covered by reused samples):
                        # complete inline at zero wall-clock cost.
                        self._handle_report(
                            state, self.sampler.complete_work(request, [])
                        )
                        continue
                    state.submitted_samples += len(request.vms)
                    engine.submit(request)
                if engine.n_in_flight_items == 0:
                    break
                # Drain one wave: every request finishing at the same
                # simulated instant lands together and is fed back as a
                # single batched tell, so the surrogate refits once per wave
                # (a single completion — always the case in lockstep mode —
                # takes the plain single-tell path).
                wave = engine.next_completed_requests()
                if not wave:
                    # Only stale (fenced) zombie reports were left in flight;
                    # they drained without landing anything — not a wave.
                    continue
                if len(wave) == 1:
                    reports = [self.sampler.complete_work(*wave[0])]
                else:
                    reports = self.sampler.complete_work_batch(wave)
                for report in reports:
                    self._handle_report(state, report)
                    if state.lockstep:
                        state.hours += report.wall_clock_hours
                        if report.wall_clock_hours > 0:
                            self.sampler.cluster.advance(report.wall_clock_hours)
                if not state.lockstep:
                    state.hours = engine.makespan_hours
                state.wave_index += 1
                if (
                    self.checkpoint_path is not None
                    and state.wave_index % self.checkpoint_every == 0
                ):
                    self.checkpoint()
                if (
                    self.stop_after_waves is not None
                    and state.wave_index >= self.stop_after_waves
                ):
                    raise StudyInterrupted(state.wave_index, self.checkpoint_path)
        finally:
            self._active_state = None

        if state.lockstep:
            wall_clock = state.hours
        else:
            wall_clock = engine.finalize()

        engine_stats = {}
        if engine.speculation is not None:
            engine_stats.update(engine.stats.as_dict())
        if crash_active:
            engine_stats.update(engine.crash_stats.as_dict())
        if engine.gray_enabled:
            engine_stats.update(engine.gray_stats.as_dict())
            engine_stats.update(engine.loop.partition_stats.as_dict())
        if self.event_log is not None:
            self.event_log.append(
                "finish",
                n_samples=state.samples,
                wall_clock_hours=wall_clock,
            )

        best_config, best_value = self.sampler.best_configuration()
        return TuningResult(
            sampler_name=self.sampler.name,
            workload_name=workload.name,
            best_config=best_config,
            best_catalog_value=best_value,
            higher_is_better=workload.higher_is_better,
            history=state.history,
            n_iterations=state.completed,
            n_samples=state.samples,
            wall_clock_hours=wall_clock,
            engine_stats=engine_stats or None,
        )

    # ----------------------------------------------------------- durability
    def checkpoint(self) -> str:
        """Serialize the whole study to ``checkpoint_path`` (atomically).

        The checkpoint is a single pickle of the loop *and* its live driver
        state: one object graph, so every shared reference (engine ↔ sampler
        ↔ cluster ↔ event log ↔ RNG streams) survives round-tripping intact.
        Written via a temp file + :func:`os.replace`, so a kill mid-write
        leaves the previous checkpoint untouched; the sha256 digest recorded
        in the event log lets :meth:`resume` detect truncation/corruption.

        With ``checkpoint_keep=k`` each checkpoint is additionally
        hard-linked to a per-wave snapshot (``<path>.w<wave>``) and the
        snapshot set pruned to the most recent ``k`` — a rolling history
        that lets operators rewind past the latest wave boundary without
        unbounded disk growth.  The stable ``<path>`` name always points at
        the newest checkpoint, so :meth:`resume` is unaffected.
        """
        if self.checkpoint_path is None:
            raise RuntimeError("no checkpoint_path configured")
        if self._active_state is None:
            raise RuntimeError(
                "checkpoint() is only valid while an asynchronous run is "
                "active (it is called automatically at wave boundaries)"
            )
        payload = pickle.dumps(
            {"loop": self, "state": self._active_state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(payload).hexdigest()
        path = os.path.abspath(self.checkpoint_path)
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        if self.checkpoint_keep is not None:
            snapshot = f"{path}.w{self._active_state.wave_index:08d}"
            if os.path.exists(snapshot):
                os.remove(snapshot)
            os.link(path, snapshot)
            for stale in self._snapshots(path)[: -self.checkpoint_keep]:
                os.remove(stale)
        if self.event_log is not None:
            self.event_log.append(
                "checkpoint",
                path=path,
                sha256=digest,
                wave=self._active_state.wave_index,
                n_samples=self._active_state.samples,
            )
        return path

    @staticmethod
    def _snapshots(path: str) -> List[str]:
        """Per-wave snapshot files next to ``path``, oldest first.

        Wave numbers are zero-padded to fixed width, so the lexicographic
        sort is also the numeric (and therefore chronological) order.
        """
        directory = os.path.dirname(path) or "."
        prefix = os.path.basename(path) + ".w"
        names = [
            name
            for name in os.listdir(directory)
            if name.startswith(prefix) and name[len(prefix) :].isdigit()
        ]
        return [os.path.join(directory, name) for name in sorted(names)]

    @classmethod
    def resume(cls, path: str | os.PathLike) -> "TuningLoop":
        """Resurrect a killed study from a checkpoint (or its event log).

        ``path`` may point either directly at a checkpoint file or at an
        event log, in which case the log's last ``"checkpoint"`` event is
        located, its recorded sha256 digest verified against the file on
        disk, and that checkpoint loaded.  The returned loop continues from
        the exact wave boundary the checkpoint captured: calling
        :meth:`run` on it reproduces the uninterrupted run's remaining
        trajectory bit-for-bit.  The ``stop_after_waves`` kill switch is
        cleared on the resumed loop (the simulated kill already happened).
        """
        path = os.fspath(path)
        with open(path, "rb") as fh:
            first = fh.read(1)
        if first != b"\x80":
            # Not a pickle: treat as an event log and chase its last
            # checkpoint record (digest-verified inside last_checkpoint).
            event = EventLog.last_checkpoint(path)
            path = event["path"]
        with open(path, "rb") as fh:
            data = pickle.load(fh)
        loop: "TuningLoop" = data["loop"]
        loop._resume_state = data["state"]
        loop._active_state = None
        loop._probe_armed = False
        # The simulated process kill already happened; a resumed study runs
        # to its real stopping criterion.
        loop.stop_after_waves = None
        if loop.event_log is not None:
            loop.event_log.append(
                "resume",
                checkpoint=path,
                wave=loop._resume_state.wave_index,
            )
        return loop


def deploy_configuration(
    system: SystemUnderTest,
    workload: Workload,
    config: Configuration,
    nodes: List[VirtualMachine],
    seed: Optional[int] = None,
) -> DeploymentResult:
    """Evaluate a tuned configuration on freshly provisioned nodes.

    Crashed runs are replaced by the execution engine's crash penalty, exactly
    as during tuning, so a crashing configuration shows up as both slow and
    highly variable — which is how Fig. 14 presents it.
    """
    if not nodes:
        raise ValueError("need at least one deployment node")
    engine = ExecutionEngine(system, workload, seed=seed)
    values: List[float] = []
    crashes = 0
    for vm in nodes:
        sample = engine.evaluate_on(config, vm)
        if sample.crashed:
            crashes += 1
        values.append(sample.value)
    return DeploymentResult(
        config=config,
        values=values,
        crashes=crashes,
        objective_unit=workload.objective.unit,
        higher_is_better=workload.higher_is_better,
    )

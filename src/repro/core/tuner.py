"""Offline tuning loop and deployment evaluation.

The paper's evaluation protocol (§6) is: run a sampling methodology offline
for a fixed wall-clock budget, pick the best configuration from its catalog,
then *deploy* that configuration on a set of brand-new nodes and report the
mean and standard deviation of its performance there.  :class:`TuningLoop`
implements the first half and :func:`deploy_configuration` the second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration
from repro.core.execution import ExecutionEngine
from repro.core.samplers import IterationReport, Sampler
from repro.ml.metrics import coefficient_of_variation
from repro.systems.base import SystemUnderTest
from repro.workloads.base import Workload


@dataclass
class TuningResult:
    """Everything a tuning run produced."""

    sampler_name: str
    workload_name: str
    best_config: Configuration
    best_catalog_value: float
    higher_is_better: bool = True
    history: List[IterationReport] = field(default_factory=list)
    n_iterations: int = 0
    n_samples: int = 0
    wall_clock_hours: float = 0.0

    def best_so_far_trace(self) -> List[float]:
        """Best *reported* value after each iteration (convergence curve)."""
        trace: List[float] = []
        best: Optional[float] = None
        for report in self.history:
            value = report.reported_value
            if best is None:
                best = value
            elif self.higher_is_better:
                best = max(best, value)
            else:
                best = min(best, value)
            trace.append(best)
        return trace

    def samples_per_iteration(self) -> List[int]:
        return [report.n_new_samples for report in self.history]


@dataclass
class DeploymentResult:
    """Performance of one configuration deployed on fresh nodes (§6)."""

    config: Configuration
    values: List[float]
    crashes: int
    objective_unit: str
    higher_is_better: bool

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def cov(self) -> float:
        return coefficient_of_variation(self.values)

    @property
    def worst(self) -> float:
        return float(np.min(self.values)) if self.higher_is_better else float(np.max(self.values))

    @property
    def relative_range(self) -> float:
        values = np.asarray(self.values, dtype=float)
        return float((values.max() - values.min()) / values.mean())


class TuningLoop:
    """Runs a sampler for a fixed number of iterations or wall-clock budget."""

    def __init__(
        self,
        sampler: Sampler,
        n_iterations: Optional[int] = None,
        wall_clock_hours: Optional[float] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        if n_iterations is None and wall_clock_hours is None and max_samples is None:
            raise ValueError(
                "specify at least one stopping criterion "
                "(n_iterations, wall_clock_hours or max_samples)"
            )
        if n_iterations is not None and n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.sampler = sampler
        self.n_iterations = n_iterations
        self.wall_clock_hours = wall_clock_hours
        self.max_samples = max_samples

    def _should_stop(self, iteration: int, hours: float, samples: int) -> bool:
        if self.n_iterations is not None and iteration >= self.n_iterations:
            return True
        if self.wall_clock_hours is not None and hours >= self.wall_clock_hours:
            return True
        if self.max_samples is not None and samples >= self.max_samples:
            return True
        return False

    def run(self) -> TuningResult:
        history: List[IterationReport] = []
        hours = 0.0
        samples = 0
        iteration = 0
        workload = self.sampler.execution.workload
        while not self._should_stop(iteration, hours, samples):
            report = self.sampler.run_iteration(iteration)
            report.details.setdefault("objective_unit", workload.objective.unit)
            report.details.setdefault("higher_is_better", workload.higher_is_better)
            history.append(report)
            hours += report.wall_clock_hours
            samples += report.n_new_samples
            iteration += 1
            self.sampler.cluster.advance(report.wall_clock_hours)

        best_config, best_value = self.sampler.best_configuration()
        return TuningResult(
            sampler_name=self.sampler.name,
            workload_name=workload.name,
            best_config=best_config,
            best_catalog_value=best_value,
            higher_is_better=workload.higher_is_better,
            history=history,
            n_iterations=iteration,
            n_samples=samples,
            wall_clock_hours=hours,
        )


def deploy_configuration(
    system: SystemUnderTest,
    workload: Workload,
    config: Configuration,
    nodes: List[VirtualMachine],
    seed: Optional[int] = None,
) -> DeploymentResult:
    """Evaluate a tuned configuration on freshly provisioned nodes.

    Crashed runs are replaced by the execution engine's crash penalty, exactly
    as during tuning, so a crashing configuration shows up as both slow and
    highly variable — which is how Fig. 14 presents it.
    """
    if not nodes:
        raise ValueError("need at least one deployment node")
    engine = ExecutionEngine(system, workload, seed=seed)
    values: List[float] = []
    crashes = 0
    for vm in nodes:
        sample = engine.evaluate_on(config, vm)
        if sample.crashed:
            crashes += 1
        values.append(sample.value)
    return DeploymentResult(
        config=config,
        values=values,
        crashes=crashes,
        objective_unit=workload.objective.unit,
        higher_is_better=workload.higher_is_better,
    )

"""Offline tuning loop and deployment evaluation.

The paper's evaluation protocol (§6) is: run a sampling methodology offline
for a fixed wall-clock budget, pick the best configuration from its catalog,
then *deploy* that configuration on a set of brand-new nodes and report the
mean and standard deviation of its performance there.  :class:`TuningLoop`
implements the first half and :func:`deploy_configuration` the second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cloud.vm import VirtualMachine
from repro.configspace import Configuration
from repro.core.async_engine import AsyncExecutionEngine
from repro.core.execution import ExecutionEngine
from repro.core.samplers import IterationReport, Sampler
from repro.faults import build_fault_model
from repro.ml.metrics import coefficient_of_variation, relative_range
from repro.systems.base import SystemUnderTest
from repro.workloads.base import Workload


@dataclass
class TuningResult:
    """Everything a tuning run produced.

    ``engine_stats`` carries the speculative re-execution counters
    (stragglers detected, duplicates submitted/won/lost) when straggler
    mitigation was armed; ``None`` otherwise.
    """

    sampler_name: str
    workload_name: str
    best_config: Configuration
    best_catalog_value: float
    higher_is_better: bool = True
    history: List[IterationReport] = field(default_factory=list)
    n_iterations: int = 0
    n_samples: int = 0
    wall_clock_hours: float = 0.0
    engine_stats: Optional[dict] = None

    def best_so_far_trace(self) -> List[float]:
        """Best *reported* value after each iteration (convergence curve)."""
        trace: List[float] = []
        best: Optional[float] = None
        for report in self.history:
            value = report.reported_value
            if best is None:
                best = value
            elif self.higher_is_better:
                best = max(best, value)
            else:
                best = min(best, value)
            trace.append(best)
        return trace

    def samples_per_iteration(self) -> List[int]:
        return [report.n_new_samples for report in self.history]


@dataclass
class DeploymentResult:
    """Performance of one configuration deployed on fresh nodes (§6)."""

    config: Configuration
    values: List[float]
    crashes: int
    objective_unit: str
    higher_is_better: bool

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def cov(self) -> float:
        return coefficient_of_variation(self.values)

    @property
    def worst(self) -> float:
        return float(np.min(self.values)) if self.higher_is_better else float(np.max(self.values))

    @property
    def relative_range(self) -> float:
        """Relative range, by the same definition the outlier detector uses.

        A single deployment value carries no spread information, so — like
        :meth:`repro.core.outlier.OutlierDetector.is_unstable_values` — it
        reports zero rather than dividing a degenerate range by the mean
        (and a zero mean raises, exactly as in
        :func:`repro.ml.metrics.relative_range`).
        """
        if len(self.values) < 2:
            return 0.0
        return relative_range(self.values)


class TuningLoop:
    """Runs a sampler for a fixed number of iterations or wall-clock budget.

    Parameters
    ----------
    batch_size:
        In-flight sample watermark.  ``None`` (default) runs the legacy
        sequential loop: one request per iteration, the whole cluster
        advanced uniformly between iterations.  Any integer ``>= 1`` drives
        the asynchronous engine instead; ``batch_size=1`` is the synchronous
        degenerate mode and reproduces the sequential trajectory bit-for-bit
        under the same seeds, while larger batches keep every worker busy on
        its own timeline, so the run's wall-clock is the makespan of the
        busiest worker rather than ``n_iterations x eval_cost``.  The
        watermark gates *submission*, not admission: a request is submitted
        whole, so a multi-node request entering below the watermark may
        momentarily push the in-flight count above it (a hard cap would
        deadlock any request wider than the remaining window).
    fault_model:
        Optional runtime-variability injection for the asynchronous engine:
        a :class:`~repro.faults.FaultModel` instance or a registry name
        (``"none"``, ``"lognormal"``, ``"interference"``, ``"brownout"``).
        The ``"none"`` model (and ``None``) reproduce existing trajectories
        bit-for-bit; any *active* model requires ``batch_size >= 2``
        (lockstep mode is the equivalence gate and stays uninjected).
    fault_seed:
        Master seed for a fault model built from a name (ignored when an
        instance is passed).
    speculation:
        Straggler mitigation: ``True`` for the default
        :class:`~repro.faults.SpeculationPolicy`, or a policy instance.
        Requires ``batch_size >= 2`` (duplicates need idle workers).
    """

    #: Abort after this many *consecutive* iterations that schedule no new
    #: samples.  Such iterations cost no wall-clock and collect no samples,
    #: so they advance no stopping criterion; a sampler stuck re-proposing
    #: fully-covered configurations would otherwise spin forever.  Genuine
    #: zero-sample events (promotions covered by reused samples, the odd
    #: duplicate suggestion) never cluster anywhere near this bound.
    MAX_ZERO_PROGRESS_ITERATIONS = 32

    def __init__(
        self,
        sampler: Sampler,
        n_iterations: Optional[int] = None,
        wall_clock_hours: Optional[float] = None,
        max_samples: Optional[int] = None,
        batch_size: Optional[int] = None,
        fault_model=None,
        fault_seed: Optional[int] = None,
        speculation=None,
    ) -> None:
        if n_iterations is None and wall_clock_hours is None and max_samples is None:
            raise ValueError(
                "specify at least one stopping criterion "
                "(n_iterations, wall_clock_hours or max_samples)"
            )
        if n_iterations is not None and n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.sampler = sampler
        self.n_iterations = n_iterations
        self.wall_clock_hours = wall_clock_hours
        self.max_samples = max_samples
        self.batch_size = batch_size
        self.fault_model = build_fault_model(fault_model, seed=fault_seed)
        self.speculation = speculation if speculation not in (False,) else None
        fault_active = self.fault_model is not None and not self.fault_model.is_null
        if fault_active and (batch_size is None or batch_size < 2):
            raise ValueError(
                "an active fault model requires batch_size >= 2: the "
                "sequential and lockstep paths are the bit-for-bit "
                "equivalence gates and stay uninjected"
            )
        if self.speculation is not None and (batch_size is None or batch_size < 2):
            raise ValueError(
                "speculative re-execution requires batch_size >= 2 "
                "(duplicates race on otherwise-idle workers)"
            )

    def _should_stop(self, iteration: int, hours: float, samples: int) -> bool:
        if self.n_iterations is not None and iteration >= self.n_iterations:
            return True
        if self.wall_clock_hours is not None and hours >= self.wall_clock_hours:
            return True
        if self.max_samples is not None and samples >= self.max_samples:
            return True
        return False

    def _track_progress(self, report: IterationReport, streak: int) -> int:
        """Update (and bound) the consecutive zero-progress iteration count."""
        if report.n_new_samples > 0:
            return 0
        streak += 1
        if streak > self.MAX_ZERO_PROGRESS_ITERATIONS:
            raise RuntimeError(
                f"{streak} consecutive iterations scheduled no new samples; "
                "the sampler keeps re-proposing fully-covered configurations "
                "and the run would never reach its stopping criterion"
            )
        return streak

    def run(self) -> TuningResult:
        if self.batch_size is not None:
            try:
                return self._run_async(self.batch_size)
            finally:
                # The speculation probe binds the sampler to this run's
                # engine; never leave it dangling (even on abort).
                if self.speculation is not None:
                    self.sampler.speculation_probe = None
        return self._run_sequential()

    def _run_sequential(self) -> TuningResult:
        history: List[IterationReport] = []
        hours = 0.0
        samples = 0
        iteration = 0
        zero_streak = 0
        workload = self.sampler.execution.workload
        while not self._should_stop(iteration, hours, samples):
            report = self.sampler.run_iteration(iteration)
            report.details.setdefault("objective_unit", workload.objective.unit)
            report.details.setdefault("higher_is_better", workload.higher_is_better)
            history.append(report)
            hours += report.wall_clock_hours
            samples += report.n_new_samples
            iteration += 1
            zero_streak = self._track_progress(report, zero_streak)
            # A request that scheduled no new samples consumed no time, so
            # the per-worker clocks must not move (re-advancing them would
            # shift every later measurement's drift and credit state).
            if report.wall_clock_hours > 0:
                self.sampler.cluster.advance(report.wall_clock_hours)

        best_config, best_value = self.sampler.best_configuration()
        return TuningResult(
            sampler_name=self.sampler.name,
            workload_name=workload.name,
            best_config=best_config,
            best_catalog_value=best_value,
            higher_is_better=workload.higher_is_better,
            history=history,
            n_iterations=iteration,
            n_samples=samples,
            wall_clock_hours=hours,
        )

    def _run_async(self, batch_size: int) -> TuningResult:
        """Drive the sampler through the asynchronous execution engine.

        Proposals are submitted while in-flight capacity remains and no
        stopping criterion has tripped; completions are fed back to the
        sampler as they land (in completion order, which for batches > 1
        interleaves requests).  Once a criterion trips, in-flight work is
        drained — matching a real cluster, where started benchmarks finish.
        ``batch_size=1`` runs the engine in lockstep mode: one request in
        flight and uniform cluster advancement, reproducing the sequential
        loop exactly.
        """
        lockstep = batch_size == 1
        engine = AsyncExecutionEngine(
            self.sampler.execution,
            self.sampler.cluster,
            lockstep=lockstep,
            fault_model=self.fault_model,
            speculation=self.speculation,
            scheduler=getattr(self.sampler, "scheduler", None),
            used_workers_fn=self.sampler.datastore.workers_used,
        )
        if engine.speculation is not None:
            # Let placement exclude workers running speculative duplicates
            # (their eventual result occupies an existing budget slot).
            self.sampler.speculation_probe = engine.speculative_workers_for
        history: List[IterationReport] = []
        hours = 0.0
        samples = 0
        submitted = 0
        submitted_samples = 0
        completed = 0
        workload = self.sampler.execution.workload

        zero_streak = 0

        def handle(report: IterationReport) -> None:
            nonlocal samples, completed, zero_streak
            report.details.setdefault("objective_unit", workload.objective.unit)
            report.details.setdefault("higher_is_better", workload.higher_is_better)
            history.append(report)
            samples += report.n_new_samples
            completed += 1
            zero_streak = self._track_progress(report, zero_streak)

        while True:
            # Fill the in-flight window.  Submission is gated on *submitted*
            # work (samples already in flight count towards the budget), so
            # a large batch does not overshoot ``max_samples`` while the
            # final samples are still running.
            while engine.n_in_flight_items < batch_size and not self._should_stop(
                submitted, hours, submitted_samples
            ):
                try:
                    request = self.sampler.propose_work(submitted)
                except RuntimeError:
                    if engine.n_in_flight_items > 0:
                        # Scheduling failed (the sampler already rolled back
                        # any promotion reservation); draining in-flight work
                        # frees workers, so retry after the next completion.
                        break
                    raise
                submitted += 1
                if not request.vms:
                    # Nothing to run (budget covered by reused samples):
                    # complete inline at zero wall-clock cost.
                    handle(self.sampler.complete_work(request, []))
                    continue
                submitted_samples += len(request.vms)
                engine.submit(request)
            if engine.n_in_flight_items == 0:
                break
            # Drain one wave: every request finishing at the same simulated
            # instant lands together and is fed back as a single batched
            # tell, so the surrogate refits once per wave (a single
            # completion — always the case in lockstep mode — takes the
            # plain single-tell path).
            wave = engine.next_completed_requests()
            if len(wave) == 1:
                reports = [self.sampler.complete_work(*wave[0])]
            else:
                reports = self.sampler.complete_work_batch(wave)
            for report in reports:
                handle(report)
                if lockstep:
                    hours += report.wall_clock_hours
                    if report.wall_clock_hours > 0:
                        self.sampler.cluster.advance(report.wall_clock_hours)
            if not lockstep:
                hours = engine.makespan_hours

        if lockstep:
            wall_clock = hours
        else:
            wall_clock = engine.finalize()

        best_config, best_value = self.sampler.best_configuration()
        return TuningResult(
            sampler_name=self.sampler.name,
            workload_name=workload.name,
            best_config=best_config,
            best_catalog_value=best_value,
            higher_is_better=workload.higher_is_better,
            history=history,
            n_iterations=completed,
            n_samples=samples,
            wall_clock_hours=wall_clock,
            engine_stats=(
                engine.stats.as_dict() if engine.speculation is not None else None
            ),
        )


def deploy_configuration(
    system: SystemUnderTest,
    workload: Workload,
    config: Configuration,
    nodes: List[VirtualMachine],
    seed: Optional[int] = None,
) -> DeploymentResult:
    """Evaluate a tuned configuration on freshly provisioned nodes.

    Crashed runs are replaced by the execution engine's crash penalty, exactly
    as during tuning, so a crashing configuration shows up as both slow and
    highly variable — which is how Fig. 14 presents it.
    """
    if not nodes:
        raise ValueError("need at least one deployment node")
    engine = ExecutionEngine(system, workload, seed=seed)
    values: List[float] = []
    crashes = 0
    for vm in nodes:
        sample = engine.evaluate_on(config, vm)
        if sample.crashed:
            crashes += 1
        values.append(sample.value)
    return DeploymentResult(
        config=config,
        values=values,
        crashes=crashes,
        objective_unit=workload.objective.unit,
        higher_is_better=workload.higher_is_better,
    )

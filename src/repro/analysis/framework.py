"""The detlint checker framework: findings, pragmas, import resolution, driver.

Rules (see :mod:`repro.analysis.rules`) are small visitor classes registered
with :func:`register`.  The driver parses each file once, walks the AST once,
and dispatches every node to each rule that declares interest in the file via
its :meth:`Rule.applies_to` path predicate.  Rules yield :class:`Finding`
objects; the driver filters them through the per-line ``allow`` pragmas and
aggregates everything into a :class:`Report` that serialises to JSON.

The framework is deliberately stdlib-only (``ast`` + ``re``): the linter must
run in a bare CI job before any heavy dependency is importable.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

#: Reserved code for a pragma that suppresses nothing because it carries no
#: justification — the acceptance bar is "every suppression justified in-line".
UNJUSTIFIED_PRAGMA_CODE = "DET000"

#: Directory names never scanned when walking a tree.  The rule fixtures are
#: *deliberate* violations exercised by the self-tests; explicitly named files
#: bypass these excludes, so the tests still reach them.
DEFAULT_EXCLUDED_DIRS = {
    ".git",
    "__pycache__",
    ".hypothesis",
    ".pytest_cache",
    ".benchmarks",
    "fixtures",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Finding":
        return Finding(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            code=str(data["code"]),
            message=str(data["message"]),
        )


# -- pragmas -------------------------------------------------------------------

#: ``# detlint: allow[DET002] -- why this line is exempt``
_PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*allow\[(?P<codes>[A-Z0-9*,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Pragma:
    line: int
    codes: Tuple[str, ...]
    justified: bool

    def covers(self, code: str) -> bool:
        return "*" in self.codes or code in self.codes


def parse_pragmas(lines: Sequence[str]) -> Dict[int, Pragma]:
    """Extract ``allow`` pragmas, keyed by 1-based line number."""
    pragmas: Dict[int, Pragma] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        reason = match.group("reason")
        pragmas[lineno] = Pragma(
            line=lineno, codes=codes, justified=bool(reason and reason.strip())
        )
    return pragmas


# -- import resolution ---------------------------------------------------------


class ImportTable:
    """Maps local names to dotted module paths for call resolution.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng`` maps ``default_rng -> numpy.random.default_rng``; ``from
    datetime import datetime`` maps ``datetime -> datetime.datetime``.  The
    resolver then turns ``np.random.default_rng`` call nodes into the full
    dotted path rules match against.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain, or ``None`` if dynamic.

        A bare name that was never imported resolves to itself (builtins such
        as ``set`` and ``sorted``); an attribute chain rooted in anything but
        a plain name (e.g. a method call result) is dynamic and unresolvable.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self._aliases.get(node.id, node.id))
        return ".".join(reversed(parts))


# -- per-file context ----------------------------------------------------------


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    path: PurePosixPath
    tree: ast.AST
    lines: List[str]
    imports: ImportTable

    @property
    def basename(self) -> str:
        return self.path.name

    @property
    def is_test_code(self) -> bool:
        """Test modules get looser entropy rules (they *are* the seeds)."""
        return self.basename.startswith("test_") or self.basename == "conftest.py"

    @property
    def is_benchmark_code(self) -> bool:
        """Benchmarks legitimately read wall clocks — that is their job."""
        return "benchmarks" in self.path.parts or self.basename.startswith("bench")

    def has_part(self, *names: str) -> bool:
        return any(name in self.path.parts for name in names)


# -- rule base & registry ------------------------------------------------------


class Rule:
    """Base class for detlint rules.

    Subclasses set ``code``/``title``/``rationale`` and implement any of the
    ``visit_Call`` / ``visit_For`` / ``visit_comprehension`` / ``visit_Dict``
    / ``visit_ExceptHandler`` hooks.  Hooks are generators of
    :class:`Finding`; the driver calls them for every matching node of every
    file the rule applies to.
    """

    code: str = "DET999"
    title: str = "abstract"
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def allows_pragma(self, ctx: FileContext) -> bool:
        """Whether ``allow`` pragmas for this rule are honoured in this file.

        Default: every justified pragma suppresses.  Rules override this to
        *scope* their exemption surface — e.g. DET002 refuses pragmas in the
        observability package outside its single sanctioned clock shim, so a
        stray wall-clock read cannot be waved through with a comment.  A
        refused pragma leaves the finding standing (and the pragma itself is
        still audited for justification)."""
        return True

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def visit_For(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def visit_comprehension(
        self, node: ast.comprehension, ctx: FileContext
    ) -> Iterator[Finding]:
        return iter(())

    def visit_Dict(self, node: ast.Dict, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: FileContext
    ) -> Iterator[Finding]:
        return iter(())

    def finding(self, node: ast.AST, ctx: FileContext, message: str) -> Finding:
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: List[Type[Rule]] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (ordered)."""
    if any(existing.code == rule_cls.code for existing in _REGISTRY):
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY.append(rule_cls)
    return rule_cls


def registered_rules() -> List[Type[Rule]]:
    return list(_REGISTRY)


# -- driver --------------------------------------------------------------------


def _relative_path(path: Path) -> PurePosixPath:
    """Repo-relative posix path when possible (stable report/pragma keys)."""
    resolved = path.resolve()
    try:
        return PurePosixPath(resolved.relative_to(Path.cwd()).as_posix())
    except ValueError:
        return PurePosixPath(resolved.as_posix())


def check_file(
    path: "str | Path",
    source: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Run the rule set over one file.

    Returns ``(findings, n_suppressed)``.  ``source`` overrides the on-disk
    content (used by the self-tests).  Unparsable files yield a single
    finding on the syntax error rather than crashing the whole run.
    """
    file_path = Path(path)
    if source is None:
        source = file_path.read_text(encoding="utf-8")
    if rules is None:
        from repro.analysis.rules import build_rules

        rules = build_rules()
    rel = _relative_path(file_path)
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(rel))
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=str(rel),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    code="DET999",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    ctx = FileContext(path=rel, tree=tree, lines=lines, imports=ImportTable(tree))
    active = [rule for rule in rules if rule.applies_to(ctx)]
    raw: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for rule in active:
                raw.extend(rule.visit_Call(node, ctx))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for rule in active:
                raw.extend(rule.visit_For(node, ctx))
        elif isinstance(node, ast.comprehension):
            for rule in active:
                raw.extend(rule.visit_comprehension(node, ctx))
        elif isinstance(node, ast.Dict):
            for rule in active:
                raw.extend(rule.visit_Dict(node, ctx))
        elif isinstance(node, ast.ExceptHandler):
            for rule in active:
                raw.extend(rule.visit_ExceptHandler(node, ctx))

    pragmas = parse_pragmas(lines)
    rule_by_code = {rule.code: rule for rule in rules}
    findings: List[Finding] = []
    suppressed = 0
    for finding in raw:
        pragma = _pragma_for(pragmas, finding)
        rule = rule_by_code.get(finding.code)
        if (
            pragma is not None
            and pragma.justified
            and (rule is None or rule.allows_pragma(ctx))
        ):
            suppressed += 1
            continue
        findings.append(finding)
    for lineno, pragma in sorted(pragmas.items()):
        if not pragma.justified:
            findings.append(
                Finding(
                    path=str(rel),
                    line=lineno,
                    col=0,
                    code=UNJUSTIFIED_PRAGMA_CODE,
                    message=(
                        "allow-pragma without a justification — write "
                        "'# detlint: allow[CODE] -- <reason>'; an unjustified "
                        "pragma suppresses nothing"
                    ),
                )
            )
    return sorted(findings), suppressed


def _pragma_for(pragmas: Dict[int, Pragma], finding: Finding) -> Optional[Pragma]:
    """The pragma governing a finding: same line, or the line above."""
    for lineno in (finding.line, finding.line - 1):
        pragma = pragmas.get(lineno)
        if pragma is not None and pragma.covers(finding.code):
            return pragma
    return None


@dataclass
class Report:
    """Aggregated result of a detlint run; serialises losslessly to JSON."""

    findings: List[Finding] = field(default_factory=list)
    n_suppressed: int = 0
    n_files: int = 0
    version: int = 1

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "n_files": self.n_files,
            "n_suppressed": self.n_suppressed,
            "n_findings": len(self.findings),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "Report":
        data = json.loads(text)
        return Report(
            findings=[Finding.from_dict(f) for f in data["findings"]],
            n_suppressed=int(data["n_suppressed"]),
            n_files=int(data["n_files"]),
            version=int(data["version"]),
        )


def iter_python_files(paths: Sequence["str | Path"]) -> Iterator[Path]:
    """Yield the files to scan: walk directories (honouring the default
    excludes), pass explicitly named files straight through."""
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            yield root
            continue
        if not root.is_dir():
            continue
        for candidate in sorted(root.rglob("*.py")):
            if DEFAULT_EXCLUDED_DIRS.intersection(candidate.parts):
                continue
            yield candidate


def check_paths(
    paths: Sequence["str | Path"], rules: Optional[Sequence[Rule]] = None
) -> Report:
    """Run the rule set over files and directory trees; the CLI entry point."""
    if rules is None:
        from repro.analysis.rules import build_rules

        rules = build_rules()
    report = Report()
    for file_path in iter_python_files(paths):
        findings, suppressed = check_file(file_path, rules=rules)
        report.findings.extend(findings)
        report.n_suppressed += suppressed
        report.n_files += 1
    report.findings.sort()
    return report

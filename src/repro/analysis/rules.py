"""The detlint rule set: the determinism contract, statically enforced.

Each rule encodes one invariant from ROADMAP.md's "Guarded invariants"
section.  Rules are ordered by code; ``python -m repro.analysis --list-rules``
prints the same table the README documents, and ``tests/test_tooling.py``
keeps the two in sync.

Scoping conventions (see :class:`~repro.analysis.framework.FileContext`):

* *test code* (``test_*.py`` / ``conftest.py``) owns its seeds, so the
  entropy rules DET001/DET003 do not apply there;
* *benchmark code* (anything under ``benchmarks/`` or named ``bench*``)
  legitimately reads wall clocks, so DET002 does not apply there;
* the ordering rules DET004/DET005 only fire on the ordering-sensitive
  subsystems they protect (``core``/``ml`` trees, tie-break-sensitive
  modules);
* DET006 fires everywhere except ``core/eventlog.py`` itself, the only
  module allowed to mint the log envelope.
* DET007 only fires on the failure-handling subsystems (``core``/``faults``
  trees): a swallowed exception there turns an injected fault into silent
  trajectory divergence.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    register,
    registered_rules,
)

#: Legacy ``numpy.random.*`` module-level functions driven by the hidden
#: global ``RandomState`` — entropy that no seed in our code controls.
_NUMPY_GLOBAL_STATE_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "beta",
        "gamma",
        "poisson",
        "exponential",
        "lognormal",
        "weibull",
    }
)

#: ``random`` stdlib module-level entropy functions (same hidden-state issue).
_STDLIB_RANDOM_FNS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "getrandbits",
        "randbytes",
    }
)

#: Wall-clock reads forbidden outside benchmark code (DET002).
_WALL_CLOCK_FNS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: RNG/stream constructors whose seed derivation DET003 audits.
_STREAM_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.RandomState",
    }
)

#: Modules whose trajectories hang on sort tie-breaks (DET005).  The flat
#: treebuilder's shared argsorts, the scheduler's placement ranking and the
#: optimizers' incumbent selection all feed seeded draw sequences, so an
#: unstable tie-break silently reshuffles trajectories across numpy versions
#: and platforms.
_TIEBREAK_SENSITIVE_BASENAMES = frozenset(
    {
        "treebuilder.py",
        "tree.py",
        "forest.py",
        "scheduler.py",
        "async_engine.py",
        "worker_index.py",
        "loop_reference.py",
        "gp.py",
        "smac.py",
        "base.py",
        "acquisition.py",
    }
)

#: Stable sort kinds accepted by DET005 (numpy spells stable both ways).
_STABLE_KINDS = frozenset({"stable", "mergesort"})


def _call_name(node: ast.Call, ctx: FileContext) -> str:
    return ctx.imports.resolve(node.func) or ""


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class UnseededEntropy(Rule):
    """DET001: entropy nobody seeded — the trajectory is unreproducible."""

    code = "DET001"
    title = "unseeded entropy source"
    rationale = (
        "`np.random.default_rng()` without a seed, `np.random.seed`, or "
        "module-level `random.*` draws from ambient entropy / hidden global "
        "state; every stream must derive from an explicit master seed."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test_code

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = _call_name(node, ctx)
        if not name:
            return
        if name == "numpy.random.default_rng":
            if not node.args or _is_none(node.args[0]):
                yield self.finding(
                    node,
                    ctx,
                    "np.random.default_rng() without a seed draws ambient "
                    "entropy — thread an explicit seed or Generator through "
                    "instead (see ROADMAP 'Guarded invariants')",
                )
            return
        if name.startswith("numpy.random."):
            fn = name.rsplit(".", 1)[1]
            if fn in _NUMPY_GLOBAL_STATE_FNS:
                yield self.finding(
                    node,
                    ctx,
                    f"legacy global-state entropy np.random.{fn}(...) — use a "
                    "seeded np.random.Generator owned by the caller",
                )
            return
        if name == "random.Random" and not node.args:
            yield self.finding(
                node, ctx, "random.Random() without a seed draws ambient entropy"
            )
            return
        if name.startswith("random."):
            fn = name.rsplit(".", 1)[1]
            if fn in _STDLIB_RANDOM_FNS:
                yield self.finding(
                    node,
                    ctx,
                    f"module-level random.{fn}(...) uses the hidden global "
                    "Mersenne state — use a seeded np.random.Generator",
                )


@register
class WallClockInCorePath(Rule):
    """DET002: wall-clock reads poison simulated time and resume equivalence."""

    code = "DET002"
    title = "wall-clock read outside benchmarks"
    rationale = (
        "`time.time`/`time.perf_counter`/`datetime.now` in core paths make "
        "trajectories depend on the host; simulated hours are the only clock. "
        "Provenance stamps need an allow-pragma with justification."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_benchmark_code

    def allows_pragma(self, ctx: FileContext) -> bool:
        """Scope the exemption surface inside the observability package.

        ``repro/obs`` may read host time in exactly one place — the
        injectable ``clock.py`` shim.  Everywhere else in ``obs/`` a
        wall-clock read stays a finding even behind a justified pragma, so
        instrumentation code cannot quietly grow its own timers."""
        if ctx.has_part("obs"):
            return ctx.basename == "clock.py"
        return True

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = _call_name(node, ctx)
        if name in _WALL_CLOCK_FNS:
            yield self.finding(
                node,
                ctx,
                f"wall-clock read {name}(...) — core paths must use the "
                "simulated clock; real timestamps belong in benchmarks/ or "
                "in provenance records behind a justified allow-pragma",
            )


@register
class UntaggedRngStream(Rule):
    """DET003: streams derived by seed arithmetic instead of SeedSequence."""

    code = "DET003"
    title = "RNG stream without a SeedSequence domain tag"
    rationale = (
        "`default_rng(seed + k)` style derivation risks stream collisions "
        "(two domains landing on the same seed); derive streams from "
        "`np.random.SeedSequence([master, domain_tag, ...])` or `.spawn()` — "
        "the `stream_for` pattern in `faults/crash.py` is the reference."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test_code

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = _call_name(node, ctx)
        if name not in _STREAM_CONSTRUCTORS:
            return
        for arg in node.args:
            if isinstance(arg, ast.BinOp):
                yield self.finding(
                    arg,
                    ctx,
                    f"{name.rsplit('.', 1)[1]}(...) seeded by arithmetic on "
                    "another seed — collision-prone; build the stream from "
                    "np.random.SeedSequence([master, domain_tag, ...]) or "
                    "spawn() (see faults/crash.py stream_for)",
                )


@register
class UnorderedIteration(Rule):
    """DET004: hash-ordered iteration feeding ordering-sensitive consumers."""

    code = "DET004"
    title = "set/dict-keys iteration in ordering-sensitive code"
    rationale = (
        "Iterating a set (hash-ordered, randomised for str) or bare "
        "`.keys()` in `core/` or `ml/` feeds consumers whose draw order, "
        "placement or tell order defines the trajectory; iterate a sorted "
        "or insertion-ordered sequence instead."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.has_part("core", "ml")

    def _iter_findings(
        self, iter_node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            yield self.finding(
                iter_node,
                ctx,
                "iteration over a set literal/comprehension is hash-ordered "
                "— sort it (sorted(...)) or keep an ordered sequence",
            )
            return
        if isinstance(iter_node, ast.Call):
            name = _call_name(iter_node, ctx)
            if name in ("set", "frozenset"):
                yield self.finding(
                    iter_node,
                    ctx,
                    f"iteration over {name}(...) is hash-ordered — sort it "
                    "(sorted(...)) or deduplicate with dict.fromkeys to keep "
                    "first-seen order",
                )
                return
            if (
                isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr == "keys"
                and not iter_node.args
            ):
                yield self.finding(
                    iter_node,
                    ctx,
                    "iteration over .keys() hides the ordering contract — "
                    "iterate the mapping itself (insertion order) or "
                    "sorted(...) to make the order explicit",
                )
                return
        if isinstance(iter_node, ast.BinOp) and isinstance(
            iter_node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            operands = (iter_node.left, iter_node.right)
            for operand in operands:
                set_like = isinstance(operand, (ast.Set, ast.SetComp)) or (
                    isinstance(operand, ast.Call)
                    and _call_name(operand, ctx) in ("set", "frozenset")
                )
                if set_like:
                    yield self.finding(
                        iter_node,
                        ctx,
                        "iteration over a set expression is hash-ordered — "
                        "sort the result before iterating",
                    )
                    return

    def visit_For(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        yield from self._iter_findings(node.iter, ctx)  # type: ignore[attr-defined]

    def visit_comprehension(
        self, node: ast.comprehension, ctx: FileContext
    ) -> Iterator[Finding]:
        yield from self._iter_findings(node.iter, ctx)


@register
class UnstableSort(Rule):
    """DET005: unstable argsort/sort on tie-break-sensitive paths."""

    code = "DET005"
    title = "unstable sort on a tie-break-sensitive path"
    rationale = (
        "numpy's default introsort reorders equal keys differently across "
        "versions/platforms; on modules whose tie-breaks feed seeded draws "
        "(treebuilder, scheduler, optimizer incumbent selection) every "
        "argsort/np.sort must pass kind='stable'.  Python's sorted()/list"
        ".sort() are always stable and exempt."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.basename in _TIEBREAK_SENSITIVE_BASENAMES

    def _has_stable_kind(self, node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "kind":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value in _STABLE_KINDS
                )
        return False

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = _call_name(node, ctx)
        is_np_sort = name in ("numpy.sort", "numpy.argsort")
        is_method_argsort = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "argsort"
        )
        if not (is_np_sort or is_method_argsort):
            return
        if self._has_stable_kind(node):
            return
        yield self.finding(
            node,
            ctx,
            "argsort/sort without kind='stable' on a tie-break-sensitive "
            "path — equal keys reorder across numpy versions and platforms, "
            "silently reshuffling seeded trajectories",
        )


@register
class EventLogEnvelopeMisuse(Rule):
    """DET006: only core/eventlog.py may mint the seq/kind log envelope."""

    code = "DET006"
    title = "event-log envelope minted outside core/eventlog.py"
    rationale = (
        "`append(..., seq=...)`/`append(..., kind=...)` or a hand-built "
        "{'seq': ..., 'kind': ...} record forges the write-ahead log "
        "envelope; sequence numbers and kinds are assigned only by "
        "EventLog.append, or replay's gap detection is meaningless."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.basename != "eventlog.py"

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "append"):
            return
        reserved = [
            keyword.arg
            for keyword in node.keywords
            if keyword.arg in ("seq", "kind")
        ]
        if reserved:
            yield self.finding(
                node,
                ctx,
                f"reserved envelope key(s) {reserved} passed to append() — "
                "EventLog.append assigns seq/kind itself and rejects these "
                "at runtime",
            )

    def visit_Dict(self, node: ast.Dict, ctx: FileContext) -> Iterator[Finding]:
        keys = {
            key.value
            for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        if {"seq", "kind"} <= keys:
            yield self.finding(
                node,
                ctx,
                "hand-built event-log envelope record ({'seq': ..., 'kind': "
                "...}) — only core/eventlog.py mints the envelope; go "
                "through EventLog.append",
            )


@register
class SwallowedException(Rule):
    """DET007: bare/blanket exception swallowing in failure-handling code."""

    code = "DET007"
    title = "swallowed exception in failure-handling code"
    rationale = (
        "A bare `except:` (or an `except Exception:` whose body is only "
        "`pass`) in `core/` or `faults/` silently eats the very faults the "
        "subsystem exists to surface: an injected crash or a bookkeeping "
        "bug becomes invisible trajectory divergence instead of a loud "
        "failure.  Catch the specific exception, or handle and re-raise."
    )

    #: Handler types broad enough to swallow injected faults wholesale.
    _BLANKET_NAMES = frozenset({"Exception", "BaseException"})

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.has_part("core", "faults") and not ctx.is_test_code

    def _is_blanket(self, type_node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_blanket(elt, ctx) for elt in type_node.elts)
        name = ctx.imports.resolve(type_node)
        return name in self._BLANKET_NAMES

    @staticmethod
    def _body_is_noop(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare `...`
            return False
        return True

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: FileContext
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                node,
                ctx,
                "bare `except:` catches everything (KeyboardInterrupt "
                "included) — name the exception(s) this handler is for",
            )
            return
        if self._is_blanket(node.type, ctx) and self._body_is_noop(node.body):
            yield self.finding(
                node,
                ctx,
                "`except Exception: pass` swallows injected faults and "
                "bookkeeping bugs without a trace — handle the specific "
                "exception, or log and re-raise",
            )


#: Ordered rule classes (public registry; the README table mirrors this).
RULES = registered_rules()


def build_rules() -> List[Rule]:
    """Fresh rule instances for one checker run."""
    return [rule_cls() for rule_cls in RULES]

"""CLI for detlint: ``python -m repro.analysis [paths ...]``.

Exit status 0 when the tree is clean (suppressed findings do not count),
1 when any finding survives, 2 on usage errors — the same contract ruff
follows, so ``make lint-det`` slots between ``make lint`` and tier-1.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.framework import Report, check_paths
from repro.analysis.rules import RULES

#: Scanned when no explicit paths are given (and they exist under cwd).
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _rule_table() -> str:
    lines = ["code    title", "----    -----"]
    for rule_cls in RULES:
        lines.append(f"{rule_cls.code}  {rule_cls.title}")
        lines.append(f"        {rule_cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="detlint: determinism & reproducibility static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write a machine-readable JSON report to PATH",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_table())
        return 0

    paths: List[str] = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print(
                "detlint: no paths given and none of "
                f"{'/'.join(DEFAULT_PATHS)} exist under the current directory",
                file=sys.stderr,
            )
            return 2
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"detlint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    report: Report = check_paths(paths)
    for finding in report.findings:
        print(finding.render())
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n", encoding="utf-8")
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    print(
        f"detlint: {status} across {report.n_files} file(s) "
        f"({report.n_suppressed} suppressed by justified pragmas)"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""detlint: determinism & reproducibility static analysis for the repro stack.

Every guarantee this reproduction makes — bit-for-bit ``fit``/``fit_pointer``
equivalence, lockstep ``batch_size=1`` trajectories, structurally inert
``"none"`` fault/crash models, resume equivalence after a kill — rests on a
determinism contract: seeded domain-tagged RNG streams, fixed draw counts,
stable sorts, no wall-clock reads in core paths.  Runtime equivalence tests
catch violations only *after* they corrupt a trajectory; this package checks
the contract at review time, the way race detectors guard concurrent code
before it ships.

Usage::

    python -m repro.analysis                  # scan src/, tests/, benchmarks/
    python -m repro.analysis path/to/file.py  # scan explicit files
    python -m repro.analysis --json out.json  # machine-readable report
    python -m repro.analysis --list-rules     # the rule table

Suppressions are per-line pragmas that *must* carry a justification::

    t0 = time.time()  # detlint: allow[DET002] -- provenance stamp only

An unjustified pragma does not suppress anything and is itself reported as
``DET000``.  See :mod:`repro.analysis.rules` for the rule set and the README
section "Static analysis: the determinism contract" for how to add a rule.
"""

from repro.analysis.framework import (
    Finding,
    FileContext,
    Report,
    Rule,
    check_file,
    check_paths,
)
from repro.analysis.rules import RULES

__all__ = [
    "Finding",
    "FileContext",
    "Report",
    "Rule",
    "RULES",
    "check_file",
    "check_paths",
]

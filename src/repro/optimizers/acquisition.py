"""Acquisition functions for Bayesian optimization (minimisation convention)."""

from __future__ import annotations

import numpy as np
from scipy import stats


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best_cost: float,
    xi: float = 0.01,
) -> np.ndarray:
    """Expected improvement over ``best_cost`` when *minimising*.

    Parameters
    ----------
    mean, std:
        Surrogate posterior mean and standard deviation at the candidates.
    best_cost:
        Lowest observed cost so far (the incumbent).
    xi:
        Exploration bonus; larger values favour exploration.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.shape != std.shape:
        raise ValueError("mean and std must have the same shape")
    std = np.maximum(std, 1e-12)
    improvement = best_cost - mean - xi
    z = improvement / std
    ei = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
    return np.maximum(ei, 0.0)


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, kappa: float = 1.8
) -> np.ndarray:
    """Lower-confidence-bound score for minimisation (negated for argmax use).

    Returns values where *larger is better* so callers can uniformly take an
    argmax over acquisition scores.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.shape != std.shape:
        raise ValueError("mean and std must have the same shape")
    if kappa < 0:
        raise ValueError("kappa must be non-negative")
    return -(mean - kappa * std)

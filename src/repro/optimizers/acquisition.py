"""Acquisition functions for Bayesian optimization (minimisation convention)."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtr

#: 1 / sqrt(2*pi) — the standard normal pdf is written out in closed form
#: instead of going through ``scipy.stats.norm.pdf``, whose distribution
#: machinery (argument broadcasting, shape validation, frozen-dist dispatch)
#: costs far more than the two flops it wraps.  ``ndtr`` is the raw cdf
#: kernel that ``scipy.stats.norm.cdf`` itself bottoms out in, so values are
#: unchanged; the per-call overhead on the EI path is what disappears.
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best_cost: float,
    xi: float = 0.01,
) -> np.ndarray:
    """Expected improvement over ``best_cost`` when *minimising*.

    Parameters
    ----------
    mean, std:
        Surrogate posterior mean and standard deviation at the candidates.
    best_cost:
        Lowest observed cost so far (the incumbent).
    xi:
        Exploration bonus; larger values favour exploration.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.shape != std.shape:
        raise ValueError("mean and std must have the same shape")
    std = np.maximum(std, 1e-12)
    improvement = best_cost - mean - xi
    z = improvement / std
    pdf = np.exp(-0.5 * z * z) * _INV_SQRT_2PI
    ei = improvement * ndtr(z) + std * pdf
    return np.maximum(ei, 0.0)


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, kappa: float = 1.8
) -> np.ndarray:
    """Lower-confidence-bound score for minimisation (negated for argmax use).

    Returns values where *larger is better* so callers can uniformly take an
    argmax over acquisition scores.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.shape != std.shape:
        raise ValueError("mean and std must have the same shape")
    if kappa < 0:
        raise ValueError("kappa must be non-negative")
    return -(mean - kappa * std)

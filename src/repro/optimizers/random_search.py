"""Pure random search baseline."""

from __future__ import annotations

from typing import Optional

from repro.configspace import Configuration, ConfigurationSpace
from repro.optimizers.base import Optimizer


class RandomSearchOptimizer(Optimizer):
    """Uniformly random suggestions (the weakest sensible baseline)."""

    def __init__(self, space: ConfigurationSpace, seed: Optional[int] = None) -> None:
        super().__init__(space, seed=seed)

    def ask(self) -> Configuration:
        return self.space.sample(self._rng)

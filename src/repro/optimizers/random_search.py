"""Pure random search baseline."""

from __future__ import annotations

from typing import List, Optional

from repro.configspace import Configuration, ConfigurationSpace
from repro.optimizers.base import Optimizer


class RandomSearchOptimizer(Optimizer):
    """Uniformly random suggestions (the weakest sensible baseline)."""

    def __init__(self, space: ConfigurationSpace, seed: Optional[int] = None) -> None:
        super().__init__(space, seed=seed)

    def ask(self) -> Configuration:
        return self.space.sample(self._rng)

    def ask_batch(self, n: int, liar: str = "min") -> List[Configuration]:
        # Random suggestions are independent of the observation history, so
        # no constant-liar fantasies are needed to keep a batch diverse
        # (the liar strategy is accepted for interface parity and ignored).
        if n < 1:
            raise ValueError("batch size must be >= 1")
        return [self.ask() for _ in range(n)]

"""OtterTune-style Gaussian-process Bayesian optimizer (§6.6)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.configspace import Configuration, ConfigurationSpace
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernels import Matern52Kernel
from repro.optimizers.acquisition import expected_improvement
from repro.optimizers.base import Optimizer


class GaussianProcessOptimizer(Optimizer):
    """GP + Expected Improvement optimizer over the unit-cube encoding."""

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: Optional[int] = None,
        n_initial_design: int = 10,
        n_candidates: int = 500,
        length_scale: float = 0.35,
        noise: float = 1e-4,
        xi: float = 0.01,
    ) -> None:
        super().__init__(space, seed=seed)
        if n_initial_design < 1:
            raise ValueError("n_initial_design must be >= 1")
        self.n_initial_design = n_initial_design
        self.n_candidates = n_candidates
        self.length_scale = length_scale
        self.noise = noise
        self.xi = xi
        self._initial_served = 0

    def ask(self) -> Configuration:
        if self._initial_served < self.n_initial_design:
            self._initial_served += 1
            return self.space.sample(self._rng)
        if self.n_observations < 2:
            # Not enough *real* data for a GP fit; pending constant-liar
            # fantasies alone carry no signal worth modelling.
            return self.space.sample(self._rng)

        # Training data includes pending fantasies, so batched asks spread
        # out instead of collapsing onto the current EI maximum.
        X, y, configs = self._training_data()
        gp = GaussianProcessRegressor(
            kernel=Matern52Kernel(length_scale=self.length_scale),
            noise=self.noise,
            normalize_y=True,
        )
        gp.fit(X, y)

        candidates = self.space.sample_batch(self.n_candidates, rng=self._rng)
        if configs:
            order = np.argsort(y, kind="stable")
            top = [configs[int(i)] for i in order[: max(1, len(order) // 10)]]
            for incumbent in top:
                candidates.extend(self.space.neighbours(incumbent, 20, rng=self._rng, scale=0.1))
        cand_X = self.space.encode_batch(candidates)
        mean, std = gp.predict(cand_X, return_std=True)
        ei = expected_improvement(mean, std, best_cost=float(np.min(y)), xi=self.xi)
        best_indices = np.flatnonzero(ei >= ei.max() - 1e-12)
        return candidates[int(self._rng.choice(best_indices))]

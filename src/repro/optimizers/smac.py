"""SMAC-style Bayesian optimization with a random-forest surrogate.

This mirrors the structure of SMAC3 (the optimizer the paper uses by
default, §5): an initial design of random configurations, a random-forest
surrogate with uncertainty estimates, Expected Improvement as acquisition,
and a candidate pool mixing uniformly random configurations with local
perturbations of the best configurations seen so far ("local search").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.configspace import Configuration, ConfigurationSpace
from repro.ml.cache import SurrogateCache
from repro.ml.forest import RandomForestRegressor
from repro.optimizers.acquisition import expected_improvement
from repro.optimizers.base import Optimizer


class SMACOptimizer(Optimizer):
    """Random-forest Bayesian optimizer.

    Parameters
    ----------
    space:
        The configuration space to search.
    n_initial_design:
        Number of random configurations evaluated before the surrogate is
        trusted (the paper's "initialization set").
    n_candidates:
        Number of random candidates scored by EI per ask.
    n_local:
        Number of local perturbations of the best configurations added to the
        candidate pool.
    n_trees:
        Size of the random-forest surrogate.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: Optional[int] = None,
        n_initial_design: int = 10,
        n_candidates: int = 400,
        n_local: int = 60,
        n_trees: int = 24,
        xi: float = 0.01,
        initial_design: Optional[List[Configuration]] = None,
    ) -> None:
        super().__init__(space, seed=seed)
        if n_initial_design < 1:
            raise ValueError("n_initial_design must be >= 1")
        self.n_initial_design = n_initial_design
        self.n_candidates = n_candidates
        self.n_local = n_local
        self.n_trees = n_trees
        self.xi = xi
        self._initial_design: List[Configuration] = (
            list(initial_design) if initial_design is not None else []
        )
        self._initial_served = 0
        # Fitted surrogate keyed on the optimizer's data version (bumped by
        # every tell/fantasize/retract): back-to-back ask() calls without an
        # intervening data change reuse the forest instead of refitting all
        # n_trees trees on identical data.
        self._surrogate_cache = SurrogateCache()

    # -- initial design ------------------------------------------------------
    def _next_initial(self) -> Optional[Configuration]:
        if self._initial_served < len(self._initial_design):
            config = self._initial_design[self._initial_served]
            self._initial_served += 1
            return config
        if self._initial_served < self.n_initial_design:
            self._initial_served += 1
            return self.space.sample(self._rng)
        return None

    # -- surrogate ------------------------------------------------------
    def _fit_surrogate(self) -> tuple:
        cached = self._surrogate_cache.get(self.data_version)
        if cached is not None:
            if self.metrics is not None:
                self.metrics.inc("optimizer.surrogate.cache_hits")
            return cached
        if self.metrics is not None:
            self.metrics.inc("optimizer.surrogate.refits")
        X, y, configs = self._training_data()
        forest = RandomForestRegressor(
            n_estimators=self.n_trees,
            min_samples_leaf=1,
            min_samples_split=3,
            max_features=5.0 / 6.0,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )
        if self.metrics is not None:
            with self.metrics.timer("optimizer.refit_seconds"):
                forest.fit(X, y)
        else:
            forest.fit(X, y)
        fitted = (forest, X, y, configs)
        self._surrogate_cache.put(self.data_version, fitted)
        return fitted

    def _candidate_pool(self, configs: List[Configuration], y: np.ndarray) -> List[Configuration]:
        candidates = self.space.sample_batch(self.n_candidates, rng=self._rng)
        if configs and self.n_local > 0:
            order = np.argsort(y, kind="stable")
            top = [configs[int(i)] for i in order[: max(1, len(order) // 10)]]
            per_incumbent = max(1, self.n_local // len(top))
            for incumbent in top:
                candidates.extend(
                    self.space.neighbours(incumbent, per_incumbent, rng=self._rng, scale=0.15)
                )
        return candidates

    # -- ask ------------------------------------------------------
    def ask(self) -> Configuration:
        if self.metrics is not None:
            self.metrics.inc("optimizer.asks")
            with self.metrics.timer("optimizer.ask_seconds"):
                return self._ask_impl()
        return self._ask_impl()

    def _ask_impl(self) -> Configuration:
        initial = self._next_initial()
        if initial is not None:
            return initial
        if self.n_observations < 2:
            return self.space.sample(self._rng)

        forest, X, y, configs = self._fit_surrogate()
        candidates = self._candidate_pool(configs, y)
        if not candidates:
            # Degenerate pool (n_candidates=0 and no local search): fall back
            # to a random sample instead of letting ``ei.max()`` raise on an
            # empty array.
            return self.space.sample(self._rng)
        cand_X = self.space.encode_batch(candidates)
        mean, std = forest.predict_mean_std(cand_X)
        ei = expected_improvement(mean, std, best_cost=float(np.min(y)), xi=self.xi)
        # Break ties randomly so repeated asks don't collapse to one point.
        best_indices = np.flatnonzero(ei >= ei.max() - 1e-12)
        choice = int(self._rng.choice(best_indices))
        return candidates[choice]

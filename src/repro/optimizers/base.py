"""Common ask/tell optimizer interface.

All optimizers *minimise a cost*.  The tuning loop converts the workload's
objective into a cost with :func:`objective_to_cost` (throughput is negated;
runtimes and latencies pass through).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.configspace import Configuration, ConfigurationSpace
from repro.workloads.base import Objective


def objective_to_cost(value: float, objective: Objective) -> float:
    """Convert an objective value into a cost to be minimised."""
    if objective.higher_is_better:
        return -float(value)
    return float(value)


def cost_to_objective(cost: float, objective: Objective) -> float:
    """Inverse of :func:`objective_to_cost`."""
    if objective.higher_is_better:
        return -float(cost)
    return float(cost)


#: Known constant-liar strategies for in-flight fantasies (§6.6 ablation):
#: the lie recorded for a pending configuration is the best / mean / worst
#: cost seen so far.  ``"min"`` is aggressive (assumes the pending point is
#: great, pushes later asks far away); ``"max"`` is pessimistic (assumes it
#: is poor, allows revisiting nearby); ``"mean"`` sits between.
LIAR_STRATEGIES = ("min", "mean", "max")


@dataclass
class OptimizerObservation:
    """One (configuration, cost) observation reported to an optimizer."""

    config: Configuration
    cost: float
    budget: float = 1.0
    metadata: Dict = field(default_factory=dict)


class Optimizer(abc.ABC):
    """Sequential model-based optimizer with an ask/tell interface.

    Batched/asynchronous callers use :meth:`ask_batch`, which records a
    *pending fantasy* (constant-liar observation) for every suggestion so
    that several configurations can be in flight at once without the
    acquisition function collapsing onto a single point.  Fantasies live in
    a separate list and are retracted automatically when the real result is
    reported via :meth:`tell`.
    """

    def __init__(self, space: ConfigurationSpace, seed: Optional[int] = None) -> None:
        self.space = space
        self._rng = np.random.default_rng(seed)
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` (attached by
        #: the tuning loop).  Instrumented sites are ``is not None``-guarded
        #: and write-only, so an attached registry is trajectory-inert.
        self.metrics = None
        self.observations: List[OptimizerObservation] = []
        #: In-flight constant-liar observations, retracted on the real tell.
        self._pending: List[OptimizerObservation] = []
        #: Monotonic fingerprint of the training data (real + pending);
        #: bumped by every tell/fantasize/retract so surrogate caches can
        #: key on it.
        self._data_version = 0

    # -- interface -------------------------------------------------------
    @abc.abstractmethod
    def ask(self) -> Configuration:
        """Suggest the next configuration to evaluate."""

    def ask_batch(self, n: int, liar: str = "min") -> List[Configuration]:
        """Suggest ``n`` configurations to run concurrently.

        After each suggestion a constant-liar fantasy is recorded, so later
        suggestions in the batch (and later batches, while results are still
        in flight) see the earlier ones as already evaluated and spread out
        instead of piling onto the current acquisition maximum.  ``liar``
        picks the fantasy statistic (see :data:`LIAR_STRATEGIES`); the
        default CL-min is the legacy behaviour.
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        configs: List[Configuration] = []
        for _ in range(n):
            config = self.ask()
            self.fantasize(config, liar=liar)
            configs.append(config)
        return configs

    def tell(
        self,
        config: Configuration,
        cost: float,
        budget: float = 1.0,
        metadata: Optional[Dict] = None,
    ) -> None:
        """Report the cost observed for a configuration.

        Any pending fantasies for the configuration are retracted first: the
        real observation replaces the lie.
        """
        if self.metrics is not None:
            self.metrics.inc("optimizer.tells")
        self._record(config, cost, budget, metadata)
        self._data_version += 1

    def tell_batch(
        self, results: Sequence[Tuple[Configuration, float, float]]
    ) -> None:
        """Report several results that landed in the same event-loop drain.

        Semantically identical to calling :meth:`tell` once per
        ``(config, cost, budget)`` triple, in order — same observations, same
        fantasy retraction, one shared :meth:`_record` path — but the
        training-data fingerprint advances once for the whole wave, so a
        cached surrogate is invalidated (and refit) a single time per wave
        rather than once per landed result.  Validation is atomic: a
        non-finite cost anywhere in the wave records nothing.
        """
        results = list(results)
        for _, cost, _ in results:
            if not np.isfinite(cost):
                raise ValueError("cost must be finite; penalise crashes before telling")
        if not results:
            return
        if self.metrics is not None:
            self.metrics.inc("optimizer.tells", len(results))
            self.metrics.inc("optimizer.tell_batches")
        for config, cost, budget in results:
            self._record(config, cost, budget, None)
        self._data_version += 1

    def _record(
        self,
        config: Configuration,
        cost: float,
        budget: float,
        metadata: Optional[Dict],
    ) -> None:
        """Shared body of :meth:`tell` / :meth:`tell_batch`: retract the
        configuration's pending fantasies and append the real observation
        (fingerprint bumping is the caller's job)."""
        if not np.isfinite(cost):
            raise ValueError("cost must be finite; penalise crashes before telling")
        self._retract_quietly(config, all_matching=True)
        self.observations.append(
            OptimizerObservation(config, float(cost), float(budget), metadata or {})
        )

    # -- in-flight fantasies ---------------------------------------------------
    def fantasize(
        self, config: Configuration, budget: float = 1.0, liar: str = "min"
    ) -> OptimizerObservation:
        """Record a constant-liar observation for an in-flight configuration.

        ``liar`` chooses the lie from the costs seen so far: ``"min"`` (the
        best cost — the aggressive default, which collapses the acquisition
        function around the pending point and steers subsequent asks away
        from it), ``"mean"`` (CL-mean) or ``"max"`` (CL-max, the
        pessimistic variant).  With no real observations yet the statistic
        is taken over the pending lies, or 0.0 for a completely cold
        optimizer (harmless: asks fall back to random sampling until two
        real observations exist).
        """
        if liar not in LIAR_STRATEGIES:
            raise ValueError(
                f"unknown liar strategy {liar!r}; known: {LIAR_STRATEGIES}"
            )
        pool = self.observations or self._pending
        costs = [obs.cost for obs in pool]
        if not costs:
            lie = 0.0
        elif liar == "min":
            lie = min(costs)
        elif liar == "max":
            lie = max(costs)
        else:
            lie = float(np.mean(costs))
        observation = OptimizerObservation(
            config, float(lie), float(budget), {"fantasy": True, "liar": liar}
        )
        self._pending.append(observation)
        self._data_version += 1
        return observation

    def retract_fantasy(self, config: Configuration, all_matching: bool = False) -> bool:
        """Drop pending fantasies for ``config``; returns whether any existed."""
        found = self._retract_quietly(config, all_matching=all_matching)
        if found:
            self._data_version += 1
        return found

    def _retract_quietly(self, config: Configuration, all_matching: bool = False) -> bool:
        """Drop pending fantasies without advancing the data fingerprint
        (batched tells bump it once for the whole wave)."""
        found = False
        remaining: List[OptimizerObservation] = []
        for obs in self._pending:
            if obs.config == config and (all_matching or not found):
                found = True
                continue
            remaining.append(obs)
        if found:
            self._pending = remaining
        return found

    @property
    def pending_fantasies(self) -> List[OptimizerObservation]:
        return list(self._pending)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def data_version(self) -> int:
        """Cheap fingerprint of the training data (real + pending lies)."""
        return self._data_version

    # -- shared helpers -------------------------------------------------------
    @property
    def n_observations(self) -> int:
        """Number of *real* observations (pending fantasies excluded)."""
        return len(self.observations)

    def best_observation(self) -> OptimizerObservation:
        """The lowest-cost observation, restricted to the highest budget seen."""
        if not self.observations:
            raise RuntimeError("no observations yet")
        max_budget = max(obs.budget for obs in self.observations)
        candidates = [obs for obs in self.observations if obs.budget >= max_budget]
        return min(candidates, key=lambda obs: obs.cost)

    def _training_data(self) -> tuple:
        """Encode observations (real + pending fantasies) for surrogate fitting.

        If a configuration has been observed at several budgets, only its
        highest-budget observation is kept (the most trustworthy one), and
        within the same budget the most recent observation wins.  Pending
        constant-liar fantasies make in-flight configurations look evaluated
        to the surrogate, but a lie never shadows a real observation of the
        same configuration — the lie is the global best cost, which would
        pull the acquisition *towards* the pending point instead of away.
        """
        best_per_config: Dict[Configuration, OptimizerObservation] = {}
        for obs in self.observations:
            existing = best_per_config.get(obs.config)
            if existing is None or obs.budget >= existing.budget:
                best_per_config[obs.config] = obs
        for obs in self._pending:
            if obs.config not in best_per_config:
                best_per_config[obs.config] = obs
        configs = list(best_per_config.keys())
        X = self.space.encode_batch(configs)
        y = np.array([best_per_config[c].cost for c in configs], dtype=float)
        return X, y, configs

"""Common ask/tell optimizer interface.

All optimizers *minimise a cost*.  The tuning loop converts the workload's
objective into a cost with :func:`objective_to_cost` (throughput is negated;
runtimes and latencies pass through).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.configspace import Configuration, ConfigurationSpace
from repro.workloads.base import Objective


def objective_to_cost(value: float, objective: Objective) -> float:
    """Convert an objective value into a cost to be minimised."""
    if objective.higher_is_better:
        return -float(value)
    return float(value)


def cost_to_objective(cost: float, objective: Objective) -> float:
    """Inverse of :func:`objective_to_cost`."""
    if objective.higher_is_better:
        return -float(cost)
    return float(cost)


@dataclass
class OptimizerObservation:
    """One (configuration, cost) observation reported to an optimizer."""

    config: Configuration
    cost: float
    budget: float = 1.0
    metadata: Dict = field(default_factory=dict)


class Optimizer(abc.ABC):
    """Sequential model-based optimizer with an ask/tell interface."""

    def __init__(self, space: ConfigurationSpace, seed: Optional[int] = None) -> None:
        self.space = space
        self._rng = np.random.default_rng(seed)
        self.observations: List[OptimizerObservation] = []

    # -- interface -------------------------------------------------------
    @abc.abstractmethod
    def ask(self) -> Configuration:
        """Suggest the next configuration to evaluate."""

    def tell(
        self,
        config: Configuration,
        cost: float,
        budget: float = 1.0,
        metadata: Optional[Dict] = None,
    ) -> None:
        """Report the cost observed for a configuration."""
        if not np.isfinite(cost):
            raise ValueError("cost must be finite; penalise crashes before telling")
        self.observations.append(
            OptimizerObservation(config, float(cost), float(budget), metadata or {})
        )

    # -- shared helpers -------------------------------------------------------
    @property
    def n_observations(self) -> int:
        return len(self.observations)

    def best_observation(self) -> OptimizerObservation:
        """The lowest-cost observation, restricted to the highest budget seen."""
        if not self.observations:
            raise RuntimeError("no observations yet")
        max_budget = max(obs.budget for obs in self.observations)
        candidates = [obs for obs in self.observations if obs.budget >= max_budget]
        return min(candidates, key=lambda obs: obs.cost)

    def _training_data(self) -> tuple:
        """Encode observations for surrogate fitting.

        If a configuration has been observed at several budgets, only its
        highest-budget observation is kept (the most trustworthy one), and
        within the same budget the most recent observation wins.
        """
        best_per_config: Dict[Configuration, OptimizerObservation] = {}
        for obs in self.observations:
            existing = best_per_config.get(obs.config)
            if existing is None or obs.budget >= existing.budget:
                best_per_config[obs.config] = obs
        configs = list(best_per_config.keys())
        X = self.space.encode_batch(configs)
        y = np.array([best_per_config[c].cost for c in configs], dtype=float)
        return X, y, configs

"""Black-box configuration optimizers.

TUNA is explicitly optimizer-agnostic (§4: "should not require any changes to
the underlying optimizer"), and the paper demonstrates it with two optimizers:
SMAC-style Bayesian optimization with a random-forest surrogate (the default,
§5) and an OtterTune-style Gaussian-process optimizer (§6.6).  This package
provides both, plus random search as a sanity baseline, behind a common
ask/tell interface that minimises *cost* (lower is better).
"""

from repro.optimizers.acquisition import expected_improvement, upper_confidence_bound
from repro.optimizers.base import (
    LIAR_STRATEGIES,
    Optimizer,
    OptimizerObservation,
    objective_to_cost,
)
from repro.optimizers.gp import GaussianProcessOptimizer
from repro.optimizers.random_search import RandomSearchOptimizer
from repro.optimizers.smac import SMACOptimizer


def build_optimizer(name: str, space, seed=None, **kwargs) -> Optimizer:
    """Instantiate an optimizer by name (``smac``, ``gp`` or ``random``)."""
    name = name.lower()
    if name == "smac":
        return SMACOptimizer(space, seed=seed, **kwargs)
    if name == "gp":
        return GaussianProcessOptimizer(space, seed=seed, **kwargs)
    if name == "random":
        return RandomSearchOptimizer(space, seed=seed, **kwargs)
    raise KeyError(f"unknown optimizer {name!r}; known: smac, gp, random")


__all__ = [
    "GaussianProcessOptimizer",
    "LIAR_STRATEGIES",
    "Optimizer",
    "OptimizerObservation",
    "RandomSearchOptimizer",
    "SMACOptimizer",
    "build_optimizer",
    "expected_improvement",
    "objective_to_cost",
    "upper_confidence_bound",
]

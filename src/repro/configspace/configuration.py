"""Immutable configuration objects.

A :class:`Configuration` is a frozen mapping of knob name to value bound to
the :class:`~repro.configspace.space.ConfigurationSpace` it was drawn from.
Configurations hash on their values so that the datastore and schedulers can
use them as dictionary keys (the multi-fidelity scheduler needs to recognise
"the same config promoted to a higher budget").
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

import numpy as np


class Configuration(Mapping):
    """A single assignment of values to every knob in a configuration space."""

    def __init__(self, space, values: Dict) -> None:
        from repro.configspace.space import ConfigurationSpace  # local, avoid cycle

        if not isinstance(space, ConfigurationSpace):
            raise TypeError("space must be a ConfigurationSpace")
        missing = set(space.names) - set(values)
        extra = set(values) - set(space.names)
        if missing:
            raise ValueError(f"configuration missing knobs: {sorted(missing)}")
        if extra:
            raise ValueError(f"configuration has unknown knobs: {sorted(extra)}")
        for name, value in values.items():
            space[name].validate(value)
        self._space = space
        self._values = dict(values)
        self._key = tuple(
            (name, self._normalise(self._values[name])) for name in space.names
        )

    @classmethod
    def _from_validated(cls, space, values: Dict) -> "Configuration":
        """Build a configuration from values known to be complete and legal.

        Used by the columnar batch paths of :class:`ConfigurationSpace`,
        where values come straight out of a parameter's own
        ``decode_array`` / ``sample_array`` / ``neighbour_array`` and
        re-validating each one per configuration would dominate the batch
        cost.
        """
        config = object.__new__(cls)
        config._space = space
        config._values = dict(values)
        config._key = tuple(
            (name, cls._normalise(config._values[name])) for name in space.names
        )
        return config

    @staticmethod
    def _normalise(value):
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
        return value

    # -- Mapping protocol --------------------------------------------------
    def __getitem__(self, name: str):
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._space.names)

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ------------------------------------------------------------
    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._key == other._key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Configuration({inner})"

    # -- conversions -----------------------------------------------------------
    @property
    def space(self):
        return self._space

    def as_dict(self) -> Dict:
        """Plain dictionary copy of the knob values."""
        return dict(self._values)

    def to_unit_array(self) -> np.ndarray:
        """Encode this configuration into the unit hypercube."""
        return self._space.encode(self)

    def with_updates(self, **updates) -> "Configuration":
        """Return a copy with some knob values replaced."""
        values = dict(self._values)
        values.update(updates)
        return Configuration(self._space, values)

"""Configuration spaces: ordered collections of typed parameters."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.configspace.configuration import Configuration
from repro.configspace.parameters import Parameter


class ConfigurationSpace:
    """An ordered set of knobs with sampling and encoding helpers.

    The order of parameters is the order in which they are added and defines
    the column order of the unit-cube encoding consumed by surrogate models.
    """

    def __init__(self, parameters: Optional[Iterable[Parameter]] = None, seed: Optional[int] = None) -> None:
        self._parameters: Dict[str, Parameter] = {}
        # detlint DET001 audit: every production caller (samplers, optimizers,
        # experiments) threads an explicit seed or passes its own Generator to
        # sample()/neighbours(); seed=None is the documented interactive
        # opt-in to ambient entropy, not a reproducibility path.
        self._rng = np.random.default_rng(seed)
        if parameters is not None:
            for parameter in parameters:
                self.add(parameter)

    # -- construction ------------------------------------------------------
    def add(self, parameter: Parameter) -> "ConfigurationSpace":
        if not isinstance(parameter, Parameter):
            raise TypeError("can only add Parameter instances")
        if parameter.name in self._parameters:
            raise ValueError(f"duplicate parameter name: {parameter.name}")
        self._parameters[parameter.name] = parameter
        return self

    # -- basic accessors ------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return list(self._parameters.keys())

    @property
    def parameters(self) -> List[Parameter]:
        return list(self._parameters.values())

    def __getitem__(self, name: str) -> Parameter:
        return self._parameters[name]

    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def __len__(self) -> int:
        return len(self._parameters)

    @property
    def dimension(self) -> int:
        """Number of knobs (== dimensionality of the unit-cube encoding)."""
        return len(self._parameters)

    # -- configurations ------------------------------------------------------
    def default_configuration(self) -> Configuration:
        return Configuration(self, {p.name: p.default for p in self.parameters})

    def configuration(self, values: Dict) -> Configuration:
        """Build a configuration from a complete dict of knob values."""
        return Configuration(self, values)

    def partial_configuration(self, **overrides) -> Configuration:
        """Default configuration with some knobs overridden."""
        values = {p.name: p.default for p in self.parameters}
        values.update(overrides)
        return Configuration(self, values)

    def sample(self, rng: Optional[np.random.Generator] = None) -> Configuration:
        rng = rng if rng is not None else self._rng
        return Configuration(self, {p.name: p.sample(rng) for p in self.parameters})

    def sample_batch(self, n: int, rng: Optional[np.random.Generator] = None) -> List[Configuration]:
        """Draw ``n`` random configurations, one columnar draw per knob."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return []
        rng = rng if rng is not None else self._rng
        columns = [p.sample_array(n, rng) for p in self.parameters]
        names = self.names
        return [
            Configuration._from_validated(self, dict(zip(names, row)))
            for row in zip(*columns)
        ]

    # -- encoding ------------------------------------------------------
    def encode(self, config: Configuration) -> np.ndarray:
        """Encode a configuration into a vector in the unit hypercube."""
        self._check_space(config)
        return np.array(
            [self[name].encode(config[name]) for name in self.names], dtype=float
        )

    def _check_space(self, config: Configuration) -> None:
        if config.space is not self:
            # Allow structurally identical spaces (e.g. rebuilt knob spaces).
            if config.space.names != self.names:
                raise ValueError("configuration does not belong to this space")

    def encode_batch(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Unit-cube encoding of a batch, one columnar op per knob."""
        if not configs:
            return np.zeros((0, self.dimension), dtype=float)
        for config in configs:
            self._check_space(config)
        out = np.empty((len(configs), self.dimension), dtype=float)
        for column, name in enumerate(self.names):
            values = [config[name] for config in configs]
            out[:, column] = self[name].encode_array(values)
        return out

    def decode(self, unit_vector) -> Configuration:
        """Decode a unit-cube vector back into a configuration."""
        vector = np.asarray(unit_vector, dtype=float).ravel()
        if vector.shape[0] != self.dimension:
            raise ValueError(
                f"expected a vector of length {self.dimension}, got {vector.shape[0]}"
            )
        values = {
            name: self[name].decode(vector[i]) for i, name in enumerate(self.names)
        }
        return Configuration(self, values)

    # -- neighbourhoods ------------------------------------------------------
    def neighbour(
        self,
        config: Configuration,
        rng: Optional[np.random.Generator] = None,
        n_changes: int = 1,
        scale: float = 0.2,
    ) -> Configuration:
        """Perturb ``n_changes`` randomly chosen knobs of ``config``."""
        rng = rng if rng is not None else self._rng
        if n_changes < 1:
            raise ValueError("n_changes must be >= 1")
        n_changes = min(n_changes, self.dimension)
        chosen = rng.choice(self.dimension, size=n_changes, replace=False)
        values = config.as_dict()
        for index in chosen:
            name = self.names[int(index)]
            values[name] = self[name].neighbour(values[name], rng, scale=scale)
        return Configuration(self, values)

    def neighbours(
        self,
        config: Configuration,
        n: int,
        rng: Optional[np.random.Generator] = None,
        scale: float = 0.2,
    ) -> List[Configuration]:
        """A list of ``n`` single-knob perturbations of ``config``.

        The perturbed knob is drawn per neighbour, then all neighbours that
        share a knob are perturbed with one columnar ``neighbour_array``
        call on that knob's parameter.
        """
        rng = rng if rng is not None else self._rng
        if n <= 0:
            return []
        base = config.as_dict()
        # The neighbours are built without per-configuration re-validation,
        # so the base values must be legal *in this space* (the config may
        # come from a structurally identical space with different bounds).
        for name in self.names:
            self[name].validate(base[name])
        chosen = rng.integers(0, self.dimension, size=n)
        rows: List[Dict] = [dict(base) for _ in range(n)]
        for index, name in enumerate(self.names):
            slots = np.flatnonzero(chosen == index)
            if slots.size == 0:
                continue
            perturbed = self[name].neighbour_array(
                base[name], slots.size, rng, scale=scale
            )
            for slot, value in zip(slots.tolist(), perturbed):
                rows[slot][name] = value
        return [Configuration._from_validated(self, values) for values in rows]

"""Configuration-space substrate.

Every system-under-test exposes its tunable knobs as a
:class:`~repro.configspace.space.ConfigurationSpace` made of typed
parameters.  Configurations can be sampled uniformly, encoded into the unit
hypercube (the representation consumed by the optimizers' surrogate models)
and perturbed into neighbours for SMAC-style local search.
"""

from repro.configspace.parameters import (
    BooleanParameter,
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
    Parameter,
)
from repro.configspace.configuration import Configuration
from repro.configspace.space import ConfigurationSpace

__all__ = [
    "BooleanParameter",
    "CategoricalParameter",
    "Configuration",
    "ConfigurationSpace",
    "FloatParameter",
    "IntegerParameter",
    "Parameter",
]

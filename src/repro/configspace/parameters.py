"""Typed tunable parameters (knobs).

Each parameter knows how to sample a random value, encode a value into
``[0, 1]`` for surrogate models, decode it back, and produce a nearby
"neighbour" value for local search.  Log-scaled numeric parameters are
supported because most DBMS memory knobs (``shared_buffers``, ``work_mem``,
…) span several orders of magnitude.

Besides the scalar interface, every parameter offers columnar counterparts
(``encode_array``, ``decode_array``, ``sample_array``, ``neighbour_array``)
that process *all* values of a batch with one vectorized operation.  The
candidate-generation hot path of the SMAC optimizer
(:meth:`~repro.configspace.space.ConfigurationSpace.sample_batch`,
``encode_batch``, ``neighbours``) runs one columnar call per parameter
instead of one Python loop per configuration.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np


class Parameter:
    """Base class for a single tunable knob."""

    def __init__(self, name: str, default) -> None:
        if not name:
            raise ValueError("parameter name must be non-empty")
        self.name = name
        self.default = default

    # -- interface -------------------------------------------------------
    def sample(self, rng: np.random.Generator):
        """Draw a uniform random legal value."""
        raise NotImplementedError

    def encode(self, value) -> float:
        """Map a legal value into [0, 1]."""
        raise NotImplementedError

    def decode(self, unit: float):
        """Map a [0, 1] scalar back to a legal value."""
        raise NotImplementedError

    def neighbour(self, value, rng: np.random.Generator, scale: float = 0.2):
        """Return a nearby legal value (for local search)."""
        raise NotImplementedError

    def validate(self, value) -> None:
        """Raise ``ValueError`` if ``value`` is not legal for this knob."""
        raise NotImplementedError

    # -- columnar interface ----------------------------------------------
    # Subclasses override these with truly vectorized implementations; the
    # base-class fallbacks keep custom Parameter subclasses working.
    def encode_array(self, values: Sequence) -> np.ndarray:
        """Encode a batch of legal values into ``[0, 1]`` (one array op)."""
        return np.array([self.encode(v) for v in values], dtype=float)

    def decode_array(self, units: np.ndarray) -> List:
        """Decode a batch of ``[0, 1]`` scalars back to legal values."""
        return [self.decode(u) for u in np.asarray(units, dtype=float)]

    def sample_array(self, n: int, rng: np.random.Generator) -> List:
        """Draw ``n`` uniform random legal values."""
        return self.decode_array(rng.random(n))

    def neighbour_array(
        self, value, n: int, rng: np.random.Generator, scale: float = 0.2
    ) -> List:
        """Return ``n`` nearby legal values of ``value`` (for local search)."""
        return [self.neighbour(value, rng, scale=scale) for _ in range(n)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, default={self.default!r})"


class FloatParameter(Parameter):
    """Continuous knob on ``[lower, upper]``, optionally log-scaled."""

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        default: Optional[float] = None,
        log: bool = False,
    ) -> None:
        if not lower < upper:
            raise ValueError(f"{name}: lower must be < upper")
        if log and lower <= 0:
            raise ValueError(f"{name}: log-scaled parameters require lower > 0")
        self.lower = float(lower)
        self.upper = float(upper)
        self.log = log
        if default is None:
            default = math.sqrt(lower * upper) if log else (lower + upper) / 2.0
        super().__init__(name, float(default))
        self.validate(self.default)

    def validate(self, value) -> None:
        value = float(value)
        if not (self.lower <= value <= self.upper):
            raise ValueError(
                f"{self.name}: value {value} outside [{self.lower}, {self.upper}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return self.decode(float(rng.random()))

    def encode(self, value) -> float:
        self.validate(value)
        value = float(value)
        if self.log:
            return (math.log(value) - math.log(self.lower)) / (
                math.log(self.upper) - math.log(self.lower)
            )
        return (value - self.lower) / (self.upper - self.lower)

    def decode(self, unit: float) -> float:
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log:
            return float(
                math.exp(
                    math.log(self.lower)
                    + unit * (math.log(self.upper) - math.log(self.lower))
                )
            )
        return float(self.lower + unit * (self.upper - self.lower))

    def neighbour(self, value, rng: np.random.Generator, scale: float = 0.2) -> float:
        unit = self.encode(value)
        step = float(rng.normal(0.0, scale))
        return self.decode(min(max(unit + step, 0.0), 1.0))

    # -- columnar --------------------------------------------------------
    def encode_array(self, values: Sequence) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.size and not (
            np.all(values >= self.lower) and np.all(values <= self.upper)
        ):
            raise ValueError(
                f"{self.name}: batch contains values outside "
                f"[{self.lower}, {self.upper}]"
            )
        if self.log:
            return (np.log(values) - math.log(self.lower)) / (
                math.log(self.upper) - math.log(self.lower)
            )
        return (values - self.lower) / (self.upper - self.lower)

    def _decode_to_ndarray(self, units: np.ndarray) -> np.ndarray:
        units = np.clip(np.asarray(units, dtype=float), 0.0, 1.0)
        if self.log:
            return np.exp(
                math.log(self.lower)
                + units * (math.log(self.upper) - math.log(self.lower))
            )
        return self.lower + units * (self.upper - self.lower)

    def decode_array(self, units: np.ndarray) -> List[float]:
        return self._decode_to_ndarray(units).tolist()

    def neighbour_array(
        self, value, n: int, rng: np.random.Generator, scale: float = 0.2
    ) -> List[float]:
        unit = self.encode(value)
        steps = rng.normal(0.0, scale, size=n)
        return self.decode_array(np.clip(unit + steps, 0.0, 1.0))


class IntegerParameter(Parameter):
    """Integer knob on ``[lower, upper]`` (inclusive), optionally log-scaled."""

    def __init__(
        self,
        name: str,
        lower: int,
        upper: int,
        default: Optional[int] = None,
        log: bool = False,
    ) -> None:
        if not lower < upper:
            raise ValueError(f"{name}: lower must be < upper")
        if log and lower <= 0:
            raise ValueError(f"{name}: log-scaled parameters require lower > 0")
        self.lower = int(lower)
        self.upper = int(upper)
        self.log = log
        if default is None:
            default = (
                int(round(math.sqrt(lower * upper))) if log else (lower + upper) // 2
            )
        super().__init__(name, int(default))
        self.validate(self.default)

    def validate(self, value) -> None:
        if int(value) != value:
            raise ValueError(f"{self.name}: value {value!r} is not an integer")
        value = int(value)
        if not (self.lower <= value <= self.upper):
            raise ValueError(
                f"{self.name}: value {value} outside [{self.lower}, {self.upper}]"
            )

    def sample(self, rng: np.random.Generator) -> int:
        return self.decode(float(rng.random()))

    def encode(self, value) -> float:
        self.validate(value)
        value = int(value)
        if self.log:
            return (math.log(value) - math.log(self.lower)) / (
                math.log(self.upper) - math.log(self.lower)
            )
        if self.upper == self.lower:
            return 0.0
        return (value - self.lower) / (self.upper - self.lower)

    def decode(self, unit: float) -> int:
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log:
            raw = math.exp(
                math.log(self.lower)
                + unit * (math.log(self.upper) - math.log(self.lower))
            )
        else:
            raw = self.lower + unit * (self.upper - self.lower)
        return int(min(max(int(round(raw)), self.lower), self.upper))

    def neighbour(self, value, rng: np.random.Generator, scale: float = 0.2) -> int:
        unit = self.encode(value)
        step = float(rng.normal(0.0, scale))
        candidate = self.decode(min(max(unit + step, 0.0), 1.0))
        if candidate == int(value) and self.upper > self.lower:
            # Force at least a one-step move so local search cannot stall.
            direction = 1 if rng.random() < 0.5 else -1
            candidate = int(min(max(int(value) + direction, self.lower), self.upper))
        return candidate

    # -- columnar --------------------------------------------------------
    def encode_array(self, values: Sequence) -> np.ndarray:
        values = np.asarray(values)
        as_int = values.astype(np.int64)
        if values.size and not (
            np.all(as_int == values)
            and np.all(as_int >= self.lower)
            and np.all(as_int <= self.upper)
        ):
            raise ValueError(
                f"{self.name}: batch contains non-integers or values outside "
                f"[{self.lower}, {self.upper}]"
            )
        if self.log:
            return (np.log(as_int) - math.log(self.lower)) / (
                math.log(self.upper) - math.log(self.lower)
            )
        if self.upper == self.lower:
            return np.zeros(as_int.shape, dtype=float)
        return (as_int - self.lower) / (self.upper - self.lower)

    def _decode_to_ndarray(self, units: np.ndarray) -> np.ndarray:
        units = np.clip(np.asarray(units, dtype=float), 0.0, 1.0)
        if self.log:
            raw = np.exp(
                math.log(self.lower)
                + units * (math.log(self.upper) - math.log(self.lower))
            )
        else:
            raw = self.lower + units * (self.upper - self.lower)
        # np.round and builtins.round both round half to even, so this
        # matches the scalar decode() exactly.
        return np.clip(np.round(raw), self.lower, self.upper).astype(np.int64)

    def decode_array(self, units: np.ndarray) -> List[int]:
        return self._decode_to_ndarray(units).tolist()

    def neighbour_array(
        self, value, n: int, rng: np.random.Generator, scale: float = 0.2
    ) -> List[int]:
        unit = self.encode(value)
        steps = rng.normal(0.0, scale, size=n)
        candidates = self._decode_to_ndarray(np.clip(unit + steps, 0.0, 1.0))
        if self.upper > self.lower:
            stalled = np.flatnonzero(candidates == int(value))
            if stalled.size:
                # Force at least a one-step move so local search cannot stall.
                directions = np.where(rng.random(stalled.size) < 0.5, 1, -1)
                forced = np.clip(int(value) + directions, self.lower, self.upper)
                candidates[stalled] = forced
        return candidates.tolist()


class CategoricalParameter(Parameter):
    """Unordered categorical knob."""

    def __init__(self, name: str, choices: Sequence, default=None) -> None:
        choices_list: List = list(choices)
        if len(choices_list) < 2:
            raise ValueError(f"{name}: categorical parameters need >= 2 choices")
        if len(set(map(repr, choices_list))) != len(choices_list):
            raise ValueError(f"{name}: duplicate choices")
        self.choices = choices_list
        if default is None:
            default = choices_list[0]
        super().__init__(name, default)
        self.validate(self.default)

    def validate(self, value) -> None:
        if value not in self.choices:
            raise ValueError(f"{self.name}: {value!r} not in {self.choices!r}")

    def sample(self, rng: np.random.Generator):
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def encode(self, value) -> float:
        self.validate(value)
        index = self.choices.index(value)
        # Centre of the bucket assigned to this category.
        return (index + 0.5) / len(self.choices)

    def decode(self, unit: float):
        unit = min(max(float(unit), 0.0), 1.0)
        index = min(int(unit * len(self.choices)), len(self.choices) - 1)
        return self.choices[index]

    def neighbour(self, value, rng: np.random.Generator, scale: float = 0.2):
        self.validate(value)
        others = [c for c in self.choices if c != value]
        return others[int(rng.integers(0, len(others)))]

    # -- columnar --------------------------------------------------------
    def _index_of(self, value) -> int:
        try:
            return self.choices.index(value)
        except ValueError:
            raise ValueError(f"{self.name}: {value!r} not in {self.choices!r}")

    def encode_array(self, values: Sequence) -> np.ndarray:
        indices = np.array([self._index_of(v) for v in values], dtype=float)
        return (indices + 0.5) / len(self.choices)

    def decode_array(self, units: np.ndarray) -> List:
        units = np.clip(np.asarray(units, dtype=float), 0.0, 1.0)
        indices = np.minimum(
            (units * len(self.choices)).astype(np.int64), len(self.choices) - 1
        )
        return [self.choices[i] for i in indices.tolist()]

    def sample_array(self, n: int, rng: np.random.Generator) -> List:
        indices = rng.integers(0, len(self.choices), size=n)
        return [self.choices[i] for i in indices.tolist()]

    def neighbour_array(
        self, value, n: int, rng: np.random.Generator, scale: float = 0.2
    ) -> List:
        self.validate(value)
        others = [c for c in self.choices if c != value]
        indices = rng.integers(0, len(others), size=n)
        return [others[i] for i in indices.tolist()]


class BooleanParameter(CategoricalParameter):
    """Boolean knob, encoded as a two-choice categorical."""

    def __init__(self, name: str, default: bool = False) -> None:
        super().__init__(name, choices=[False, True], default=bool(default))

    def sample(self, rng: np.random.Generator) -> bool:
        return bool(rng.integers(0, 2))

"""Run reports: a study's event log rendered as markdown or JSON.

Answers "where did the time go?" for one durable study: worker-utilization
timeline, wave cadence, queue-wait and duration quantiles, speculation
efficacy, crash/retry budget consumption and per-region breakdowns — all
derived offline from :meth:`repro.core.eventlog.EventLog.replay`, so any
log a study ever wrote is reportable without re-running anything.

The report's ``counters`` block uses the exact instrument names the live
:class:`~repro.obs.metrics.MetricsRegistry` increments, so an offline
replay and a live registry of the same run agree field by field (guarded by
``tests/obs/test_report_roundtrip.py``).

Rendered by the CLI: ``python -m repro.obs report <eventlog>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.tracing import Span, spans_from_events

#: Quantiles reported for wait/duration distributions.
_QUANTILES = (0.50, 0.90, 0.99)


def _quantiles(values: Sequence[float]) -> Dict[str, float]:
    if not values:
        return {}
    arr = np.asarray(values, dtype=np.float64)
    out = {"mean": float(arr.mean()), "max": float(arr.max())}
    for q in _QUANTILES:
        out[f"p{int(q * 100)}"] = float(np.quantile(arr, q))
    return out


@dataclass
class RunReport:
    """Aggregated view of one study's event log."""

    counters: Dict[str, float] = field(default_factory=dict)
    failures_by_fault: Dict[str, int] = field(default_factory=dict)
    queue_wait_hours: Dict[str, float] = field(default_factory=dict)
    duration_hours: Dict[str, float] = field(default_factory=dict)
    waves: Dict[str, float] = field(default_factory=dict)
    speculation: Dict[str, float] = field(default_factory=dict)
    retries: Dict[str, float] = field(default_factory=dict)
    regions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    utilization: Dict[str, object] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)
    makespan_hours: float = 0.0
    n_workers: int = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_events(cls, events: Sequence[Dict], n_bins: int = 24) -> "RunReport":
        """Build the report from a replayed event log."""
        report = cls()
        spans = spans_from_events(events)
        header = events[0] if events else {}
        if header.get("kind") == "open":
            report.provenance = {
                "git_sha": header.get("git_sha"),
                "generated_at": header.get("generated_at"),
                "version": header.get("version"),
            }

        kinds = [event.get("kind") for event in events]
        samples = [event for event in events if event.get("kind") == "sample"]
        report.counters = {
            "engine.items.submitted": float(kinds.count("submit")),
            "engine.items.retried": float(kinds.count("retry")),
            "engine.items.speculated": float(kinds.count("speculate")),
            "engine.items.completed": float(kinds.count("complete")),
            "engine.items.failed": float(kinds.count("fail")),
            "engine.items.cancelled": float(kinds.count("cancel")),
            "engine.samples.landed": float(len(samples)),
            "engine.samples.crashed": float(
                sum(1 for event in samples if event.get("crashed"))
            ),
        }
        for event in events:
            if event.get("kind") == "fail":
                fault = str(event.get("fault"))
                report.failures_by_fault[fault] = (
                    report.failures_by_fault.get(fault, 0) + 1
                )

        closed = [span for span in spans if span.end is not None]
        executed = [span for span in closed if span.outcome == "complete"]
        report.queue_wait_hours = _quantiles([span.wait_hours for span in closed])
        report.duration_hours = _quantiles(
            [span.duration_hours for span in executed if span.duration_hours]
        )

        finish_events = [e for e in events if e.get("kind") == "finish"]
        if finish_events:
            report.makespan_hours = float(finish_events[-1]["wall_clock_hours"])
        elif executed:
            report.makespan_hours = max(span.end for span in executed)  # type: ignore[type-var, arg-type]
        report._build_waves(events)
        report._build_speculation(events, closed)
        report._build_retries(events)
        report._build_regions(events, closed)
        report._build_utilization(closed, n_bins)
        return report

    def _build_waves(self, events: Sequence[Dict]) -> None:
        """Wave cadence: completions grouped by identical simulated instant."""
        instants = sorted(
            {float(e["t"]) for e in events if e.get("kind") == "complete"}
        )
        self.waves = {"n_waves": float(len(instants))}
        if len(instants) >= 2:
            gaps = np.diff(np.asarray(instants))
            self.waves.update(
                {
                    "mean_gap_hours": float(gaps.mean()),
                    "max_gap_hours": float(gaps.max()),
                }
            )

    def _build_speculation(self, events: Sequence[Dict], closed: List[Span]) -> None:
        launched = sum(1 for e in events if e.get("kind") == "speculate")
        if not launched:
            return
        speculative = [span for span in closed if span.kind == "speculative"]
        wins = sum(1 for span in speculative if span.outcome == "complete")
        self.speculation = {
            "n_duplicates": float(launched),
            "n_wins": float(wins),
            "n_losses": float(
                sum(1 for span in speculative if span.outcome == "cancel")
            ),
            "n_duplicate_failures": float(
                sum(1 for span in speculative if span.outcome == "fail")
            ),
            "win_rate": wins / launched,
        }

    def _build_retries(self, events: Sequence[Dict]) -> None:
        attempts = [
            int(e.get("attempt", 1)) for e in events if e.get("kind") == "retry"
        ]
        if not attempts:
            return
        self.retries = {
            "n_retries": float(len(attempts)),
            "max_attempt": float(max(attempts)),
            "n_exhausted": self.counters.get("engine.samples.crashed", 0.0),
        }

    def _build_regions(self, events: Sequence[Dict], closed: List[Span]) -> None:
        """Per-region submission counts and delivered busy hours."""
        region_of_item: Dict[int, str] = {}
        for event in events:
            if event.get("kind") in ("submit", "retry", "speculate"):
                region = event.get("region")
                if region is not None:
                    region_of_item[int(event["item"])] = str(region)
        if not region_of_item:
            return  # pre-observability log without region fields
        for region in sorted(set(region_of_item.values())):
            self.regions[region] = {"n_items": 0.0, "busy_hours": 0.0}
        for event in events:
            if event.get("kind") in ("submit", "retry", "speculate"):
                region = region_of_item.get(int(event["item"]))
                if region is not None:
                    self.regions[region]["n_items"] += 1
        for span in closed:
            region = region_of_item.get(span.item)
            if region is not None and span.duration_hours:
                self.regions[region]["busy_hours"] += span.duration_hours

    def _build_utilization(self, closed: List[Span], n_bins: int) -> None:
        """Worker-utilization timeline: busy fraction of the fleet per bin."""
        workers = {span.worker for span in closed}
        self.n_workers = len(workers)
        horizon = self.makespan_hours
        if not closed or horizon <= 0 or n_bins < 1:
            return
        edges = np.linspace(0.0, horizon, n_bins + 1)
        busy = np.zeros(n_bins, dtype=np.float64)
        for span in closed:
            lo = np.clip(span.start, 0.0, horizon)
            hi = np.clip(span.end, 0.0, horizon)
            overlap = np.minimum(edges[1:], hi) - np.maximum(edges[:-1], lo)
            busy += np.maximum(overlap, 0.0)
        bin_width = horizon / n_bins
        fractions = busy / (bin_width * max(self.n_workers, 1))
        self.utilization = {
            "bin_hours": bin_width,
            "busy_fraction": [round(float(f), 4) for f in fractions],
            "mean_busy_fraction": round(float(fractions.mean()), 4),
        }

    # -- rendering ------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "provenance": self.provenance,
            "makespan_hours": self.makespan_hours,
            "n_workers": self.n_workers,
            "counters": dict(sorted(self.counters.items())),
            "failures_by_fault": dict(sorted(self.failures_by_fault.items())),
            "queue_wait_hours": self.queue_wait_hours,
            "duration_hours": self.duration_hours,
            "waves": self.waves,
            "speculation": self.speculation,
            "retries": self.retries,
            "regions": self.regions,
            "utilization": self.utilization,
        }

    def to_markdown(self) -> str:
        """Human-readable study report (GitHub-flavoured markdown)."""
        lines: List[str] = ["# Study run report", ""]
        sha = self.provenance.get("git_sha")
        if sha:
            lines.append(
                f"Provenance: `{str(sha)[:12]}` at {self.provenance.get('generated_at')}"
            )
            lines.append("")
        lines.append(
            f"Makespan **{self.makespan_hours:.2f} simulated hours** across "
            f"**{self.n_workers} workers**."
        )
        lines.append("")

        lines.append("## Lifecycle counters")
        lines.append("")
        lines.append("| counter | value |")
        lines.append("| --- | ---: |")
        for name, value in sorted(self.counters.items()):
            lines.append(f"| `{name}` | {value:g} |")
        for fault, count in sorted(self.failures_by_fault.items()):
            lines.append(f"| `engine.failures{{fault={fault}}}` | {count} |")
        lines.append("")

        for title, stats in (
            ("Queue wait (hours)", self.queue_wait_hours),
            ("Run duration (hours)", self.duration_hours),
            ("Wave cadence", self.waves),
            ("Speculation efficacy", self.speculation),
            ("Crash/retry budget", self.retries),
        ):
            if not stats:
                continue
            lines.append(f"## {title}")
            lines.append("")
            lines.append("| statistic | value |")
            lines.append("| --- | ---: |")
            for key, value in stats.items():
                lines.append(f"| {key} | {value:.4g} |")
            lines.append("")

        if self.regions:
            lines.append("## Per-region breakdown")
            lines.append("")
            lines.append("| region | items | busy hours |")
            lines.append("| --- | ---: | ---: |")
            for region, stats in sorted(self.regions.items()):
                lines.append(
                    f"| {region} | {stats['n_items']:g} | {stats['busy_hours']:.2f} |"
                )
            lines.append("")

        if self.utilization:
            lines.append("## Worker-utilization timeline")
            lines.append("")
            fractions: List[float] = self.utilization["busy_fraction"]  # type: ignore[assignment]
            lines.append(
                f"Mean busy fraction {self.utilization['mean_busy_fraction']:.2%} "
                f"over {len(fractions)} bins of "
                f"{self.utilization['bin_hours']:.2f} h:"
            )
            lines.append("")
            bars = "".join(_spark(f) for f in fractions)
            lines.append(f"`{bars}`")
            lines.append("")
        return "\n".join(lines)


_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def _spark(fraction: float) -> str:
    """One sparkline character for a busy fraction in [0, 1]."""
    idx = int(round(min(max(fraction, 0.0), 1.0) * (len(_SPARK_LEVELS) - 1)))
    return _SPARK_LEVELS[idx]


def report_from_log(path: str, n_bins: int = 24) -> RunReport:
    """Replay an event log from disk and build its :class:`RunReport`."""
    from repro.core.eventlog import EventLog

    return RunReport.from_events(EventLog.replay(path), n_bins=n_bins)


__all__ = ["RunReport", "report_from_log"]

"""Metrics registry: counters, gauges and bounded histograms by name.

Built on the event loop's slotted telemetry primitives
(:class:`~repro.core.telemetry_slots.RingBuffer` /
:class:`~repro.core.telemetry_slots.SpillSummary`), so a registry wired into
a million-sample study stays fleet-sized: every histogram holds a bounded
recent window plus O(1) all-time aggregates, and counters/gauges are single
slots.

Instruments are addressed by ``name`` plus optional labels; the same
``(name, labels)`` pair always returns the same instrument, so call sites
never hold references across checkpoints (the registry itself pickles, and
is captured by :meth:`repro.core.tuner.TuningLoop.checkpoint` as part of the
engine graph).

Determinism: nothing here draws entropy, and host time enters only through
the injectable :mod:`repro.obs.clock` shim — with the default
:class:`~repro.obs.clock.NullClock`, :meth:`MetricsRegistry.timer` records
nothing and the registry's contents are a pure function of the observed
sequence.  Instrumented call sites in the core are all guarded by
``if metrics is not None`` and only ever *add* to registry state, so an
attached registry is trajectory-inert (guarded by
``tests/obs/test_obs_equivalence.py``, the same discipline as
``fault_model="none"``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.core.telemetry_slots import RingBuffer, SpillSummary
from repro.obs.clock import Clock, NullClock


def _key(name: str, labels: Dict[str, object]) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def base_name(key: str) -> str:
    """Instrument name with the label suffix stripped."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


class Counter:
    """Monotonically increasing tally (accepts float increments, e.g. hours)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        self.value += amount


class Gauge:
    """Last-written level (queue depths, reservation counts)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Bounded distribution: recent window + all-time spill aggregates."""

    def __init__(self, window: int = 1024) -> None:
        self.ring = RingBuffer(window)

    def observe(self, value: float) -> None:
        self.ring.append(value)

    @property
    def count(self) -> int:
        return self.ring.n_appended

    def quantile(self, q: float) -> float:
        """Quantile estimate over the recent window."""
        return self.ring.quantile(q)

    def all_time(self) -> SpillSummary:
        """Aggregates over everything ever observed (spilled + buffered)."""
        combined = SpillSummary()
        combined.merge(self.ring.spilled)
        for value in self.ring.as_array():
            combined.observe(float(value))
        return combined

    def as_dict(self) -> Dict[str, object]:
        out = self.all_time().as_dict()
        if len(self.ring):
            out["p50"] = self.quantile(0.50)
            out["p90"] = self.quantile(0.90)
            out["p99"] = self.quantile(0.99)
        return out


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms.

    ``window`` bounds every histogram's recent-value ring; ``clock`` is the
    injectable host-time source used by :meth:`timer` (default: the
    deterministic :class:`~repro.obs.clock.NullClock`, under which timers
    are no-ops).
    """

    def __init__(self, window: int = 1024, clock: Optional[Clock] = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.clock: Clock = clock if clock is not None else NullClock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments ----------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(self.window)
        return instrument

    # -- hot-path conveniences ------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        self.counter(name, **labels).inc(amount)

    def set(self, name: str, value: float, **labels: object) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.histogram(name, **labels).observe(value)

    @contextmanager
    def timer(self, name: str, **labels: object) -> Iterator[None]:
        """Time a block in host seconds — a no-op under the NullClock."""
        if not self.clock.enabled:
            yield
            return
        started = self.clock.now()
        try:
            yield
        finally:
            self.observe(name, self.clock.now() - started, **labels)

    # -- rollups & export -----------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of a counter (0.0 if it was never touched)."""
        instrument = self._counters.get(_key(name, labels))
        return 0.0 if instrument is None else instrument.value

    def rollup(self, name: str) -> SpillSummary:
        """All-time aggregates of ``name`` merged across every label set."""
        combined = SpillSummary()
        for key, histogram in self._histograms.items():
            if base_name(key) == name:
                combined.merge(histogram.all_time())
        return combined

    def labelled(self, name: str) -> Dict[str, float]:
        """Counter values of ``name`` keyed by full labelled key, sorted."""
        return {
            key: counter.value
            for key, counter in sorted(self._counters.items())
            if base_name(key) == name
        }

    def as_dict(self) -> Dict[str, object]:
        """Deterministic snapshot of every instrument (sorted keys)."""
        return {
            "counters": {
                key: self._counters[key].value for key in sorted(self._counters)
            },
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].as_dict()
                for key in sorted(self._histograms)
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


__all__: Tuple[str, ...] = (
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "base_name",
)

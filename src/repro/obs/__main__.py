"""CLI: render run reports and traces from durable study event logs.

Usage::

    python -m repro.obs report <eventlog> [--markdown PATH] [--json PATH]
                               [--trace PATH] [--bins N]

With no output flag the markdown report prints to stdout.  ``--trace``
exports the span set as Chrome trace-event JSON (open in Perfetto or
``chrome://tracing``).  Exit codes: 0 on success, 2 on a missing/corrupt
log (the replay validator's error is printed verbatim).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.eventlog import EventLog, EventLogError
from repro.obs.report import RunReport
from repro.obs.tracing import spans_from_events, to_chrome_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability tooling over durable study event logs",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="render a study run report")
    report.add_argument("eventlog", help="path to the study's JSONL event log")
    report.add_argument("--markdown", help="write the markdown report here")
    report.add_argument("--json", dest="json_path", help="write the JSON report here")
    report.add_argument("--trace", help="write Chrome trace-event JSON here")
    report.add_argument(
        "--bins", type=int, default=24, help="utilization timeline bins (default 24)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        events = EventLog.replay(args.eventlog)
    except EventLogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = RunReport.from_events(events, n_bins=args.bins)
    wrote_something = False
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        wrote_something = True
    if args.trace:
        trace = to_chrome_trace(spans_from_events(events))
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump(trace, fh)
            fh.write("\n")
        wrote_something = True
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(report.to_markdown() + "\n")
        wrote_something = True
    if not wrote_something:
        print(report.to_markdown())
    return 0


if __name__ == "__main__":
    sys.exit(main())

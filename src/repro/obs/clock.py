"""The single sanctioned host-clock shim of the observability layer.

The determinism contract forbids wall-clock reads in core paths (detlint
DET002): simulated hours are the only clock a trajectory may depend on.
Observability still legitimately wants *host* latencies — how long an
``ask()`` or a surrogate refit really took — so this module provides the one
injectable seam through which such reads may happen:

* :class:`NullClock` — the default everywhere.  Never touches the host
  clock; timers built on it record nothing, so a registry wired into a
  study is deterministic by construction.
* :class:`HostClock` — opt-in, for benchmarks and interactive profiling.
  Reads ``time.perf_counter`` behind the repository's only justified
  DET002 pragma outside ``benchmarks/``.

detlint enforces the "single shim" property structurally: inside
``repro/obs/`` a DET002 allow-pragma is honoured *only* in this file
(:meth:`repro.analysis.rules.WallClockInCorePath.allows_pragma`), so a
wall-clock read smuggled into any other obs module fires even when
annotated.  Host time measured through the shim must never feed back into
scheduling, placement or sampling decisions — it is telemetry, not input.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Injectable time source for host-latency instrumentation."""

    #: Whether :meth:`now` returns real host time.  Timers skip their
    #: observation entirely when this is False, so the disabled path does
    #: not pollute histograms with zeros.
    enabled: bool

    def now(self) -> float:
        """Current time in seconds (monotonic; origin unspecified)."""
        ...


class NullClock:
    """Deterministic default: never reads the host clock."""

    enabled = False

    def now(self) -> float:
        return 0.0


class HostClock:
    """Opt-in real host clock for overhead benchmarks and profiling."""

    enabled = True

    def now(self) -> float:
        # detlint: allow[DET002] -- the observability layer's single sanctioned host-clock read; telemetry only, never fed back into scheduling or sampling
        return time.perf_counter()

"""Span tracing over simulated time, exportable as Chrome trace-event JSON.

Every :class:`~repro.core.async_engine.WorkItem` lifecycle becomes one
:class:`Span`: submitted at the instant the orchestrator decided to run it,
started when its worker's queue drained, ended by a completion, failure or
cancellation.  Spans carry the item's kind (a regular run, a crash retry or
a speculative duplicate), its worker, and the configuration digest — enough
to reconstruct per-worker tracks of where the simulated time went.

Two equivalent sources:

* **live** — an engine built with ``tracer=TraceRecorder()`` records spans
  as events fire (bounded: beyond ``max_spans`` closed spans the oldest are
  dropped and counted, so tracing a million-sample run cannot page the
  process to death);
* **offline** — :func:`spans_from_events` rebuilds the identical spans from
  a replayed :class:`~repro.core.eventlog.EventLog`, so any durable study
  log is traceable after the fact.

:func:`to_chrome_trace` renders spans in the Chrome trace-event format
(``ph: "X"`` complete events, one track per worker) viewable in Perfetto or
``chrome://tracing``; one simulated hour maps to one second of trace time.

Determinism: span contents are a pure function of the event sequence; no
entropy, no wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

#: Trace time scale: one simulated hour renders as 1e6 trace microseconds
#: (= one second in the viewer), keeping multi-hundred-hour studies on a
#: legible axis.
MICROSECONDS_PER_HOUR = 1_000_000.0


@dataclass(slots=True)
class Span:
    """One work item's life on one worker, in simulated hours."""

    item: int
    worker: str
    kind: str  # "run" | "retry" | "speculative"
    submitted: float  # decision instant (orchestrator clock at submit)
    start: float  # worker queue drained; execution begins
    end: Optional[float] = None
    outcome: Optional[str] = None  # "complete" | "fail" | "cancel" | None (open)
    config: Optional[str] = None  # configuration digest
    value: Optional[float] = None
    fault: Optional[str] = None

    @property
    def wait_hours(self) -> float:
        """Queue wait: scheduled start minus submission decision."""
        return self.start - self.submitted

    @property
    def duration_hours(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        return {
            "item": self.item,
            "worker": self.worker,
            "kind": self.kind,
            "submitted": self.submitted,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
            "config": self.config,
            "value": self.value,
            "fault": self.fault,
        }


class TraceRecorder:
    """Live span collection with bounded memory.

    Open spans are keyed by item sequence (bounded by the in-flight set);
    closed spans accumulate up to ``max_spans``, after which the oldest are
    dropped and tallied in :attr:`n_dropped` — bounded memory must never
    silently masquerade as full coverage.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self._open: Dict[int, Span] = {}
        self._closed: List[Span] = []
        self.n_dropped = 0

    def begin(
        self,
        item: int,
        worker: str,
        kind: str,
        submitted: float,
        start: float,
        config: Optional[str] = None,
    ) -> None:
        self._open[item] = Span(
            item=item,
            worker=worker,
            kind=kind,
            submitted=submitted,
            start=start,
            config=config,
        )

    def end(
        self,
        item: int,
        end: float,
        outcome: str,
        value: Optional[float] = None,
        fault: Optional[str] = None,
    ) -> None:
        span = self._open.pop(item, None)
        if span is None:
            return  # item predates the recorder (e.g. attached mid-run)
        span.end = end
        span.outcome = outcome
        span.value = value
        span.fault = fault
        if len(self._closed) >= self.max_spans:
            self._closed.pop(0)
            self.n_dropped += 1
        self._closed.append(span)

    @property
    def n_open(self) -> int:
        return len(self._open)

    @property
    def n_closed(self) -> int:
        return len(self._closed)

    def spans(self) -> List[Span]:
        """Closed then still-open spans, ordered by (start, item)."""
        return sorted(
            list(self._closed) + list(self._open.values()),
            key=lambda span: (span.start, span.item),
        )


_SPAN_KIND_OF_EVENT = {"submit": "run", "retry": "retry", "speculate": "speculative"}


def spans_from_events(events: Iterable[Dict]) -> List[Span]:
    """Rebuild the span set from a replayed event log.

    Understands the engine's item-lifecycle records (``submit`` / ``retry``
    / ``speculate`` open a span; ``complete`` / ``fail`` / ``cancel`` close
    it).  Logs written before the observability release lack the
    ``submitted`` field and cancellation records; such spans fall back to
    ``submitted = start`` and stay open, so old logs still render.
    """
    open_spans: Dict[int, Span] = {}
    closed: List[Span] = []
    for event in events:
        kind = event.get("kind")
        span_kind = _SPAN_KIND_OF_EVENT.get(kind or "")
        if span_kind is not None:
            start = float(event["t"])
            open_spans[int(event["item"])] = Span(
                item=int(event["item"]),
                worker=str(event["worker"]),
                kind=span_kind,
                submitted=float(event.get("submitted", start)),
                start=start,
                config=event.get("config"),
            )
        elif kind in ("complete", "fail", "cancel"):
            span = open_spans.pop(int(event["item"]), None)
            if span is None:
                continue
            span.end = float(event["t"])
            span.outcome = "complete" if kind == "complete" else kind
            span.value = event.get("value")
            span.fault = event.get("fault")
            closed.append(span)
    return sorted(
        closed + list(open_spans.values()), key=lambda span: (span.start, span.item)
    )


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON object (Perfetto-viewable).

    One ``pid`` (the study), one ``tid`` per worker (named via ``M``
    metadata events, ordered by first appearance in span order), and one
    ``ph: "X"`` complete event per *closed* span; open spans are skipped
    (they have no duration yet) but reported in ``otherData``.
    """
    spans = list(spans)
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = []
    n_open = 0
    for span in spans:
        if span.worker not in tids:
            tid = tids[span.worker] = len(tids)
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": span.worker},
                }
            )
        if span.end is None:
            n_open += 1
            continue
        args: Dict[str, object] = {
            "item": span.item,
            "outcome": span.outcome,
            "wait_hours": span.wait_hours,
        }
        if span.config is not None:
            args["config"] = span.config
        if span.value is not None:
            args["value"] = span.value
        if span.fault is not None:
            args["fault"] = span.fault
        trace_events.append(
            {
                "name": f"{span.kind}:{span.config or span.item}",
                "cat": f"{span.kind},{span.outcome}",
                "ph": "X",
                "pid": 0,
                "tid": tids[span.worker],
                "ts": span.start * MICROSECONDS_PER_HOUR,
                "dur": (span.end - span.start) * MICROSECONDS_PER_HOUR,
                "args": args,
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "time_unit": "1 simulated hour = 1e6 trace microseconds",
            "n_spans": len(spans) - n_open,
            "n_open_spans": n_open,
            "n_workers": len(tids),
        },
    }

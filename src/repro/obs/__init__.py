"""Observability over the discrete-event tuning stack.

Three layers, all off by default and trajectory-inert when enabled:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters, gauges
  and bounded histograms, threaded through the event loop, engine,
  scheduler and optimizers via ``metrics=`` parameters;
* :mod:`repro.obs.tracing` — work-item lifecycle spans over simulated time
  (live via ``tracer=TraceRecorder()``, or offline from any replayed event
  log), exportable as Chrome trace-event JSON;
* :mod:`repro.obs.report` — study run reports (markdown/JSON) rendered by
  ``python -m repro.obs report <eventlog>``.

Host time enters only through the injectable :mod:`repro.obs.clock` shim;
the default :class:`NullClock` never reads the wall clock.
"""

from repro.obs.clock import Clock, HostClock, NullClock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import RunReport, report_from_log
from repro.obs.tracing import (
    Span,
    TraceRecorder,
    spans_from_events,
    to_chrome_trace,
)

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "HostClock",
    "MetricsRegistry",
    "NullClock",
    "RunReport",
    "Span",
    "TraceRecorder",
    "report_from_log",
    "spans_from_events",
    "to_chrome_trace",
]

"""Covariance kernels for Gaussian-process regression.

Only the kernels required by the OtterTune-style Gaussian-process optimizer
(§6.6 of the paper) are provided: RBF and Matérn 5/2 over the unit-cube
encoding of configurations, plus constant scaling and white noise.
"""

from __future__ import annotations

import numpy as np


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of ``A`` and ``B``."""
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    a2 = np.sum(A**2, axis=1)[:, None]
    b2 = np.sum(B**2, axis=1)[None, :]
    sq = a2 + b2 - 2.0 * A @ B.T
    return np.maximum(sq, 0.0)


class Kernel:
    """Base kernel with sum/product composition operators."""

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def diag(self, A: np.ndarray) -> np.ndarray:
        return np.diag(self(A, A))

    def __add__(self, other: "Kernel") -> "Kernel":
        return _SumKernel(self, other)

    def __mul__(self, other: "Kernel") -> "Kernel":
        return _ProductKernel(self, other)


class _SumKernel(Kernel):
    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return self.left(A, B) + self.right(A, B)


class _ProductKernel(Kernel):
    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return self.left(A, B) * self.right(A, B)


class ConstantKernel(Kernel):
    """Constant (signal-variance) kernel."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError("constant kernel value must be positive")
        self.value = float(value)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        return np.full((A.shape[0], B.shape[0]), self.value, dtype=float)


class WhiteKernel(Kernel):
    """White-noise kernel; contributes only on the diagonal of K(X, X)."""

    def __init__(self, noise: float = 1e-6) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.noise = float(noise)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        if A.shape[0] == B.shape[0] and A is B:
            return self.noise * np.eye(A.shape[0])
        out = np.zeros((A.shape[0], B.shape[0]), dtype=float)
        if A.shape == B.shape and np.array_equal(A, B):
            np.fill_diagonal(out, self.noise)
        return out


class RBFKernel(Kernel):
    """Squared-exponential kernel with a shared length scale."""

    def __init__(self, length_scale: float = 1.0) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(A), np.atleast_2d(B))
        return np.exp(-0.5 * sq / self.length_scale**2)


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness nu = 5/2, the standard BO choice."""

    def __init__(self, length_scale: float = 1.0) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(A), np.atleast_2d(B))
        d = np.sqrt(sq) / self.length_scale
        sqrt5_d = np.sqrt(5.0) * d
        return (1.0 + sqrt5_d + 5.0 / 3.0 * d**2) * np.exp(-sqrt5_d)

"""Covariance kernels for Gaussian-process regression.

Only the kernels required by the OtterTune-style Gaussian-process optimizer
(§6.6 of the paper) are provided: RBF and Matérn 5/2 over the unit-cube
encoding of configurations, plus constant scaling and white noise.
"""

from __future__ import annotations

import numpy as np


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of ``A`` and ``B``."""
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    a2 = np.sum(A**2, axis=1)[:, None]
    b2 = np.sum(B**2, axis=1)[None, :]
    sq = a2 + b2 - 2.0 * A @ B.T
    return np.maximum(sq, 0.0)


class Kernel:
    """Base kernel with sum/product composition operators.

    ``diag(A)`` returns the diagonal of ``K(A, A)`` without materialising
    the full m×m matrix; every provided kernel computes it in O(m).  The GP
    posterior-variance path calls ``diag`` instead of ``np.diag(k(X, X))``.
    """

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def diag(self, A: np.ndarray) -> np.ndarray:
        """Per-row self-covariance ``k(x, x)``.

        The fallback evaluates one 1×1 kernel per row — O(m·d) work and O(m)
        memory, instead of building the full m×m matrix for its diagonal.
        Stationary kernels override this with a constant vector.
        """
        A = np.atleast_2d(A)
        return np.array(
            [float(self(row[None, :], row[None, :])[0, 0]) for row in A],
            dtype=float,
        )

    def __add__(self, other: "Kernel") -> "Kernel":
        return _SumKernel(self, other)

    def __mul__(self, other: "Kernel") -> "Kernel":
        return _ProductKernel(self, other)


class _SumKernel(Kernel):
    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return self.left(A, B) + self.right(A, B)

    def diag(self, A: np.ndarray) -> np.ndarray:
        return self.left.diag(A) + self.right.diag(A)


class _ProductKernel(Kernel):
    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return self.left(A, B) * self.right(A, B)

    def diag(self, A: np.ndarray) -> np.ndarray:
        return self.left.diag(A) * self.right.diag(A)


class ConstantKernel(Kernel):
    """Constant (signal-variance) kernel."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError("constant kernel value must be positive")
        self.value = float(value)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        return np.full((A.shape[0], B.shape[0]), self.value, dtype=float)

    def diag(self, A: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(A).shape[0], self.value, dtype=float)


class WhiteKernel(Kernel):
    """White-noise kernel; contributes only on the self-covariance.

    ``__call__`` treats the two arguments as the same sample set only when
    they are the *same object* (which is how the GP fit path calls it); any
    other pair is cross-covariance and gets zeros.  There is deliberately no
    element-wise equality fallback — detecting equal-but-distinct arrays
    cost a full O(n·d) comparison on every call.  Callers that want the
    noise on the diagonal of a self-covariance should pass the identical
    array object, or use :meth:`diag`.
    """

    def __init__(self, noise: float = 1e-6) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.noise = float(noise)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        same = A is B
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        if same:
            return self.noise * np.eye(A.shape[0])
        return np.zeros((A.shape[0], B.shape[0]), dtype=float)

    def diag(self, A: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(A).shape[0], self.noise, dtype=float)


class RBFKernel(Kernel):
    """Squared-exponential kernel with a shared length scale."""

    def __init__(self, length_scale: float = 1.0) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(A), np.atleast_2d(B))
        return np.exp(-0.5 * sq / self.length_scale**2)

    def diag(self, A: np.ndarray) -> np.ndarray:
        return np.ones(np.atleast_2d(A).shape[0], dtype=float)


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness nu = 5/2, the standard BO choice."""

    def __init__(self, length_scale: float = 1.0) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(A), np.atleast_2d(B))
        d = np.sqrt(sq) / self.length_scale
        sqrt5_d = np.sqrt(5.0) * d
        return (1.0 + sqrt5_d + 5.0 / 3.0 * d**2) * np.exp(-sqrt5_d)

    def diag(self, A: np.ndarray) -> np.ndarray:
        return np.ones(np.atleast_2d(A).shape[0], dtype=float)

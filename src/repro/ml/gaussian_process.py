"""Gaussian-process regression with exact inference.

Used by :class:`repro.optimizers.gp.GaussianProcessOptimizer`, the
OtterTune-style optimizer the paper swaps in for §6.6 to show TUNA is
optimizer-agnostic.  Inference is the textbook Cholesky formulation
(Rasmussen & Williams, Algorithm 2.1) with observations standardised
internally for numerical stability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.kernels import Kernel, Matern52Kernel


class GaussianProcessRegressor:
    """Exact GP regression.

    Parameters
    ----------
    kernel:
        Covariance kernel.  Defaults to Matérn 5/2 with unit length scale,
        appropriate for inputs encoded in the unit cube.
    noise:
        Observation-noise variance added to the diagonal (jitter included).
    normalize_y:
        If true (default) targets are standardised before fitting and the
        posterior is transformed back, which avoids degenerate posteriors for
        throughput values in the thousands.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-6,
        normalize_y: bool = True,
    ) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel if kernel is not None else Matern52Kernel(length_scale=0.5)
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._L: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def fit(self, X, y) -> "GaussianProcessRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on zero samples")

        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            std = float(np.std(y))
            self._y_std = std if std > 0 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        y_norm = (y - self._y_mean) / self._y_std

        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise + 1e-10
        L = np.linalg.cholesky(K)
        alpha = np.linalg.solve(L.T, np.linalg.solve(L, y_norm))

        self._X = X
        self._L = L
        self._alpha = alpha
        return self

    def _check_fitted(self) -> None:
        if self._X is None or self._alpha is None or self._L is None:
            raise RuntimeError("GaussianProcessRegressor must be fit before predict")

    def predict(self, X, return_std: bool = False):
        """Posterior mean (and optionally standard deviation) at ``X``."""
        self._check_fitted()
        assert self._X is not None and self._alpha is not None and self._L is not None
        X = np.atleast_2d(np.asarray(X, dtype=float))
        K_star = self.kernel(X, self._X)
        mean_norm = K_star @ self._alpha
        mean = mean_norm * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = np.linalg.solve(self._L, K_star.T)
        # kernel.diag avoids materialising the m×m prior covariance matrix.
        prior_var = self.kernel.diag(X)
        var_norm = np.maximum(prior_var - np.sum(v**2, axis=0), 1e-12)
        std = np.sqrt(var_norm) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the (standardised) training targets."""
        self._check_fitted()
        assert self._X is not None and self._alpha is not None and self._L is not None
        n = self._X.shape[0]
        # alpha = K^-1 y_norm and K = L L^T, so y_norm = L (L^T alpha).
        y_norm = self._L @ (self._L.T @ self._alpha)
        # -0.5 y^T alpha - sum(log diag L) - n/2 log(2 pi)
        data_fit = -0.5 * float(y_norm @ self._alpha)
        complexity = -float(np.sum(np.log(np.diag(self._L))))
        return data_fit + complexity - 0.5 * n * np.log(2.0 * np.pi)

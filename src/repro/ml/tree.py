"""CART regression tree used as the building block of the random forest.

The implementation is a plain variance-reduction CART over dense ``numpy``
arrays.  It is intentionally small but supports the features the surrogate and
noise-adjuster models need: per-split feature subsampling (``max_features``),
depth and leaf-size limits, and per-leaf variance estimates so the forest can
expose predictive uncertainty to the Bayesian optimizer.

Inference layout
----------------
Fitting builds a conventional pointer tree of :class:`_Node` objects, which is
then *compiled* into a flat structure-of-arrays representation::

    feature[i]    split feature of node i          (0 for leaves)
    threshold[i]  split threshold of node i        (nan for leaves)
    left[i]       index of the left child, -1 for leaves
    right[i]      index of the right child, -1 for leaves
    value[i]      mean of the training targets routed to node i
    variance[i]   variance of the training targets routed to node i
    n_samples[i]  number of training rows routed to node i

Batch prediction advances *all* query rows level-by-level with NumPy fancy
indexing (``predict`` / ``predict_with_variance``): per loop iteration every
row still inside the tree takes one step, so the Python-level loop runs at
most ``depth`` times regardless of the number of rows.  The legacy per-row
pointer walk is kept as ``predict_pointer`` / ``predict_with_variance_pointer``
for equivalence tests and as the benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A single tree node; leaves keep the training targets' mean/variance."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0
    variance: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class FlatTree:
    """Structure-of-arrays compilation of a fitted pointer tree."""

    feature: np.ndarray  # (n_nodes,) intp, 0 for leaves
    threshold: np.ndarray  # (n_nodes,) float, nan for leaves
    left: np.ndarray  # (n_nodes,) intp, -1 for leaves
    right: np.ndarray  # (n_nodes,) intp, -1 for leaves
    value: np.ndarray  # (n_nodes,) float
    variance: np.ndarray  # (n_nodes,) float
    n_samples: np.ndarray  # (n_nodes,) intp

    @property
    def n_nodes(self) -> int:
        return self.left.shape[0]

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Node index of the leaf each row of ``X`` lands in (vectorized)."""
        idx = np.zeros(X.shape[0], dtype=np.intp)
        active = np.flatnonzero(self.left[idx] >= 0)
        while active.size:
            nodes = idx[active]
            go_left = X[active, self.feature[nodes]] <= self.threshold[nodes]
            idx[active] = np.where(go_left, self.left[nodes], self.right[nodes])
            active = active[self.left[idx[active]] >= 0]
        return idx


def _compile_tree(root: _Node) -> FlatTree:
    """Flatten a pointer tree into arrays (preorder node numbering)."""
    feature: list = []
    threshold: list = []
    left: list = []
    right: list = []
    value: list = []
    variance: list = []
    n_samples: list = []
    # (node, parent index, is_right_child); preorder via an explicit stack so
    # deep trees cannot hit the recursion limit.
    stack = [(root, -1, False)]
    while stack:
        node, parent, is_right = stack.pop()
        idx = len(feature)
        if parent >= 0:
            if is_right:
                right[parent] = idx
            else:
                left[parent] = idx
        if node.is_leaf:
            feature.append(0)
            threshold.append(np.nan)
        else:
            feature.append(node.feature)
            threshold.append(node.threshold)
        left.append(-1)
        right.append(-1)
        value.append(node.value)
        variance.append(node.variance)
        n_samples.append(node.n_samples)
        if not node.is_leaf:
            assert node.left is not None and node.right is not None
            stack.append((node.right, idx, True))
            stack.append((node.left, idx, False))
    return FlatTree(
        feature=np.asarray(feature, dtype=np.intp),
        threshold=np.asarray(threshold, dtype=float),
        left=np.asarray(left, dtype=np.intp),
        right=np.asarray(right, dtype=np.intp),
        value=np.asarray(value, dtype=float),
        variance=np.asarray(variance, dtype=float),
        n_samples=np.asarray(n_samples, dtype=np.intp),
    )


class DecisionTreeRegressor:
    """Regression tree minimising within-node variance (squared error).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or smaller
        than ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples that must end up in each child.
    max_features:
        Number of candidate features examined per split.  ``None`` uses all
        features, a float in (0, 1] uses that fraction, an int uses that count.
    seed:
        Seed for the feature-subsampling RNG.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_Node] = None
        self._flat: Optional[FlatTree] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ fit
    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        self._flat = _compile_tree(self._root)
        return self

    def _n_split_features(self) -> int:
        assert self.n_features_ is not None
        if self.max_features is None:
            return self.n_features_
        if isinstance(self.max_features, float):
            return max(1, int(round(self.max_features * self.n_features_)))
        return max(1, min(int(self.max_features), self.n_features_))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(
            value=float(np.mean(y)),
            variance=float(np.var(y)),
            n_samples=int(y.shape[0]),
        )
        if (
            y.shape[0] < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node

        split = self._best_split(X, y)
        if split is None:
            return node

        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n_samples, n_features = X.shape
        features = self._rng.choice(
            n_features, size=self._n_split_features(), replace=False
        )
        best_score = np.inf
        best: Optional[tuple] = None
        min_leaf = self.min_samples_leaf

        for feature in features:
            order = np.argsort(X[:, feature], kind="mergesort")
            xs = X[order, feature]
            ys = y[order]
            # Cumulative sums let us evaluate every split point in O(n).
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys**2)
            total_sum = csum[-1]
            total_sq = csum_sq[-1]

            # Candidate split after index i (left = [0..i], right = [i+1..]).
            idx = np.arange(min_leaf - 1, n_samples - min_leaf)
            if idx.size == 0:
                continue
            # Only consider indices where the feature value actually changes.
            distinct = xs[idx] < xs[idx + 1]
            idx = idx[distinct]
            if idx.size == 0:
                continue

            n_left = idx + 1
            n_right = n_samples - n_left
            sum_left = csum[idx]
            sq_left = csum_sq[idx]
            sum_right = total_sum - sum_left
            sq_right = total_sq - sq_left
            # Within-child sum of squared errors.
            sse_left = sq_left - sum_left**2 / n_left
            sse_right = sq_right - sum_right**2 / n_right
            scores = sse_left + sse_right

            local_best = int(np.argmin(scores))
            if scores[local_best] < best_score:
                best_score = float(scores[local_best])
                i = idx[local_best]
                threshold = float((xs[i] + xs[i + 1]) / 2.0)
                best = (int(feature), threshold)
        return best

    # -------------------------------------------------------------- predict
    @property
    def flat(self) -> FlatTree:
        """The flat-array compilation of the fitted tree."""
        if self._flat is None:
            raise RuntimeError("DecisionTreeRegressor must be fit before predict")
        return self._flat

    def _validate_predict_input(self, X) -> np.ndarray:
        if self._flat is None:
            raise RuntimeError("DecisionTreeRegressor must be fit before predict")
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("feature dimension mismatch in predict")
        return X

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict_input(X)
        return self.flat.value[self.flat.leaf_indices(X)]

    def predict_with_variance(self, X) -> tuple:
        """Return per-row leaf means and leaf variances."""
        X = self._validate_predict_input(X)
        leaves = self.flat.leaf_indices(X)
        return self.flat.value[leaves], self.flat.variance[leaves]

    # ------------------------------------------- legacy pointer-walk predict
    def _locate(self, row: np.ndarray) -> _Node:
        assert self._root is not None
        node = self._root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict_pointer(self, X) -> np.ndarray:
        """Per-row pointer-walk prediction (legacy reference implementation)."""
        X = self._validate_predict_input(X)
        return np.array([self._locate(row).value for row in X], dtype=float)

    def predict_with_variance_pointer(self, X) -> tuple:
        """Per-row pointer-walk means/variances (legacy reference)."""
        X = self._validate_predict_input(X)
        leaves = [self._locate(row) for row in X]
        means = np.array([leaf.value for leaf in leaves], dtype=float)
        variances = np.array([leaf.variance for leaf in leaves], dtype=float)
        return means, variances

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""

        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return _depth(self._root)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        if self._flat is None:
            raise RuntimeError("tree is not fitted")
        return int(np.count_nonzero(self._flat.left < 0))

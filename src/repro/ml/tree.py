"""CART regression tree used as the building block of the random forest.

The implementation is a plain variance-reduction CART over dense ``numpy``
arrays.  It is intentionally small but supports the features the surrogate and
noise-adjuster models need: per-split feature subsampling (``max_features``),
depth and leaf-size limits, per-leaf variance estimates so the forest can
expose predictive uncertainty to the Bayesian optimizer, and integer sample
weights so bootstrap resamples never materialise duplicated rows.

Training layout
---------------
``fit`` no longer recurses over pointer nodes: it delegates to the
level-synchronous builder in :mod:`repro.ml.treebuilder`, which presorts each
feature column once, grows a breadth-first frontier, and scores the best
variance-reduction split of every node at the current depth in one weighted
cumulative-sum pass per feature — emitting the flat node table below
directly.  The per-node reference build survives as ``fit_pointer``: a
level-ordered queue over :class:`_Node` objects that sorts every candidate
feature at every node, compiled to arrays by :func:`_compile_tree`.  Both
paths share the *same* canonical arithmetic (sequential weighted cumsums,
level-ordered feature-subsampling draws, first-minimum tie-breaking), so for
a fixed seed they produce **bit-for-bit identical** node tables — guarded by
``tests/ml/test_fit_equivalence.py``.

Inference layout
----------------
Fitted trees are represented as a flat structure-of-arrays::

    feature[i]    split feature of node i          (0 for leaves)
    threshold[i]  split threshold of node i        (nan for leaves)
    left[i]       index of the left child, -1 for leaves
    right[i]      index of the right child, -1 for leaves
    value[i]      weighted mean of the training targets routed to node i
    variance[i]   weighted variance of the training targets routed to node i
    n_samples[i]  number of training rows routed to node i (bootstrap weight)

Nodes are numbered in preorder (root first, left subtree before right), so
children always follow their parents.  Batch prediction advances *all* query
rows level-by-level with NumPy fancy indexing (``predict`` /
``predict_with_variance``); the legacy per-row walk is kept as
``predict_pointer`` / ``predict_with_variance_pointer`` for equivalence tests
and as the benchmark baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A single tree node; leaves keep the training targets' mean/variance."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0
    variance: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class FlatTree:
    """Structure-of-arrays representation of a fitted tree."""

    feature: np.ndarray  # (n_nodes,) intp, 0 for leaves
    threshold: np.ndarray  # (n_nodes,) float, nan for leaves
    left: np.ndarray  # (n_nodes,) intp, -1 for leaves
    right: np.ndarray  # (n_nodes,) intp, -1 for leaves
    value: np.ndarray  # (n_nodes,) float
    variance: np.ndarray  # (n_nodes,) float
    n_samples: np.ndarray  # (n_nodes,) intp

    @property
    def n_nodes(self) -> int:
        return self.left.shape[0]

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Node index of the leaf each row of ``X`` lands in (vectorized)."""
        idx = np.zeros(X.shape[0], dtype=np.intp)
        active = np.flatnonzero(self.left[idx] >= 0)
        while active.size:
            nodes = idx[active]
            go_left = X[active, self.feature[nodes]] <= self.threshold[nodes]
            idx[active] = np.where(go_left, self.left[nodes], self.right[nodes])
            active = active[self.left[idx[active]] >= 0]
        return idx


def _compile_tree(root: _Node) -> FlatTree:
    """Flatten a pointer tree into arrays (preorder node numbering)."""
    feature: list = []
    threshold: list = []
    left: list = []
    right: list = []
    value: list = []
    variance: list = []
    n_samples: list = []
    # (node, parent index, is_right_child); preorder via an explicit stack so
    # deep trees cannot hit the recursion limit.
    stack = [(root, -1, False)]
    while stack:
        node, parent, is_right = stack.pop()
        idx = len(feature)
        if parent >= 0:
            if is_right:
                right[parent] = idx
            else:
                left[parent] = idx
        if node.is_leaf:
            feature.append(0)
            threshold.append(np.nan)
        else:
            feature.append(node.feature)
            threshold.append(node.threshold)
        left.append(-1)
        right.append(-1)
        value.append(node.value)
        variance.append(node.variance)
        n_samples.append(node.n_samples)
        if not node.is_leaf:
            assert node.left is not None and node.right is not None
            stack.append((node.right, idx, True))
            stack.append((node.left, idx, False))
    return FlatTree(
        feature=np.asarray(feature, dtype=np.intp),
        threshold=np.asarray(threshold, dtype=float),
        left=np.asarray(left, dtype=np.intp),
        right=np.asarray(right, dtype=np.intp),
        value=np.asarray(value, dtype=float),
        variance=np.asarray(variance, dtype=float),
        n_samples=np.asarray(n_samples, dtype=np.intp),
    )


# --------------------------------------------------------------------------
# Canonical split-search arithmetic, shared (operation for operation) by the
# pointer reference below and the vectorized builder in
# :mod:`repro.ml.treebuilder`.  Every sum that feeds a split decision or a
# node statistic is a *sequential* cumulative sum over members in a defined
# order, never ``np.sum``/``np.mean`` (whose pairwise reduction rounds
# differently), so the two implementations agree bit for bit.
# --------------------------------------------------------------------------


def resolve_split_feature_count(max_features, n_features: int) -> int:
    """Number of candidate features examined per split."""
    if max_features is None:
        return n_features
    if isinstance(max_features, float):
        return max(1, int(round(max_features * n_features)))
    return max(1, min(int(max_features), n_features))


def draw_feature_mask(rng: np.random.Generator, n_features: int, k: int) -> np.ndarray:
    """Boolean mask of the ``k`` features examined at one node.

    One ``rng.random(n_features)`` block per expanding node, consumed in
    level (breadth-first) order: the vectorized builder draws the same
    numbers as one ``(n_nodes, n_features)`` matrix per tree and level, which
    is byte-identical stream consumption.  The ``k`` smallest keys win.
    """
    keys = rng.random(n_features)
    kth = np.partition(keys, k - 1)[k - 1]
    return keys <= kth


def weighted_node_stats(w: np.ndarray, wy: np.ndarray, wyy: np.ndarray) -> tuple:
    """Weighted count, mean and variance of a node's members.

    Members must be in ascending row order; the sums are sequential cumsums
    so the builder's padded-rectangle cumsums reproduce them exactly.
    """
    total_w = np.cumsum(w)[-1]
    total_wy = np.cumsum(wy)[-1]
    total_wyy = np.cumsum(wyy)[-1]
    mean = total_wy / total_w
    variance = np.maximum(total_wyy / total_w - mean * mean, 0.0)
    return total_w, mean, variance


def best_split_weighted(
    X: np.ndarray,
    members: np.ndarray,
    w: np.ndarray,
    wy: np.ndarray,
    wyy: np.ndarray,
    feature_mask: np.ndarray,
    min_samples_leaf: int,
) -> Optional[tuple]:
    """Best (feature, threshold) for one node, or ``None``.

    Candidate features are scanned in ascending index order with a strict
    ``<`` comparison, so ties go to the lowest feature index; within a
    feature, ``argmin`` keeps the first (lowest) candidate position.  The
    vectorized builder reproduces both tie-breaks.
    """
    best_score = np.inf
    best: Optional[tuple] = None
    for feature in np.flatnonzero(feature_mask):
        x_raw = X[members, feature]
        order = np.argsort(x_raw, kind="mergesort")
        xs = x_raw[order]
        ordered = members[order]
        cw = np.cumsum(w[ordered])
        cwy = np.cumsum(wy[ordered])
        cwyy = np.cumsum(wyy[ordered])
        total_w = cw[-1]
        total_wy = cwy[-1]
        total_wyy = cwyy[-1]
        left_w = cw[:-1]
        # Split after position p: feature value must change and both children
        # must keep at least ``min_samples_leaf`` (weighted) rows.
        valid = (
            (xs[:-1] < xs[1:])
            & (left_w >= min_samples_leaf)
            & (total_w - left_w >= min_samples_leaf)
        )
        pos = np.flatnonzero(valid)
        if pos.size == 0:
            continue
        sse_left = cwyy[pos] - cwy[pos] ** 2 / cw[pos]
        sse_right = (total_wyy - cwyy[pos]) - (total_wy - cwy[pos]) ** 2 / (
            total_w - cw[pos]
        )
        scores = sse_left + sse_right
        j = int(np.argmin(scores))
        if scores[j] < best_score:
            best_score = float(scores[j])
            p = int(pos[j])
            best = (int(feature), float((xs[p] + xs[p + 1]) / 2.0))
    return best


class DecisionTreeRegressor:
    """Regression tree minimising within-node variance (squared error).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or smaller
        than ``min_samples_split``.
    min_samples_split:
        Minimum (weighted) number of samples required to attempt a split.
    min_samples_leaf:
        Minimum (weighted) number of samples that must end up in each child.
    max_features:
        Number of candidate features examined per split.  ``None`` uses all
        features, a float in (0, 1] uses that fraction, an int uses that count.
    seed:
        Seed for the feature-subsampling RNG.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_Node] = None
        self._flat: Optional[FlatTree] = None
        self.n_features_: Optional[int] = None

    @classmethod
    def _from_flat(
        cls,
        flat: FlatTree,
        n_features: int,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
    ) -> "DecisionTreeRegressor":
        """Wrap a builder-emitted node table in a fitted tree object."""
        tree = cls(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            seed=0,
        )
        tree.n_features_ = n_features
        tree._flat = flat
        return tree

    # ------------------------------------------------------------------ fit
    def _validate_fit(self, X, y, sample_weight) -> tuple:
        X = np.ascontiguousarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        if sample_weight is None:
            w = np.ones(X.shape[0], dtype=float)
        else:
            w = np.asarray(sample_weight, dtype=float).ravel()
            if w.shape[0] != X.shape[0]:
                raise ValueError("sample_weight must have one entry per row")
            if np.any(w < 0):
                raise ValueError("sample_weight must be non-negative")
            if not np.any(w > 0):
                raise ValueError("sample_weight must have a positive entry")
        return X, y, w

    def _n_split_features(self) -> int:
        assert self.n_features_ is not None
        return resolve_split_feature_count(self.max_features, self.n_features_)

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        """Vectorized level-synchronous fit (no pointer nodes, no recursion)."""
        X, y, w = self._validate_fit(X, y, sample_weight)
        self.n_features_ = X.shape[1]
        from repro.ml.treebuilder import build_forest_flat

        self._flat = build_forest_flat(
            X,
            y,
            w[None, :],
            [self._rng],
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            n_split_features=self._n_split_features(),
        )[0]
        self._root = None
        return self

    def fit_pointer(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        """Per-node reference fit over pointer :class:`_Node` objects.

        Expands nodes from a level-ordered queue (so the feature-subsampling
        RNG is consumed in the same order as the vectorized builder), sorts
        every candidate feature at every node, and compiles the finished
        pointer tree to the flat layout.  For a fixed seed the result is
        bit-for-bit identical to :meth:`fit`.
        """
        X, y, w = self._validate_fit(X, y, sample_weight)
        self.n_features_ = X.shape[1]
        n_split_features = self._n_split_features()
        wy = w * y
        wyy = wy * y
        root = _Node()
        queue = deque([(root, np.flatnonzero(w > 0).astype(np.intp), 0)])
        while queue:
            node, members, depth = queue.popleft()
            total_w, mean, variance = weighted_node_stats(
                w[members], wy[members], wyy[members]
            )
            node.value = float(mean)
            node.variance = float(variance)
            node.n_samples = int(total_w)
            y_members = y[members]
            if (
                total_w < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.min(y_members) == np.max(y_members)
            ):
                continue
            feature_mask = draw_feature_mask(self._rng, X.shape[1], n_split_features)
            split = best_split_weighted(
                X, members, w, wy, wyy, feature_mask, self.min_samples_leaf
            )
            if split is None:
                continue
            feature, threshold = split
            go_left = X[members, feature] <= threshold
            # Guard against midpoint rounding landing on the right value: a
            # split that routes every member to one side degenerates to a leaf.
            if go_left.all() or not go_left.any():
                continue
            node.feature = feature
            node.threshold = threshold
            node.left = _Node()
            node.right = _Node()
            queue.append((node.left, members[go_left], depth + 1))
            queue.append((node.right, members[~go_left], depth + 1))
        self._root = root
        self._flat = _compile_tree(root)
        return self

    # -------------------------------------------------------------- predict
    @property
    def flat(self) -> FlatTree:
        """The flat-array node table of the fitted tree."""
        if self._flat is None:
            raise RuntimeError("DecisionTreeRegressor must be fit before predict")
        return self._flat

    def _validate_predict_input(self, X) -> np.ndarray:
        if self._flat is None:
            raise RuntimeError("DecisionTreeRegressor must be fit before predict")
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("feature dimension mismatch in predict")
        return X

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict_input(X)
        return self.flat.value[self.flat.leaf_indices(X)]

    def predict_with_variance(self, X) -> tuple:
        """Return per-row leaf means and leaf variances."""
        X = self._validate_predict_input(X)
        leaves = self.flat.leaf_indices(X)
        return self.flat.value[leaves], self.flat.variance[leaves]

    # ------------------------------------------- legacy pointer-walk predict
    def _locate(self, row: np.ndarray) -> int:
        """Per-row descent to a leaf's node index (reference walk)."""
        flat = self.flat
        node = 0
        while flat.left[node] >= 0:
            if row[flat.feature[node]] <= flat.threshold[node]:
                node = flat.left[node]
            else:
                node = flat.right[node]
        return node

    def predict_pointer(self, X) -> np.ndarray:
        """Per-row pointer-walk prediction (legacy reference implementation)."""
        X = self._validate_predict_input(X)
        flat = self.flat
        return np.array([flat.value[self._locate(row)] for row in X], dtype=float)

    def predict_with_variance_pointer(self, X) -> tuple:
        """Per-row pointer-walk means/variances (legacy reference)."""
        X = self._validate_predict_input(X)
        flat = self.flat
        leaves = [self._locate(row) for row in X]
        means = np.array([flat.value[leaf] for leaf in leaves], dtype=float)
        variances = np.array([flat.variance[leaf] for leaf in leaves], dtype=float)
        return means, variances

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf).

        Iterative over the flat node table — preorder numbering guarantees
        children follow their parents, so one ascending pass suffices and
        arbitrarily deep trees cannot hit the recursion limit.
        """
        if self._flat is None:
            raise RuntimeError("tree is not fitted")
        flat = self._flat
        depths = np.zeros(flat.n_nodes, dtype=np.intp)
        max_depth = 0
        for node in range(flat.n_nodes):
            left = flat.left[node]
            if left < 0:
                continue
            child_depth = depths[node] + 1
            depths[left] = child_depth
            depths[flat.right[node]] = child_depth
            if child_depth > max_depth:
                max_depth = int(child_depth)
        return max_depth

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        if self._flat is None:
            raise RuntimeError("tree is not fitted")
        return int(np.count_nonzero(self._flat.left < 0))

"""CART regression tree used as the building block of the random forest.

The implementation is a plain variance-reduction CART over dense ``numpy``
arrays.  It is intentionally small but supports the features the surrogate and
noise-adjuster models need: per-split feature subsampling (``max_features``),
depth and leaf-size limits, and per-leaf variance estimates so the forest can
expose predictive uncertainty to the Bayesian optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A single tree node; leaves keep the training targets' mean/variance."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0
    variance: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Regression tree minimising within-node variance (squared error).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or smaller
        than ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples that must end up in each child.
    max_features:
        Number of candidate features examined per split.  ``None`` uses all
        features, a float in (0, 1] uses that fraction, an int uses that count.
    seed:
        Seed for the feature-subsampling RNG.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_Node] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ fit
    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _n_split_features(self) -> int:
        assert self.n_features_ is not None
        if self.max_features is None:
            return self.n_features_
        if isinstance(self.max_features, float):
            return max(1, int(round(self.max_features * self.n_features_)))
        return max(1, min(int(self.max_features), self.n_features_))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(
            value=float(np.mean(y)),
            variance=float(np.var(y)),
            n_samples=int(y.shape[0]),
        )
        if (
            y.shape[0] < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node

        split = self._best_split(X, y)
        if split is None:
            return node

        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n_samples, n_features = X.shape
        features = self._rng.choice(
            n_features, size=self._n_split_features(), replace=False
        )
        best_score = np.inf
        best: Optional[tuple] = None
        min_leaf = self.min_samples_leaf

        for feature in features:
            order = np.argsort(X[:, feature], kind="mergesort")
            xs = X[order, feature]
            ys = y[order]
            # Cumulative sums let us evaluate every split point in O(n).
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys**2)
            total_sum = csum[-1]
            total_sq = csum_sq[-1]

            # Candidate split after index i (left = [0..i], right = [i+1..]).
            idx = np.arange(min_leaf - 1, n_samples - min_leaf)
            if idx.size == 0:
                continue
            # Only consider indices where the feature value actually changes.
            distinct = xs[idx] < xs[idx + 1]
            idx = idx[distinct]
            if idx.size == 0:
                continue

            n_left = idx + 1
            n_right = n_samples - n_left
            sum_left = csum[idx]
            sq_left = csum_sq[idx]
            sum_right = total_sum - sum_left
            sq_right = total_sq - sq_left
            # Within-child sum of squared errors.
            sse_left = sq_left - sum_left**2 / n_left
            sse_right = sq_right - sum_right**2 / n_right
            scores = sse_left + sse_right

            local_best = int(np.argmin(scores))
            if scores[local_best] < best_score:
                best_score = float(scores[local_best])
                i = idx[local_best]
                threshold = float((xs[i] + xs[i + 1]) / 2.0)
                best = (int(feature), threshold)
        return best

    # -------------------------------------------------------------- predict
    def _locate(self, row: np.ndarray) -> _Node:
        assert self._root is not None
        node = self._root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("DecisionTreeRegressor must be fit before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("feature dimension mismatch in predict")
        return np.array([self._locate(row).value for row in X], dtype=float)

    def predict_with_variance(self, X) -> tuple:
        """Return per-row leaf means and leaf variances."""
        if self._root is None:
            raise RuntimeError("DecisionTreeRegressor must be fit before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("feature dimension mismatch in predict")
        leaves = [self._locate(row) for row in X]
        means = np.array([leaf.value for leaf in leaves], dtype=float)
        variances = np.array([leaf.variance for leaf in leaves], dtype=float)
        return means, variances

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""

        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return _depth(self._root)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""

        def _count(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return _count(node.left) + _count(node.right)

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return _count(self._root)

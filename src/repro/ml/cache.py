"""Single-entry cache for fitted surrogate models.

Refitting a 24-tree random forest is the dominant cost of a SMAC ``ask()``
and of every noise-adjuster retrain — even after the all-trees-at-once
vectorized builder (:mod:`repro.ml.treebuilder`) cut the refit itself by an
order of magnitude, skipping the fit entirely still beats redoing it.  Both
call sites rebuild the model from the *entire* observation history, so a
fitted model stays valid exactly as long as that history is unchanged.  :class:`SurrogateCache` captures that
invalidation rule: the caller derives a cheap fingerprint of its training
data (observation count, plus optional checksums) and the cache returns the
previously fitted model whenever the fingerprint matches.

Only one entry is kept — training histories grow monotonically during a
tuning run, so an older fingerprint can never become current again.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional


class SurrogateCache:
    """Keep the most recently fitted surrogate, keyed on a data fingerprint."""

    def __init__(self) -> None:
        self._key: Optional[Hashable] = None
        self._value: Any = None
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``, or ``None`` on a stale/empty cache."""
        if self._key is not None and key == self._key:
            self.hits += 1
            return self._value
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        self._key = key
        self._value = value

    def invalidate(self) -> None:
        self._key = None
        self._value = None

"""Feature preprocessing: standardisation and one-hot encoding.

The paper's noise-adjuster model (Algorithm 1) is
``RandomForestRegressor ∘ Standardize`` over guest-OS metrics concatenated with
a one-hot encoding of the worker id.  These two transformers provide exactly
that functionality.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Columns with zero variance are left centred but not scaled, which keeps
    constant telemetry channels (e.g. total memory) from producing NaNs.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("StandardScaler expects a 2-D array")
        if X.shape[0] == 0:
            raise ValueError("cannot fit StandardScaler on an empty array")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fit before transform")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.mean_.shape[0]:
            raise ValueError("feature dimension mismatch in StandardScaler.transform")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fit before inverse_transform")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_


class OneHotEncoder:
    """One-hot encode a single categorical column of hashable labels.

    Unknown categories at transform time map to the all-zeros vector, which is
    the behaviour the noise adjuster needs when a sample arrives from a worker
    that was not present in the training set.
    """

    def __init__(self, categories: Optional[Sequence] = None) -> None:
        self._explicit_categories = list(categories) if categories is not None else None
        self.categories_: Optional[list] = None

    def fit(self, labels: Sequence) -> "OneHotEncoder":
        if self._explicit_categories is not None:
            self.categories_ = list(self._explicit_categories)
        else:
            seen: list = []
            for label in labels:
                if label not in seen:
                    seen.append(label)
            if not seen:
                raise ValueError("cannot fit OneHotEncoder on an empty label sequence")
            self.categories_ = seen
        return self

    @property
    def n_categories(self) -> int:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder must be fit first")
        return len(self.categories_)

    def transform(self, labels: Sequence) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder must be fit before transform")
        index = {cat: i for i, cat in enumerate(self.categories_)}
        out = np.zeros((len(labels), len(self.categories_)), dtype=float)
        for row, label in enumerate(labels):
            col = index.get(label)
            if col is not None:
                out[row, col] = 1.0
        return out

    def fit_transform(self, labels: Sequence) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def transform_one(self, label) -> np.ndarray:
        """Encode a single label as a 1-D vector."""
        return self.transform([label])[0]

"""Level-synchronous, all-trees-at-once random-forest construction.

:func:`build_forest_flat` grows every tree of a forest simultaneously, one
depth level per iteration, and emits preorder-numbered
:class:`repro.ml.tree.FlatTree` node tables directly — no pointer nodes, no
per-node Python recursion, and no per-node sorting:

* each feature column is argsorted **once per fit** (stable mergesort), and
  that order is shared by every tree and every node.  Bootstrap resamples
  are per-tree integer sample-weight vectors over the shared row universe,
  so resampling never reorders anything;
* a node's per-feature sorted member order is maintained as a permutation
  that is *stably partitioned* when the node splits, which preserves
  ``(feature value, row index)`` order in both children — exactly the order
  a per-node stable argsort would produce;
* one NumPy pass per (level, feature) scores the best variance-reduction
  split of **every** ``(tree, node)`` pair at once: member rows are
  scattered into per-node zero-padded rectangles and weighted cumulative
  sums along the rectangle rows evaluate every candidate boundary.

Bit-for-bit parity with the pointer reference
---------------------------------------------
``DecisionTreeRegressor.fit_pointer`` and this builder must produce
identical node tables for the same seed (guarded by
``tests/ml/test_fit_equivalence.py``).  Three invariants make that exact
rather than approximate:

1. **RNG consumption** — feature-subsampling keys are drawn per tree in
   level order, one ``(n_expanding_nodes, n_features)`` block per level,
   which consumes the per-tree bit stream byte-for-byte like the
   reference's per-node ``rng.random(n_features)`` calls.
2. **Summation order** — every statistic is a sequential cumulative sum
   over members in a defined order (ascending row index for node stats,
   feature-sorted for split scans).  Rectangle rows are zero-padded on the
   right, so ``np.cumsum(..., axis=1)`` performs the same additions as the
   reference's per-node 1-D cumsums.
3. **Tie-breaking** — first minimum along the sorted positions within a
   feature, lowest feature index across features (``np.argmin`` on an
   ``inf``-masked score matrix), matching the reference's strict ``<``
   scan in ascending feature order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ml.tree import FlatTree


def _segment_starts(ids: np.ndarray) -> np.ndarray:
    """Start offsets of maximal runs of equal values in a sorted array."""
    if ids.size == 0:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(
        ([0], np.flatnonzero(ids[1:] != ids[:-1]) + 1)
    ).astype(np.intp)


def _stable_partition(
    perm: np.ndarray,
    node_of: np.ndarray,
    go_left: np.ndarray,
    keep: np.ndarray,
) -> np.ndarray:
    """Partition each node's slot segment into (lefts, rights), stably.

    ``perm`` lists slots grouped by node; ``go_left``/``keep`` are flat
    per-slot lookups.  Slots of non-splitting nodes are dropped; within a
    surviving segment lefts keep their relative order, then rights keep
    theirs — which preserves both the ascending-row and the feature-sorted
    invariants in the children.  Integer prefix counts make this exact.
    """
    kept = perm[keep[perm]]
    if kept.size == 0:
        return kept
    starts = _segment_starts(node_of[kept])
    lengths = np.diff(np.append(starts, kept.size))
    left = go_left[kept]
    left_int = left.astype(np.intp)
    prefix = np.cumsum(left_int)
    seg_prefix = prefix - np.repeat(prefix[starts] - left_int[starts], lengths)
    n_left = np.repeat(seg_prefix[starts + lengths - 1], lengths)
    start_rep = np.repeat(starts, lengths)
    pos = np.arange(kept.size, dtype=np.intp) - start_rep
    new_pos = np.where(
        left,
        start_rep + seg_prefix - 1,
        start_rep + n_left + pos - seg_prefix,
    )
    out = np.empty_like(kept)
    out[new_pos] = kept
    return out


class _LevelRecords:
    """Node records for one depth level (parallel arrays, creation order)."""

    def __init__(self, tree, total_w, value, variance, pure):
        count = tree.shape[0]
        self.tree = tree
        self.total_w = total_w
        self.value = value
        self.variance = variance
        self.pure = pure
        self.feature = np.full(count, -1, dtype=np.intp)
        self.threshold = np.full(count, np.nan)
        self.left = np.full(count, -1, dtype=np.intp)
        self.right = np.full(count, -1, dtype=np.intp)

    def __len__(self) -> int:
        return self.tree.shape[0]


def build_forest_flat(
    X: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    rngs: Sequence[np.random.Generator],
    *,
    max_depth: Optional[int],
    min_samples_split: int,
    min_samples_leaf: int,
    n_split_features: int,
) -> List[FlatTree]:
    """Fit ``weights.shape[0]`` trees at once; returns one FlatTree per tree.

    ``weights[t]`` is tree ``t``'s non-negative per-row sample weight (the
    bootstrap multiplicity); rows with weight 0 are not members of tree
    ``t``.  ``rngs[t]`` is tree ``t``'s feature-subsampling stream.
    """
    X = np.ascontiguousarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    weights = np.asarray(weights, dtype=float)
    n_rows, n_features = X.shape
    n_trees = weights.shape[0]
    if weights.shape[1] != n_rows:
        raise ValueError("weights must have one column per row of X")
    if len(rngs) != n_trees:
        raise ValueError("need one RNG per tree")

    # ---- shared per-fit precomputation -----------------------------------
    # One stable argsort per feature for the whole forest; per-slot weighted
    # target products shared by every scan.  A "slot" is a (tree, row) pair,
    # id = tree * n_rows + row.
    order = np.argsort(X, axis=0, kind="mergesort")  # (n_rows, n_features)
    x_cols = [np.ascontiguousarray(X[:, f]) for f in range(n_features)]
    w_of = weights.ravel()
    wy_of = (weights * y[None, :]).ravel()
    wyy_of = (weights * y[None, :] * y[None, :]).ravel()
    y_of = np.ascontiguousarray(np.broadcast_to(y, (n_trees, n_rows))).ravel()
    row_of = np.ascontiguousarray(
        np.broadcast_to(np.arange(n_rows, dtype=np.intp), (n_trees, n_rows))
    ).ravel()
    tree_base = (np.arange(n_trees, dtype=np.intp) * n_rows)[:, None]

    active = weights > 0  # (n_trees, n_rows)
    perms: List[np.ndarray] = []
    for f in range(n_features):
        tiled = order[:, f][None, :] + tree_base  # slots in x-order per tree
        perms.append(tiled[active[:, order[:, f]]])
    perm_idx = (np.arange(n_rows, dtype=np.intp)[None, :] + tree_base)[active]

    node_of = np.full(n_trees * n_rows, -1, dtype=np.intp)
    node_of[perm_idx] = perm_idx // n_rows  # root of tree t has global id t

    def node_payload(perm: np.ndarray) -> _LevelRecords:
        """Stats for the nodes whose members ``perm`` lists (ascending rows)."""
        starts = _segment_starts(node_of[perm])
        lengths = np.diff(np.append(starts, perm.size))
        n_seg = starts.size
        max_len = int(lengths.max())
        seg_of = np.repeat(np.arange(n_seg, dtype=np.intp), lengths)
        pos = np.arange(perm.size, dtype=np.intp) - np.repeat(starts, lengths)
        rect = np.zeros((3, n_seg, max_len))
        rect[0, seg_of, pos] = w_of[perm]
        rect[1, seg_of, pos] = wy_of[perm]
        rect[2, seg_of, pos] = wyy_of[perm]
        rect = np.cumsum(rect, axis=2)
        last = lengths - 1
        seg_ids = np.arange(n_seg)
        total_w = rect[0, seg_ids, last]
        total_wy = rect[1, seg_ids, last]
        total_wyy = rect[2, seg_ids, last]
        mean = total_wy / total_w
        variance = np.maximum(total_wyy / total_w - mean * mean, 0.0)
        y_vals = y_of[perm]
        pure = np.minimum.reduceat(y_vals, starts) == np.maximum.reduceat(
            y_vals, starts
        )
        return _LevelRecords(perm[starts] // n_rows, total_w, mean, variance, pure)

    levels: List[_LevelRecords] = [node_payload(perm_idx)]
    bases: List[int] = [0]
    total_nodes = len(levels[0])

    # ---- breadth-first frontier ------------------------------------------
    level = 0
    while True:
        records = levels[level]
        base = bases[level]
        expand = (records.total_w >= min_samples_split) & ~records.pure
        if max_depth is not None and level >= max_depth:
            expand[:] = False
        expand_idx = np.flatnonzero(expand)
        if expand_idx.size == 0:
            break
        n_expand = expand_idx.size
        expand_rank = np.full(len(records), -1, dtype=np.intp)
        expand_rank[expand_idx] = np.arange(n_expand, dtype=np.intp)

        # Retire slots of nodes that just became leaves.
        perm_idx = perm_idx[expand[node_of[perm_idx] - base]]
        for f in range(n_features):
            perm = perms[f]
            perms[f] = perm[expand[node_of[perm] - base]]

        # Feature-subsampling draws: per tree, one block covering its
        # expanding nodes in creation order (nodes are stored tree-major).
        feature_mask = np.zeros((n_expand, n_features), dtype=bool)
        expand_trees = records.tree[expand_idx]
        bounds = np.searchsorted(expand_trees, np.arange(n_trees + 1))
        for t in range(n_trees):
            lo, hi = int(bounds[t]), int(bounds[t + 1])
            if hi > lo:
                keys = rngs[t].random((hi - lo, n_features))
                kth = np.partition(keys, n_split_features - 1, axis=1)
                feature_mask[lo:hi] = keys <= kth[:, n_split_features - 1 : n_split_features]

        # One scan per feature scores every (node, candidate) pair at once.
        score = np.full((n_expand, n_features), np.inf)
        threshold = np.zeros((n_expand, n_features))
        for f in range(n_features):
            perm = perms[f]
            if perm.size == 0:
                continue
            ranks = expand_rank[node_of[perm] - base]
            in_subset = feature_mask[ranks, f]
            sub = perm[in_subset]
            if sub.size == 0:
                continue
            sub_rank = ranks[in_subset]
            starts = _segment_starts(sub_rank)
            lengths = np.diff(np.append(starts, sub.size))
            max_len = int(lengths.max())
            if max_len < 2:
                continue
            n_seg = starts.size
            seg_of = np.repeat(np.arange(n_seg, dtype=np.intp), lengths)
            pos = np.arange(sub.size, dtype=np.intp) - np.repeat(starts, lengths)
            xs = np.full((n_seg, max_len), np.nan)
            xs[seg_of, pos] = x_cols[f][row_of[sub]]
            rect = np.zeros((3, n_seg, max_len))
            rect[0, seg_of, pos] = w_of[sub]
            rect[1, seg_of, pos] = wy_of[sub]
            rect[2, seg_of, pos] = wyy_of[sub]
            rect = np.cumsum(rect, axis=2)
            cw, cwy, cwyy = rect[0], rect[1], rect[2]
            seg_ids = np.arange(n_seg)
            last = lengths - 1
            total_w = cw[seg_ids, last]
            total_wy = cwy[seg_ids, last]
            total_wyy = cwyy[seg_ids, last]
            left_w = cw[:, :-1]
            valid = (
                (xs[:, :-1] < xs[:, 1:])
                & (left_w >= min_samples_leaf)
                & (total_w[:, None] - left_w >= min_samples_leaf)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                sse_left = cwyy[:, :-1] - cwy[:, :-1] ** 2 / left_w
                sse_right = (total_wyy[:, None] - cwyy[:, :-1]) - (
                    total_wy[:, None] - cwy[:, :-1]
                ) ** 2 / (total_w[:, None] - left_w)
                seg_scores = np.where(valid, sse_left + sse_right, np.inf)
            best_pos = np.argmin(seg_scores, axis=1)
            best_scores = seg_scores[seg_ids, best_pos]
            has = np.flatnonzero(best_scores < np.inf)
            if has.size == 0:
                continue
            rows_at = sub_rank[starts[has]]
            score[rows_at, f] = best_scores[has]
            threshold[rows_at, f] = (
                xs[has, best_pos[has]] + xs[has, best_pos[has] + 1]
            ) / 2.0

        # Lowest feature index wins ties, matching the reference's strict <.
        win_feature = np.argmin(score, axis=1)
        expand_ids = np.arange(n_expand)
        can_split = score[expand_ids, win_feature] < np.inf
        win_threshold = threshold[expand_ids, win_feature]

        # Route members; a midpoint that rounds onto the right value could
        # empty one child, in which case the node degenerates to a leaf.
        ranks_idx = expand_rank[node_of[perm_idx] - base]
        starts_idx = _segment_starts(ranks_idx)
        lengths_idx = np.diff(np.append(starts_idx, perm_idx.size))
        go_left = np.zeros(perm_idx.size, dtype=bool)
        routed = can_split[ranks_idx]
        routed_rows = row_of[perm_idx[routed]]
        go_left[routed] = (
            X[routed_rows, win_feature[ranks_idx[routed]]]
            <= win_threshold[ranks_idx[routed]]
        )
        n_left = np.add.reduceat(go_left.astype(np.intp), starts_idx)
        seg_rank = ranks_idx[starts_idx]
        degenerate = can_split[seg_rank] & ((n_left == 0) | (n_left == lengths_idx))
        if degenerate.any():
            can_split[seg_rank[degenerate]] = False

        split_ranks = np.flatnonzero(can_split)
        if split_ranks.size == 0:
            break
        n_split = split_ranks.size
        child_base = total_nodes
        left_ids = child_base + 2 * np.arange(n_split, dtype=np.intp)
        right_ids = left_ids + 1
        split_no = np.full(n_expand, -1, dtype=np.intp)
        split_no[split_ranks] = np.arange(n_split, dtype=np.intp)

        global_idx = expand_idx[split_ranks]
        records.feature[global_idx] = win_feature[split_ranks]
        records.threshold[global_idx] = win_threshold[split_ranks]
        records.left[global_idx] = left_ids
        records.right[global_idx] = right_ids

        # Stable-partition every permutation, then relabel slots.
        go_left_flat = np.zeros(n_trees * n_rows, dtype=bool)
        go_left_flat[perm_idx] = go_left
        keep_flat = np.zeros(n_trees * n_rows, dtype=bool)
        keep_flat[perm_idx] = can_split[ranks_idx]
        for f in range(n_features):
            perms[f] = _stable_partition(perms[f], node_of, go_left_flat, keep_flat)
        perm_idx = _stable_partition(perm_idx, node_of, go_left_flat, keep_flat)
        child_no = split_no[expand_rank[node_of[perm_idx] - base]]
        node_of[perm_idx] = np.where(
            go_left_flat[perm_idx], left_ids[child_no], right_ids[child_no]
        )

        levels.append(node_payload(perm_idx))
        bases.append(child_base)
        total_nodes += 2 * n_split
        level += 1

    # ---- preorder renumbering and per-tree emission ----------------------
    tree_g = np.concatenate([rec.tree for rec in levels])
    value_g = np.concatenate([rec.value for rec in levels])
    variance_g = np.concatenate([rec.variance for rec in levels])
    total_w_g = np.concatenate([rec.total_w for rec in levels])
    feature_g = np.concatenate([rec.feature for rec in levels])
    threshold_g = np.concatenate([rec.threshold for rec in levels])
    left_g = np.concatenate([rec.left for rec in levels])
    right_g = np.concatenate([rec.right for rec in levels])

    sizes = np.ones(total_nodes, dtype=np.intp)
    internal_per_level = []
    for rec, base in zip(levels, bases):
        internal_per_level.append(np.flatnonzero(rec.left >= 0) + base)
    for ids in reversed(internal_per_level):
        if ids.size:
            sizes[ids] = 1 + sizes[left_g[ids]] + sizes[right_g[ids]]
    preorder = np.zeros(total_nodes, dtype=np.intp)
    for ids in internal_per_level:
        if ids.size:
            preorder[left_g[ids]] = preorder[ids] + 1
            preorder[right_g[ids]] = preorder[ids] + 1 + sizes[left_g[ids]]

    flats: List[FlatTree] = []
    for t in range(n_trees):
        members = np.flatnonzero(tree_g == t)
        positions = preorder[members]
        count = members.size
        feature = np.zeros(count, dtype=np.intp)
        threshold = np.full(count, np.nan)
        left = np.full(count, -1, dtype=np.intp)
        right = np.full(count, -1, dtype=np.intp)
        value = np.empty(count)
        variance = np.empty(count)
        n_samples = np.empty(count, dtype=np.intp)
        value[positions] = value_g[members]
        variance[positions] = variance_g[members]
        n_samples[positions] = total_w_g[members].astype(np.intp)
        internal = feature_g[members] >= 0
        src = members[internal]
        dst = positions[internal]
        feature[dst] = feature_g[src]
        threshold[dst] = threshold_g[src]
        left[dst] = preorder[left_g[src]]
        right[dst] = preorder[right_g[src]]
        flats.append(
            FlatTree(
                feature=feature,
                threshold=threshold,
                left=left,
                right=right,
                value=value,
                variance=variance,
                n_samples=n_samples,
            )
        )
    return flats

"""Regression and variability metrics shared across the reproduction.

The variability metrics (:func:`coefficient_of_variation` and
:func:`relative_range`) are the statistics the paper uses when reasoning about
noise: CoV for the longitudinal cloud study (§3.2) and relative range for the
unstable-configuration detector (§4.2).
"""

from __future__ import annotations

import numpy as np


def _as_1d(values) -> np.ndarray:
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("metric requires at least one value")
    return arr


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error between two equal-length vectors."""
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error between two equal-length vectors."""
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_relative_error(y_true, y_pred) -> float:
    """Mean of ``|pred - true| / |true|``.

    This is the error metric reported in Fig. 19b of the paper when comparing
    the optimizer signal with and without the noise-adjuster model.
    """
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if np.any(y_true == 0):
        raise ValueError("mean_relative_error is undefined when y_true contains zeros")
    return float(np.mean(np.abs(y_pred - y_true) / np.abs(y_true)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (R^2)."""
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def coefficient_of_variation(values) -> float:
    """Standard deviation normalised by the mean (CoV).

    Used throughout §3 of the paper to quantify the noise of cloud components.
    """
    arr = _as_1d(values)
    mean = float(np.mean(arr))
    if mean == 0.0:
        raise ValueError("coefficient of variation is undefined for zero mean")
    return float(np.std(arr) / abs(mean))


def relative_range(values) -> float:
    """``(max - min) / mean`` of a sample set.

    The unstable-configuration heuristic of §4.2: it does not depend on how
    many outliers exist, only whether at least one extreme sample exists.
    """
    arr = _as_1d(values)
    mean = float(np.mean(arr))
    if mean == 0.0:
        raise ValueError("relative range is undefined for zero mean")
    return float((np.max(arr) - np.min(arr)) / abs(mean))

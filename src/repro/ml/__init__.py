"""From-scratch machine-learning substrate used by the TUNA reproduction.

scikit-learn is not available in the offline environment, so this package
implements the small set of estimators the paper depends on:

* :class:`~repro.ml.tree.DecisionTreeRegressor` — CART regression tree.
* :class:`~repro.ml.forest.RandomForestRegressor` — bagged forest used both as
  the SMAC surrogate model and as the noise-adjuster model (paper §4.3).
* :class:`~repro.ml.gaussian_process.GaussianProcessRegressor` — GP regression
  used by the OtterTune-style optimizer (paper §6.6).
* :class:`~repro.ml.preprocessing.StandardScaler` and
  :class:`~repro.ml.preprocessing.OneHotEncoder` — feature preprocessing.

All estimators follow a minimal ``fit`` / ``predict`` convention operating on
``numpy`` arrays and take explicit seeds for determinism.
"""

from repro.ml.cache import SurrogateCache
from repro.ml.forest import RandomForestRegressor
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernels import ConstantKernel, Matern52Kernel, RBFKernel, WhiteKernel
from repro.ml.metrics import (
    coefficient_of_variation,
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    r2_score,
    relative_range,
)
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "ConstantKernel",
    "DecisionTreeRegressor",
    "GaussianProcessRegressor",
    "Matern52Kernel",
    "OneHotEncoder",
    "RBFKernel",
    "RandomForestRegressor",
    "StandardScaler",
    "SurrogateCache",
    "WhiteKernel",
    "coefficient_of_variation",
    "mean_absolute_error",
    "mean_relative_error",
    "mean_squared_error",
    "r2_score",
    "relative_range",
]

"""Bagged random-forest regressor.

The forest serves two roles in the reproduction, mirroring the paper:

* surrogate model of the SMAC-style Bayesian optimizer (§5, "SMAC with a
  random forest surrogate model"), where the spread across trees provides the
  predictive uncertainty needed by the Expected Improvement acquisition;
* the noise-adjuster model of §4.3 (Algorithm 1), chosen there because it
  generalises well, performs implicit feature selection and can be trained on
  very little data.

Training layout
---------------
``fit`` trains **all trees at once**: bootstrap resampling is expressed as
per-tree integer sample-weight vectors over the shared training matrix, and
the level-synchronous builder in :mod:`repro.ml.treebuilder` grows every
tree's frontier together — one stable argsort per feature for the whole
forest, one weighted cumulative-sum pass per (level, feature) to score every
(tree, node) split candidate, flat node tables emitted directly.  The
per-tree, per-node reference build survives as ``fit_pointer`` and is
bit-for-bit equivalent for the same seed (same forest-RNG draw order for
tree seeds and bootstrap counts, same per-tree feature-subsampling streams).

Inference layout
----------------
After fitting, the per-tree flat arrays (see :mod:`repro.ml.tree`) are stacked
into one forest-level structure of arrays: every tree's nodes are concatenated
with its child indices shifted by the tree's node offset, and ``roots[t]``
records where tree ``t`` starts.  ``predict`` / ``predict_mean_std`` then
descend *all (row, tree) pairs* simultaneously with NumPy fancy indexing — the
Python-level loop runs at most ``max tree depth`` times, independent of both
the number of rows and the number of trees.  The law-of-total-variance
decomposition (variance of tree means + mean of within-leaf variances) is
unchanged from the per-tree implementation, which survives as
``predict_mean_std_pointer`` for equivalence testing and benchmarking.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tree import DecisionTreeRegressor, resolve_split_feature_count
from repro.ml.treebuilder import build_forest_flat


class _FlatForest:
    """All trees' flat arrays concatenated, child indices offset per tree.

    The concatenated ``child`` table stores left children at even and right
    children at odd positions, and makes every leaf its own child (a
    self-loop).  A leaf's threshold is ``nan``, so the routing comparison
    ``x > threshold`` is always False on leaves and slots that have reached a
    leaf simply stay put — which lets the descent loop skip the
    "who finished?" bookkeeping on most levels and compact the active set only
    every few iterations.
    """

    _COMPACT_EVERY = 4

    def __init__(self, trees) -> None:
        flats = [tree.flat for tree in trees]
        sizes = np.array([flat.n_nodes for flat in flats], dtype=np.intp)
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self.roots = offsets.astype(np.intp)
        # Leaves keep left/right == -1 (offsets must not touch the sentinel).
        self.left = np.concatenate(
            [np.where(f.left >= 0, f.left + off, -1) for f, off in zip(flats, offsets)]
        )
        self.right = np.concatenate(
            [np.where(f.right >= 0, f.right + off, -1) for f, off in zip(flats, offsets)]
        )
        self.feature = np.concatenate([f.feature for f in flats])
        self.threshold = np.concatenate([f.threshold for f in flats])
        self.value = np.concatenate([f.value for f in flats])
        self.variance = np.concatenate([f.variance for f in flats])
        self.n_samples = np.concatenate([f.n_samples for f in flats])
        ids = np.arange(self.left.shape[0], dtype=np.intp)
        is_leaf = self.left < 0
        self._child = np.empty(2 * self.left.shape[0], dtype=np.intp)
        self._child[0::2] = np.where(is_leaf, ids, self.left)
        self._child[1::2] = np.where(is_leaf, ids, self.right)

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """(n_rows, n_trees) leaf node index for every row under every tree."""
        n_rows = X.shape[0]
        n_trees = self.roots.shape[0]
        n_features = X.shape[1]
        flat_X = X.ravel()
        # One flattened slot per (row, tree) pair; ``rowbase`` is the offset
        # of each slot's row inside ``flat_X``.
        nodes = np.broadcast_to(self.roots, (n_rows, n_trees)).ravel().copy()
        rowbase = np.repeat(np.arange(n_rows, dtype=np.intp) * n_features, n_trees)
        idx = nodes  # resolved leaf per slot; aliases ``nodes`` until compacted
        slots = None  # indices of still-active slots inside ``idx``
        level = 0
        while True:
            go_right = flat_X[rowbase + self.feature[nodes]] > self.threshold[nodes]
            nodes = self._child[2 * nodes + go_right]
            level += 1
            if level % self._COMPACT_EVERY:
                continue
            alive = self.left[nodes] >= 0
            n_alive = np.count_nonzero(alive)
            if n_alive == 0:
                if slots is None:
                    return nodes.reshape(n_rows, n_trees)
                idx[slots] = nodes
                return idx.reshape(n_rows, n_trees)
            if n_alive < nodes.size:
                if slots is None:
                    idx = nodes.copy()
                    slots = np.flatnonzero(alive)
                else:
                    idx[slots] = nodes
                    slots = slots[alive]
                nodes = nodes[alive]
                rowbase = rowbase[alive]


class RandomForestRegressor:
    """Ensemble of CART trees trained on bootstrap resamples.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed through to each tree.
    max_features:
        Features considered per split.  The default of 5/6 follows SMAC's
        random-forest configuration, which works well for small tabular
        configuration spaces.
    bootstrap:
        Whether each tree sees a bootstrap resample of the data.
    seed:
        Master seed; each tree receives an independent child seed.
    """

    def __init__(
        self,
        n_estimators: int = 32,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = 5.0 / 6.0,
        bootstrap: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._rng = np.random.default_rng(seed)
        self.trees_: list = []
        self._flat: Optional[_FlatForest] = None
        self.n_features_: Optional[int] = None

    def _validate_fit(self, X, y) -> tuple:
        X = np.ascontiguousarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on zero samples")
        return X, y

    def _draw_tree_inputs(self, n_samples: int) -> tuple:
        """Per-tree seeds and bootstrap sample-weight vectors.

        One forest-RNG draw pair per tree — seed first, then the bootstrap
        counts — in tree order, so the vectorized and pointer fits consume
        the forest stream identically.
        """
        seeds = []
        weights = np.empty((self.n_estimators, n_samples))
        for t in range(self.n_estimators):
            seeds.append(int(self._rng.integers(0, 2**31 - 1)))
            if self.bootstrap and n_samples > 1:
                idx = self._rng.integers(0, n_samples, size=n_samples)
                weights[t] = np.bincount(idx, minlength=n_samples)
            else:
                weights[t] = 1.0
        return seeds, weights

    def fit(self, X, y) -> "RandomForestRegressor":
        """Vectorized all-trees-at-once fit (see :mod:`repro.ml.treebuilder`)."""
        X, y = self._validate_fit(X, y)
        self.n_features_ = X.shape[1]
        seeds, weights = self._draw_tree_inputs(X.shape[0])
        flats = build_forest_flat(
            X,
            y,
            weights,
            [np.random.default_rng(seed) for seed in seeds],
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            n_split_features=resolve_split_feature_count(
                self.max_features, self.n_features_
            ),
        )
        self.trees_ = [
            DecisionTreeRegressor._from_flat(
                flat,
                self.n_features_,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
            )
            for flat in flats
        ]
        self._flat = _FlatForest(self.trees_)
        return self

    def fit_pointer(self, X, y) -> "RandomForestRegressor":
        """Per-tree, per-node reference fit (bit-for-bit equal to :meth:`fit`)."""
        X, y = self._validate_fit(X, y)
        self.n_features_ = X.shape[1]
        seeds, weights = self._draw_tree_inputs(X.shape[0])
        self.trees_ = []
        for seed, w in zip(seeds, weights):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=seed,
            )
            tree.fit_pointer(X, y, sample_weight=w)
            self.trees_.append(tree)
        self._flat = _FlatForest(self.trees_)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_ or self._flat is None:
            raise RuntimeError("RandomForestRegressor must be fit before predict")

    def _validate_predict_input(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("feature dimension mismatch in predict")
        return X

    def predict(self, X) -> np.ndarray:
        """Mean prediction across trees."""
        X = self._validate_predict_input(X)
        assert self._flat is not None
        return self._flat.value[self._flat.leaf_indices(X)].mean(axis=1)

    def predict_mean_std(self, X) -> tuple:
        """Mean and standard deviation of predictions.

        The total predictive variance combines the spread of tree means
        (epistemic) with the average within-leaf variance (aleatoric), the
        standard law-of-total-variance decomposition used by SMAC.
        """
        X = self._validate_predict_input(X)
        assert self._flat is not None
        leaves = self._flat.leaf_indices(X)
        means = self._flat.value[leaves]  # (n_rows, n_trees)
        variances = self._flat.variance[leaves]
        mean = means.mean(axis=1)
        total_var = means.var(axis=1) + variances.mean(axis=1)
        return mean, np.sqrt(np.maximum(total_var, 1e-12))

    # ------------------------------------------- legacy per-tree prediction
    def predict_mean_std_pointer(self, X) -> tuple:
        """Per-row, per-tree pointer-walk mean/std (legacy reference)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        means = []
        variances = []
        for tree in self.trees_:
            mean, var = tree.predict_with_variance_pointer(X)
            means.append(mean)
            variances.append(var)
        means_arr = np.stack(means, axis=0)
        var_arr = np.stack(variances, axis=0)
        mean = means_arr.mean(axis=0)
        total_var = means_arr.var(axis=0) + var_arr.mean(axis=0)
        return mean, np.sqrt(np.maximum(total_var, 1e-12))

    def feature_importances(self) -> np.ndarray:
        """Crude split-count feature importance, normalised to sum to one."""
        self._check_fitted()
        assert self.n_features_ is not None and self._flat is not None
        internal = self._flat.left >= 0
        counts = np.zeros(self.n_features_, dtype=float)
        np.add.at(counts, self._flat.feature[internal], self._flat.n_samples[internal])
        total = counts.sum()
        if total == 0:
            return np.full(self.n_features_, 1.0 / self.n_features_)
        return counts / total

"""Bagged random-forest regressor.

The forest serves two roles in the reproduction, mirroring the paper:

* surrogate model of the SMAC-style Bayesian optimizer (§5, "SMAC with a
  random forest surrogate model"), where the spread across trees provides the
  predictive uncertainty needed by the Expected Improvement acquisition;
* the noise-adjuster model of §4.3 (Algorithm 1), chosen there because it
  generalises well, performs implicit feature selection and can be trained on
  very little data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Ensemble of CART trees trained on bootstrap resamples.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed through to each tree.
    max_features:
        Features considered per split.  The default of 5/6 follows SMAC's
        random-forest configuration, which works well for small tabular
        configuration spaces.
    bootstrap:
        Whether each tree sees a bootstrap resample of the data.
    seed:
        Master seed; each tree receives an independent child seed.
    """

    def __init__(
        self,
        n_estimators: int = 32,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = 5.0 / 6.0,
        bootstrap: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._rng = np.random.default_rng(seed)
        self.trees_: list = []
        self.n_features_: Optional[int] = None

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on zero samples")
        self.n_features_ = X.shape[1]
        n_samples = X.shape[0]
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(self._rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap and n_samples > 1:
                idx = self._rng.integers(0, n_samples, size=n_samples)
            else:
                idx = np.arange(n_samples)
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("RandomForestRegressor must be fit before predict")

    def predict(self, X) -> np.ndarray:
        """Mean prediction across trees."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        preds = np.stack([tree.predict(X) for tree in self.trees_], axis=0)
        return preds.mean(axis=0)

    def predict_mean_std(self, X) -> tuple:
        """Mean and standard deviation of predictions.

        The total predictive variance combines the spread of tree means
        (epistemic) with the average within-leaf variance (aleatoric), the
        standard law-of-total-variance decomposition used by SMAC.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        means = []
        variances = []
        for tree in self.trees_:
            mean, var = tree.predict_with_variance(X)
            means.append(mean)
            variances.append(var)
        means_arr = np.stack(means, axis=0)
        var_arr = np.stack(variances, axis=0)
        mean = means_arr.mean(axis=0)
        total_var = means_arr.var(axis=0) + var_arr.mean(axis=0)
        return mean, np.sqrt(np.maximum(total_var, 1e-12))

    def feature_importances(self) -> np.ndarray:
        """Crude split-count feature importance, normalised to sum to one."""
        self._check_fitted()
        assert self.n_features_ is not None
        counts = np.zeros(self.n_features_, dtype=float)

        def _walk(node) -> None:
            if node is None or node.is_leaf:
                return
            counts[node.feature] += node.n_samples
            _walk(node.left)
            _walk(node.right)

        for tree in self.trees_:
            _walk(tree._root)
        total = counts.sum()
        if total == 0:
            return np.full(self.n_features_, 1.0 / self.n_features_)
        return counts / total

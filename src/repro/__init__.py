"""Reproduction of "TUNA: Tuning Unstable and Noisy Cloud Applications" (EuroSys 2025).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the TUNA sampling pipeline and baselines.
* :mod:`repro.optimizers` — SMAC-style, GP and random-search optimizers.
* :mod:`repro.configspace` — typed knob spaces.
* :mod:`repro.systems` — PostgreSQL / Redis / NGINX simulators.
* :mod:`repro.workloads` — TPC-C, epinions, TPC-H, mssales, YCSB, Wikipedia.
* :mod:`repro.cloud` — the simulated cloud (VMs, noise, telemetry, studies).
* :mod:`repro.faults` — stochastic duration models and straggler mitigation.
* :mod:`repro.ml` — from-scratch random forest / GP / preprocessing.
* :mod:`repro.experiments` — per-figure reproduction harnesses.
"""

from repro.core import (
    ExecutionEngine,
    NaiveDistributedSampler,
    TraditionalSampler,
    TunaSampler,
    TuningLoop,
    build_sampler,
    deploy_configuration,
)
from repro.cloud import Cluster, FleetSpec
from repro.faults import SpeculationPolicy, build_fault_model
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import get_workload

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ExecutionEngine",
    "FleetSpec",
    "NaiveDistributedSampler",
    "SpeculationPolicy",
    "TraditionalSampler",
    "TunaSampler",
    "TuningLoop",
    "__version__",
    "build_fault_model",
    "build_optimizer",
    "build_sampler",
    "deploy_configuration",
    "get_system",
    "get_workload",
]

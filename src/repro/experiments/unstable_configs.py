"""Figs. 5, 8 and 9 — unstable configurations and the detection threshold (§3.2.1, §4.2, §5.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud import Cluster
from repro.core import ExecutionEngine, TraditionalSampler, TuningLoop, deploy_configuration
from repro.ml.metrics import relative_range
from repro.optimizers import SMACOptimizer
from repro.systems import PostgreSQLSystem
from repro.workloads import TPCC, Workload


@dataclass
class TransferabilityResult:
    """Fig. 5: initialization-set behaviour plus best-config transferability."""

    #: per initialization config: list of throughputs across the cluster
    initialization_values: Dict[str, List[float]] = field(default_factory=dict)
    #: per tuning run: deployment values of its best config on fresh nodes
    deployment_values: List[List[float]] = field(default_factory=list)
    #: per tuning run: whether the deployed best config is unstable (>30% range)
    deployment_unstable: List[bool] = field(default_factory=list)

    @property
    def n_unstable(self) -> int:
        return int(sum(self.deployment_unstable))

    @property
    def n_runs(self) -> int:
        return len(self.deployment_unstable)

    @property
    def unstable_fraction(self) -> float:
        return self.n_unstable / max(self.n_runs, 1)

    def worst_degradation(self) -> float:
        """Largest relative drop from a run's best node to its worst node."""
        worst = 0.0
        for values in self.deployment_values:
            arr = np.asarray(values, dtype=float)
            worst = max(worst, float(1.0 - arr.min() / arr.max()))
        return worst


def run_transferability_study(
    n_runs: int = 10,
    n_iterations: int = 30,
    n_cluster_nodes: int = 10,
    n_deploy_nodes: int = 10,
    workload: Workload = TPCC,
    seed: int = 0,
) -> TransferabilityResult:
    """Reproduce Fig. 5: tune with traditional sampling, redeploy the winners.

    Each tuning run uses traditional single-node sampling (the §3.2.1 setup),
    then its best configuration is evaluated on fresh nodes; a sizeable
    fraction of those winners turn out to be unstable, some degrading by more
    than 70 % on unlucky nodes.
    """
    system = PostgreSQLSystem()
    result = TransferabilityResult()
    master = np.random.default_rng(seed)

    # Shared initialization set evaluated on every node of one cluster (Fig. 5a).
    init_cluster = Cluster(n_workers=n_cluster_nodes, seed=seed)
    engine = ExecutionEngine(system, workload, seed=seed)
    init_configs = [system.default_configuration()] + system.knob_space.sample_batch(
        # detlint: allow[DET003] -- frozen legacy derivation; retagging it shifts the seeded Fig. 5 trajectories
        9, rng=np.random.default_rng(seed + 1)
    )
    labels = ["default"] + [f"config {chr(ord('A') + i)}" for i in range(9)]
    for label, config in zip(labels, init_configs):
        samples = engine.evaluate_on_many(config, init_cluster.workers)
        result.initialization_values[label] = [s.value for s in samples]

    # Fig. 5b: per-run best configs deployed on new nodes.
    for run_index in range(n_runs):
        run_seed = int(master.integers(0, 2**31 - 1))
        cluster = Cluster(n_workers=n_cluster_nodes, seed=run_seed)
        execution = ExecutionEngine(system, workload, seed=run_seed)
        optimizer = SMACOptimizer(
            system.knob_space,
            seed=run_seed,
            n_initial_design=8,
            n_candidates=120,
            n_trees=10,
        )
        sampler = TraditionalSampler(optimizer, execution, cluster, seed=run_seed)
        tuning = TuningLoop(sampler, n_iterations=n_iterations).run()
        fresh = cluster.provision_fresh_nodes(n_deploy_nodes)
        deployment = deploy_configuration(
            system, workload, tuning.best_config, fresh, seed=run_seed + 1
        )
        result.deployment_values.append(list(deployment.values))
        result.deployment_unstable.append(deployment.relative_range > 0.30)
    return result


@dataclass
class RelativeRangeDistribution:
    """Fig. 8: relative ranges of many configurations sampled on a cluster."""

    relative_ranges: List[float]
    threshold: float = 0.30

    @property
    def stable_fraction(self) -> float:
        arr = np.asarray(self.relative_ranges)
        return float(np.mean(arr <= self.threshold))

    @property
    def unstable_fraction(self) -> float:
        return 1.0 - self.stable_fraction

    def histogram(self, bins: int = 25) -> Tuple[np.ndarray, np.ndarray]:
        return np.histogram(np.asarray(self.relative_ranges), bins=bins, range=(0.0, 2.5))

    def is_bimodal(self) -> bool:
        """Whether a clear trough exists below the threshold (Fig. 8's shape)."""
        arr = np.asarray(self.relative_ranges)
        near_threshold = np.mean((arr > 0.20) & (arr <= 0.40))
        low = np.mean(arr <= 0.20)
        high = np.mean(arr > 0.40)
        return bool(low > near_threshold and high > near_threshold / 2)


def relative_range_distribution(
    n_configs: int = 200,
    n_nodes: int = 10,
    workload: Workload = TPCC,
    seed: int = 0,
    threshold: float = 0.30,
) -> RelativeRangeDistribution:
    """Evaluate random configurations on a cluster and collect relative ranges."""
    system = PostgreSQLSystem()
    cluster = Cluster(n_workers=n_nodes, seed=seed)
    engine = ExecutionEngine(system, workload, seed=seed)
    # detlint: allow[DET003] -- frozen legacy derivation; retagging it shifts the seeded Fig. 8 trajectories
    rng = np.random.default_rng(seed + 1)
    ranges = []
    for _ in range(n_configs):
        config = system.knob_space.sample(rng)
        samples = engine.evaluate_on_many(config, cluster.workers)
        ranges.append(relative_range([s.value for s in samples]))
    return RelativeRangeDistribution(relative_ranges=ranges, threshold=threshold)


@dataclass
class DetectionCurve:
    """Fig. 9: probability of detecting every unstable config vs cluster size."""

    sample_counts: List[int]
    detection_probability: List[float]

    def smallest_cluster_for(self, confidence: float = 0.95) -> Optional[int]:
        for count, probability in zip(self.sample_counts, self.detection_probability):
            if probability >= confidence:
                return count
        return None


def detection_probability_curve(
    unstable_node_fractions: Optional[Sequence[float]] = None,
    n_unstable_configs_per_run: int = 12,
    max_nodes: int = 15,
    n_trials: int = 2_000,
    seed: int = 0,
) -> DetectionCurve:
    """Monte-Carlo version of Fig. 9's detection-probability analysis.

    ``unstable_node_fractions`` describes, for each known unstable
    configuration, the fraction of nodes on which it misbehaves (defaults
    follow the §3.2.1 observation that outliers hit a minority of nodes).  A
    configuration is *detected* at cluster size ``n`` when the ``n`` sampled
    nodes include at least one good and one bad node.
    """
    rng = np.random.default_rng(seed)
    if unstable_node_fractions is None:
        # Calibrated to §3.2.1: the known unstable configurations misbehave on
        # a substantial minority-to-half of the nodes they are run on, which
        # is what makes a 10-node cluster sufficient for ~95% confidence.
        unstable_node_fractions = [0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.50, 0.45]
    fractions = np.asarray(list(unstable_node_fractions), dtype=float)
    if np.any((fractions <= 0) | (fractions >= 1)):
        raise ValueError("unstable node fractions must be in (0, 1)")

    counts = list(range(1, max_nodes + 1))
    probabilities = []
    for n_nodes in counts:
        detected_all = 0
        for _ in range(n_trials):
            config_fractions = rng.choice(fractions, size=n_unstable_configs_per_run)
            all_found = True
            for fraction in config_fractions:
                bad = rng.random(n_nodes) < fraction
                if bad.all() or not bad.any():
                    all_found = False
                    break
            detected_all += int(all_found)
        probabilities.append(detected_all / n_trials)
    return DetectionCurve(sample_counts=counts, detection_probability=probabilities)


def format_report(
    transferability: TransferabilityResult,
    distribution: RelativeRangeDistribution,
    curve: DetectionCurve,
) -> str:
    lines = ["Fig. 5 — transferability of best configs found by traditional sampling", ""]
    lines.append(
        f"  unstable best configs on redeploy: {transferability.n_unstable}/"
        f"{transferability.n_runs} ({transferability.unstable_fraction:.0%}; paper: 13/30)"
    )
    lines.append(
        f"  worst node-to-node degradation   : {transferability.worst_degradation():.0%}"
        " (paper: >70%)"
    )
    lines += ["", "Fig. 8 — relative-range distribution of sampled configs", ""]
    lines.append(
        f"  configs above 30% threshold: {distribution.unstable_fraction:.0%}"
        " (paper: 39% of configs seen during tuning)"
    )
    lines.append(f"  distribution bimodal: {distribution.is_bimodal()}")
    lines += ["", "Fig. 9 — unstable-config detection probability vs cluster size", ""]
    for count, probability in zip(curve.sample_counts, curve.detection_probability):
        lines.append(f"  {count:>3} nodes: {probability:>6.1%}")
    lines.append(
        f"  smallest cluster with ≥95% confidence: {curve.smallest_cluster_for(0.95)}"
        " (paper: 10)"
    )
    return "\n".join(lines)

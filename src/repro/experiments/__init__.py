"""Experiment harness: one module per group of paper figures.

Every function here is deterministic given a seed and returns a plain
dataclass of numbers; the benchmark suite (``benchmarks/``) calls them with
reduced scale and prints the same rows/series the paper reports, and
``EXPERIMENTS.md`` records paper-vs-measured values for each figure.

==========================  =====================================
module                      paper figures
==========================  =====================================
``noise_convergence``       Fig. 2
``cloud_study``             Figs. 3, 4, 6 and Table 1
``unstable_configs``        Figs. 5, 8, 9
``generalization``          Figs. 11a-d, 12, 13, 14, 15
``equal_cost``              Figs. 16, 17
``component_analysis``      Figs. 18, 19, 20
``straggler_study``         straggler mitigation (fault injection)
``resilience_study``        crash-fault recovery (fail-stop injection)
``graydeg_study``           gray-failure tolerance (leases/quarantine)
==========================  =====================================
"""

from repro.experiments.cloud_study import (
    CloudStudySummary,
    MixedFleetComparison,
    MixedFleetSummary,
    format_mixed_fleet_report,
    run_cloud_study,
    run_mixed_fleet_study,
)
from repro.experiments.component_analysis import (
    AblationResult,
    run_gp_optimizer_comparison,
    run_noise_adjuster_ablation,
    run_outlier_detector_ablation,
)
from repro.experiments.equal_cost import (
    EqualCostResult,
    run_equal_cost_comparison,
    run_naive_distributed_comparison,
)
from repro.experiments.generalization import (
    ArmSummary,
    ComparisonResult,
    compare_samplers,
)
from repro.experiments.graydeg_study import (
    GrayArm,
    GrayComparison,
    format_graydeg_report,
    run_graydeg_study,
)
from repro.experiments.noise_convergence import (
    NoiseConvergenceResult,
    run_noise_convergence,
)
from repro.experiments.resilience_study import (
    ResilienceArm,
    ResilienceComparison,
    format_resilience_report,
    run_resilience_study,
)
from repro.experiments.straggler_study import (
    StragglerArm,
    StragglerComparison,
    format_straggler_report,
    run_straggler_study,
)
from repro.experiments.unstable_configs import (
    DetectionCurve,
    RelativeRangeDistribution,
    TransferabilityResult,
    detection_probability_curve,
    relative_range_distribution,
    run_transferability_study,
)

__all__ = [
    "AblationResult",
    "ArmSummary",
    "CloudStudySummary",
    "ComparisonResult",
    "DetectionCurve",
    "EqualCostResult",
    "GrayArm",
    "GrayComparison",
    "MixedFleetComparison",
    "MixedFleetSummary",
    "NoiseConvergenceResult",
    "RelativeRangeDistribution",
    "ResilienceArm",
    "ResilienceComparison",
    "StragglerArm",
    "StragglerComparison",
    "TransferabilityResult",
    "compare_samplers",
    "format_graydeg_report",
    "format_resilience_report",
    "format_straggler_report",
    "detection_probability_curve",
    "format_mixed_fleet_report",
    "relative_range_distribution",
    "run_cloud_study",
    "run_mixed_fleet_study",
    "run_equal_cost_comparison",
    "run_gp_optimizer_comparison",
    "run_graydeg_study",
    "run_naive_distributed_comparison",
    "run_noise_adjuster_ablation",
    "run_noise_convergence",
    "run_outlier_detector_ablation",
    "run_resilience_study",
    "run_straggler_study",
    "run_transferability_study",
]

"""Figs. 3, 4, 6 and Table 1 — the longitudinal cloud measurement study (§3.2),
plus the heterogeneous mixed-fleet tuning scenario built on its per-region /
per-SKU noise profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cloud.cluster import Cluster
from repro.cloud.fleet import FleetSpec
from repro.cloud.study import LongitudinalStudy, StudyResult
from repro.core.execution import ExecutionEngine
from repro.core.samplers import TunaSampler
from repro.core.tuner import TuningLoop, TuningResult
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import get_workload


#: Paper-reported coefficients of variation for Fig. 4 (non-burstable D8s_v5).
PAPER_COVS = {
    "cpu": 0.0017,
    "disk": 0.0036,
    "memory": 0.0492,
    "os": 0.0982,
    "cache": 0.1439,
}

_BENCH_BY_COMPONENT = {
    "cpu": "sysbench-cpu-prime",
    "disk": "fio-randwrite-libaio",
    "memory": "mlc-max-bandwidth",
    "os": "osbench-create-threads",
    "cache": "stress-ng-cache",
}


@dataclass
class CloudStudySummary:
    """Summary statistics for the measurement-study figures."""

    study: StudyResult
    component_cov: Dict[str, float] = field(default_factory=dict)
    burstable_std: Dict[str, float] = field(default_factory=dict)
    nonburstable_std: Dict[str, float] = field(default_factory=dict)
    long_vs_short_std: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def cov_table(self) -> List[Tuple[str, float, float]]:
        """Rows of (component, measured CoV, paper CoV) for Fig. 4."""
        return [
            (component, self.component_cov[component], PAPER_COVS[component])
            for component in ("cpu", "disk", "memory", "os", "cache")
        ]


def run_cloud_study(
    regions: Sequence[str] = ("westus2", "eastus"),
    weeks: int = 12,
    short_vms_per_week: int = 6,
    seed: int = 0,
    include_burstable: bool = True,
) -> CloudStudySummary:
    """Run the (scaled-down) longitudinal study and summarise Figs. 3, 4, 6."""
    study = LongitudinalStudy(
        regions=regions,
        weeks=weeks,
        short_vms_per_week=short_vms_per_week,
        seed=seed,
    ).run(include_burstable=include_burstable)

    summary = CloudStudySummary(study=study)

    # Fig. 4: per-component CoV across all short-lived VMs.
    for component, bench in _BENCH_BY_COMPONENT.items():
        summary.component_cov[component] = study.component_cov(bench)

    # Fig. 3: relative-performance spread, burstable vs non-burstable.
    if include_burstable:
        for bench in ("postgres-pgbench-rw", "redis-benchmark-write"):
            region = regions[0]
            summary.nonburstable_std[bench] = float(
                np.std(study.relative_performance(bench, region, burstable=False))
            )
            summary.burstable_std[bench] = float(
                np.std(study.relative_performance(bench, region, burstable=True))
            )

    # Fig. 6: long-running VM trace vs short-lived VM spread for memory BW.
    region = regions[0]
    long_trace = np.asarray(
        [v for _, v in study.long_lived_trace("mlc-max-bandwidth", region)]
    )
    short_samples = np.asarray(study.short_lived["mlc-max-bandwidth"][region])
    summary.long_vs_short_std["mlc-max-bandwidth"] = (
        float(np.std(long_trace)),
        float(np.std(short_samples)),
    )
    return summary


def format_report(summary: CloudStudySummary) -> str:
    """Text report covering Figs. 3, 4, 6 and the Table 1 scale row."""
    lines = ["Fig. 4 / Table 1 — component-level variability (CoV)", ""]
    lines.append(f"{'component':>10} {'measured':>10} {'paper':>10}")
    for component, measured, paper in summary.cov_table():
        lines.append(f"{component:>10} {measured:>9.2%} {paper:>9.2%}")

    if summary.burstable_std:
        lines += ["", "Fig. 3 — relative-performance spread (std of value/mean)", ""]
        lines.append(f"{'benchmark':>26} {'non-burstable':>14} {'burstable':>11}")
        for bench in summary.nonburstable_std:
            lines.append(
                f"{bench:>26} {summary.nonburstable_std[bench]:>14.3f} "
                f"{summary.burstable_std[bench]:>11.3f}"
            )

    long_std, short_std = summary.long_vs_short_std["mlc-max-bandwidth"]
    lines += [
        "",
        "Fig. 6 — memory bandwidth, long-running VM vs short-lived fleet",
        f"  std over time on one long-running VM : {long_std:.2f} GB/s",
        f"  std across short-lived VMs           : {short_std:.2f} GB/s",
        "",
        "Study scale (Table 1 last row analogue): "
        + ", ".join(f"{k}={v:.0f}" for k, v in summary.study.summary_table().items()),
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Heterogeneous mixed-fleet tuning scenario
# ---------------------------------------------------------------------------

#: Default mixed fleet: current-generation large SKUs in the quiet region,
#: reference SKUs in the noisier one, previous-generation SKUs in the region
#: with the long tail of slow hosts (§6.2).  10 workers, like the paper.
DEFAULT_MIXED_FLEET: Tuple[Tuple[str, str, int], ...] = (
    ("westus2", "Standard_D16s_v5", 3),
    ("eastus", "Standard_D8s_v5", 4),
    ("centralus", "Standard_D8s_v4", 3),
)


@dataclass
class MixedFleetSummary:
    """One placement policy's run over the mixed fleet."""

    placement: str
    result: TuningResult
    makespan_hours: float
    n_samples: int
    samples_per_sku: Dict[str, int] = field(default_factory=dict)
    samples_per_region: Dict[str, int] = field(default_factory=dict)


@dataclass
class MixedFleetComparison:
    """Heterogeneity-aware vs naive FIFO placement on the same mixed fleet."""

    fleet: Tuple[Tuple[str, str, int], ...]
    heterogeneity: MixedFleetSummary
    fifo: MixedFleetSummary

    @property
    def makespan_speedup(self) -> float:
        """FIFO makespan over heterogeneity-aware makespan (>1 = aware wins)."""
        return self.fifo.makespan_hours / self.heterogeneity.makespan_hours


def _run_mixed_fleet(
    placement: str,
    fleet_groups: Sequence[Tuple[str, str, int]],
    system_name: str,
    workload_name: str,
    optimizer_name: str,
    max_samples: int,
    batch_size: int,
    seed: int,
) -> MixedFleetSummary:
    system = get_system(system_name)
    workload = get_workload(workload_name)
    cluster = Cluster(seed=seed, fleet=FleetSpec.of(fleet_groups))
    execution = ExecutionEngine(system, workload, seed=seed)
    optimizer = build_optimizer(optimizer_name, system.knob_space, seed=seed)
    sampler = TunaSampler(
        optimizer, execution, cluster, seed=seed, placement=placement
    )
    result = TuningLoop(
        sampler, max_samples=max_samples, batch_size=batch_size
    ).run()

    per_sku: Dict[str, int] = {}
    per_region: Dict[str, int] = {}
    for sample in sampler.datastore.all_samples():
        vm = cluster.worker(sample.worker_id)
        per_sku[vm.sku.name] = per_sku.get(vm.sku.name, 0) + 1
        per_region[vm.region.name] = per_region.get(vm.region.name, 0) + 1
    return MixedFleetSummary(
        placement=placement,
        result=result,
        makespan_hours=result.wall_clock_hours,
        n_samples=result.n_samples,
        samples_per_sku=per_sku,
        samples_per_region=per_region,
    )


def run_mixed_fleet_study(
    fleet_groups: Sequence[Tuple[str, str, int]] = DEFAULT_MIXED_FLEET,
    system_name: str = "postgres",
    workload_name: str = "tpcc",
    optimizer_name: str = "random",
    max_samples: int = 80,
    batch_size: int = 10,
    seed: int = 23,
) -> MixedFleetComparison:
    """Tune over a heterogeneous multi-region fleet, both placement policies.

    The same seeds, fleet, optimizer and sample budget are used for both
    runs; only the scheduler's placement policy differs, so the makespan gap
    is attributable to heterogeneity-aware placement (prefer free fast
    workers, spread samples across regions) versus naive round-robin.
    """
    kwargs = dict(
        fleet_groups=fleet_groups,
        system_name=system_name,
        workload_name=workload_name,
        optimizer_name=optimizer_name,
        max_samples=max_samples,
        batch_size=batch_size,
        seed=seed,
    )
    return MixedFleetComparison(
        fleet=tuple(tuple(group) for group in fleet_groups),
        heterogeneity=_run_mixed_fleet("heterogeneity", **kwargs),
        fifo=_run_mixed_fleet("fifo", **kwargs),
    )


def format_mixed_fleet_report(comparison: MixedFleetComparison) -> str:
    """Text report for the mixed-fleet placement comparison."""
    lines = ["Heterogeneous mixed-region fleet — placement comparison", ""]
    lines.append("fleet: " + ", ".join(
        f"{count}x {sku}@{region}" for region, sku, count in comparison.fleet
    ))
    lines.append("")
    lines.append(
        f"{'placement':>14} {'samples':>8} {'makespan (h)':>13}  samples per SKU"
    )
    for summary in (comparison.heterogeneity, comparison.fifo):
        per_sku = ", ".join(
            f"{sku}={count}" for sku, count in sorted(summary.samples_per_sku.items())
        )
        lines.append(
            f"{summary.placement:>14} {summary.n_samples:>8} "
            f"{summary.makespan_hours:>13.3f}  {per_sku}"
        )
    lines.append("")
    lines.append(
        f"makespan speedup of heterogeneity-aware over FIFO: "
        f"{comparison.makespan_speedup:.2f}x"
    )
    return "\n".join(lines)

"""Figs. 3, 4, 6 and Table 1 — the longitudinal cloud measurement study (§3.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.study import LongitudinalStudy, StudyResult


#: Paper-reported coefficients of variation for Fig. 4 (non-burstable D8s_v5).
PAPER_COVS = {
    "cpu": 0.0017,
    "disk": 0.0036,
    "memory": 0.0492,
    "os": 0.0982,
    "cache": 0.1439,
}

_BENCH_BY_COMPONENT = {
    "cpu": "sysbench-cpu-prime",
    "disk": "fio-randwrite-libaio",
    "memory": "mlc-max-bandwidth",
    "os": "osbench-create-threads",
    "cache": "stress-ng-cache",
}


@dataclass
class CloudStudySummary:
    """Summary statistics for the measurement-study figures."""

    study: StudyResult
    component_cov: Dict[str, float] = field(default_factory=dict)
    burstable_std: Dict[str, float] = field(default_factory=dict)
    nonburstable_std: Dict[str, float] = field(default_factory=dict)
    long_vs_short_std: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def cov_table(self) -> List[Tuple[str, float, float]]:
        """Rows of (component, measured CoV, paper CoV) for Fig. 4."""
        return [
            (component, self.component_cov[component], PAPER_COVS[component])
            for component in ("cpu", "disk", "memory", "os", "cache")
        ]


def run_cloud_study(
    regions: Sequence[str] = ("westus2", "eastus"),
    weeks: int = 12,
    short_vms_per_week: int = 6,
    seed: int = 0,
    include_burstable: bool = True,
) -> CloudStudySummary:
    """Run the (scaled-down) longitudinal study and summarise Figs. 3, 4, 6."""
    study = LongitudinalStudy(
        regions=regions,
        weeks=weeks,
        short_vms_per_week=short_vms_per_week,
        seed=seed,
    ).run(include_burstable=include_burstable)

    summary = CloudStudySummary(study=study)

    # Fig. 4: per-component CoV across all short-lived VMs.
    for component, bench in _BENCH_BY_COMPONENT.items():
        summary.component_cov[component] = study.component_cov(bench)

    # Fig. 3: relative-performance spread, burstable vs non-burstable.
    if include_burstable:
        for bench in ("postgres-pgbench-rw", "redis-benchmark-write"):
            region = regions[0]
            summary.nonburstable_std[bench] = float(
                np.std(study.relative_performance(bench, region, burstable=False))
            )
            summary.burstable_std[bench] = float(
                np.std(study.relative_performance(bench, region, burstable=True))
            )

    # Fig. 6: long-running VM trace vs short-lived VM spread for memory BW.
    region = regions[0]
    long_trace = np.asarray(
        [v for _, v in study.long_lived_trace("mlc-max-bandwidth", region)]
    )
    short_samples = np.asarray(study.short_lived["mlc-max-bandwidth"][region])
    summary.long_vs_short_std["mlc-max-bandwidth"] = (
        float(np.std(long_trace)),
        float(np.std(short_samples)),
    )
    return summary


def format_report(summary: CloudStudySummary) -> str:
    """Text report covering Figs. 3, 4, 6 and the Table 1 scale row."""
    lines = ["Fig. 4 / Table 1 — component-level variability (CoV)", ""]
    lines.append(f"{'component':>10} {'measured':>10} {'paper':>10}")
    for component, measured, paper in summary.cov_table():
        lines.append(f"{component:>10} {measured:>9.2%} {paper:>9.2%}")

    if summary.burstable_std:
        lines += ["", "Fig. 3 — relative-performance spread (std of value/mean)", ""]
        lines.append(f"{'benchmark':>26} {'non-burstable':>14} {'burstable':>11}")
        for bench in summary.nonburstable_std:
            lines.append(
                f"{bench:>26} {summary.nonburstable_std[bench]:>14.3f} "
                f"{summary.burstable_std[bench]:>11.3f}"
            )

    long_std, short_std = summary.long_vs_short_std["mlc-max-bandwidth"]
    lines += [
        "",
        "Fig. 6 — memory bandwidth, long-running VM vs short-lived fleet",
        f"  std over time on one long-running VM : {long_std:.2f} GB/s",
        f"  std across short-lived VMs           : {short_std:.2f} GB/s",
        "",
        "Study scale (Table 1 last row analogue): "
        + ", ".join(f"{k}={v:.0f}" for k, v in summary.study.summary_table().items()),
    ]
    return "\n".join(lines)

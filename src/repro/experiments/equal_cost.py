"""Figs. 16 and 17 — equal-cost comparisons (§6.5).

Two alternatives to the equal-*time* comparison of §6.1-§6.4:

* **Extended traditional sampling** (Fig. 16): traditional sampling is given
  as many *samples* as TUNA used, i.e. it simply runs for more iterations.
  More single-node samples only exacerbate instability.
* **Naive distributed sampling** (Fig. 17): every configuration is evaluated
  on every node of the cluster.  It is robust but converges far more slowly
  per sample than TUNA's multi-fidelity schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cloud import Cluster
from repro.core import (
    ExecutionEngine,
    TuningLoop,
    build_sampler,
    deploy_configuration,
)
from repro.experiments.generalization import ArmSummary
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import get_workload


@dataclass
class EqualCostResult:
    """Fig. 16: TUNA vs extended traditional sampling at equal sample count."""

    workload: str
    sample_budget: int
    higher_is_better: bool
    arms: Dict[str, ArmSummary] = field(default_factory=dict)

    def std_reduction(self) -> float:
        return 1.0 - self.arms["tuna"].mean_std / self.arms["traditional"].mean_std

    def mean_improvement(self) -> float:
        tuna = self.arms["tuna"].mean_performance
        trad = self.arms["traditional"].mean_performance
        return tuna / trad - 1.0 if self.higher_is_better else trad / tuna - 1.0


def run_equal_cost_comparison(
    system_name: str = "postgres",
    workload_name: str = "tpcc",
    sample_budget: int = 150,
    n_runs: int = 3,
    n_cluster_nodes: int = 10,
    n_deploy_nodes: int = 10,
    seed: int = 0,
    optimizer_kwargs: Optional[dict] = None,
) -> EqualCostResult:
    """Fig. 16: both methodologies consume the same number of samples."""
    workload = get_workload(workload_name)
    optimizer_kwargs = dict(optimizer_kwargs or {})
    optimizer_kwargs.setdefault("n_candidates", 150)
    optimizer_kwargs.setdefault("n_trees", 12)

    result = EqualCostResult(
        workload=workload_name,
        sample_budget=sample_budget,
        higher_is_better=workload.higher_is_better,
    )
    master = np.random.default_rng(seed)
    run_seeds = [int(master.integers(0, 2**31 - 1)) for _ in range(n_runs)]

    for sampler_name in ("tuna", "traditional"):
        arm = ArmSummary(name=sampler_name)
        for run_seed in run_seeds:
            system = get_system(system_name)
            cluster = Cluster(n_workers=n_cluster_nodes, seed=run_seed)
            execution = ExecutionEngine(system, workload, seed=run_seed)
            optimizer = build_optimizer(
                "smac", system.knob_space, seed=run_seed, **optimizer_kwargs
            )
            extra = (
                {"budgets": (1, 3, min(10, n_cluster_nodes))}
                if sampler_name == "tuna"
                else {}
            )
            sampler = build_sampler(
                sampler_name, optimizer, execution, cluster, seed=run_seed, **extra
            )
            tuning = TuningLoop(sampler, max_samples=sample_budget).run()
            fresh = cluster.provision_fresh_nodes(n_deploy_nodes)
            deployment = deploy_configuration(
                system, workload, tuning.best_config, fresh, seed=run_seed + 13
            )
            arm.run_means.append(deployment.mean)
            arm.run_stds.append(deployment.std)
            arm.run_crashes.append(deployment.crashes)
            arm.run_unstable.append(deployment.relative_range > 0.30)
        result.arms[sampler_name] = arm
    return result


@dataclass
class NaiveDistributedComparison:
    """Fig. 17: per-sample convergence of TUNA vs naive distributed sampling."""

    sample_budget: int
    #: best-so-far catalog value indexed by cumulative samples, per arm/run
    tuna_traces: List[np.ndarray] = field(default_factory=list)
    naive_traces: List[np.ndarray] = field(default_factory=list)
    higher_is_better: bool = True

    def _mean_trace(self, traces: List[np.ndarray]) -> np.ndarray:
        length = min(len(t) for t in traces)
        return np.mean([t[:length] for t in traces], axis=0)

    def samples_to_match_naive(self) -> float:
        """Samples TUNA needs to reach the naive arm's final performance."""
        naive = self._mean_trace(self.naive_traces)
        tuna = self._mean_trace(self.tuna_traces)
        target = naive[-1]
        if self.higher_is_better:
            reached = np.flatnonzero(tuna >= target)
        else:
            reached = np.flatnonzero(tuna <= target)
        return float(reached[0] + 1) if reached.size else float(len(tuna))

    def convergence_speedup(self) -> float:
        """How many times fewer samples TUNA needs (paper: ≈2.47x)."""
        naive = self._mean_trace(self.naive_traces)
        return len(naive) / self.samples_to_match_naive()


def run_naive_distributed_comparison(
    system_name: str = "postgres",
    workload_name: str = "tpcc",
    sample_budget: int = 200,
    n_runs: int = 3,
    n_cluster_nodes: int = 10,
    seed: int = 0,
    optimizer_kwargs: Optional[dict] = None,
) -> NaiveDistributedComparison:
    """Fig. 17: compare per-sample convergence of TUNA and naive distributed."""
    workload = get_workload(workload_name)
    optimizer_kwargs = dict(optimizer_kwargs or {})
    optimizer_kwargs.setdefault("n_candidates", 150)
    optimizer_kwargs.setdefault("n_trees", 12)

    comparison = NaiveDistributedComparison(
        sample_budget=sample_budget, higher_is_better=workload.higher_is_better
    )
    master = np.random.default_rng(seed)
    run_seeds = [int(master.integers(0, 2**31 - 1)) for _ in range(n_runs)]

    for sampler_name, bucket in (
        ("tuna", comparison.tuna_traces),
        ("naive", comparison.naive_traces),
    ):
        for run_seed in run_seeds:
            system = get_system(system_name)
            cluster = Cluster(n_workers=n_cluster_nodes, seed=run_seed)
            execution = ExecutionEngine(system, workload, seed=run_seed)
            optimizer = build_optimizer(
                "smac", system.knob_space, seed=run_seed, **optimizer_kwargs
            )
            extra = (
                {"budgets": (1, 3, min(10, n_cluster_nodes))}
                if sampler_name == "tuna"
                else {}
            )
            sampler = build_sampler(
                sampler_name, optimizer, execution, cluster, seed=run_seed, **extra
            )
            tuning = TuningLoop(sampler, max_samples=sample_budget).run()
            # Per-sample best-so-far trace of reported catalog values.
            trace = []
            best = None
            for report in tuning.history:
                value = report.reported_value
                if best is None:
                    best = value
                elif workload.higher_is_better:
                    best = max(best, value)
                else:
                    best = min(best, value)
                trace.extend([best] * report.n_new_samples)
            bucket.append(np.asarray(trace[:sample_budget], dtype=float))
    return comparison


def format_report(
    equal_cost: EqualCostResult, naive: NaiveDistributedComparison
) -> str:
    lines = [
        f"Fig. 16 — equal-cost comparison ({equal_cost.sample_budget} samples each)",
        "",
        f"{'arm':>14} {'mean':>12} {'avg std':>10} {'unstable':>9}",
    ]
    for arm in equal_cost.arms.values():
        lines.append(
            f"{arm.name:>14} {arm.mean_performance:>12.1f} {arm.mean_std:>10.1f} "
            f"{arm.n_unstable:>9d}"
        )
    lines += [
        "",
        f"  TUNA mean improvement over extended traditional: {equal_cost.mean_improvement():+.1%}"
        " (paper: +9.2%)",
        f"  TUNA std reduction: {equal_cost.std_reduction():.0%} (paper: 87.8%)",
        "",
        "Fig. 17 — convergence vs naive distributed sampling",
        f"  samples for TUNA to match naive distributed: {naive.samples_to_match_naive():.0f}"
        f" of {naive.sample_budget}",
        f"  convergence speed-up: {naive.convergence_speedup():.2f}x (paper: 2.47x)",
    ]
    return "\n".join(lines)

"""Fig. 2 — impact of synthetic sampling noise on tuner convergence (§3.1).

The paper runs SMAC on PostgreSQL/epinions on isolated bare-metal nodes and
multiplies every reported measurement by a Gaussian factor ``N(1, sigma^2)``
for sigma in {0 %, 5 %, 10 %}.  With 5 % noise the tuner needs ≈2.5× more
iterations to reach the noise-free optimum, and ≈4.35× with 10 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cloud import CLOUDLAB_WISCONSIN, VirtualMachine, get_sku
from repro.optimizers import SMACOptimizer, objective_to_cost
from repro.systems import PostgreSQLSystem
from repro.workloads import EPINIONS, Workload


@dataclass
class NoiseConvergenceResult:
    """Best-so-far traces per noise level plus time-to-optimal ratios."""

    noise_levels: List[float]
    #: noise level -> per-run matrix of best-so-far *noise-free* performance
    traces: Dict[float, np.ndarray] = field(default_factory=dict)

    def mean_trace(self, noise: float) -> np.ndarray:
        return self.traces[noise].mean(axis=0)

    def iterations_to_reach(self, noise: float, target: float) -> float:
        """Mean number of iterations needed to reach ``target`` performance."""
        counts = []
        for run in self.traces[noise]:
            reached = np.flatnonzero(run >= target)
            counts.append(float(reached[0] + 1) if reached.size else float(len(run)))
        return float(np.mean(counts))

    def time_to_optimal_ratio(self, noise: float, reference_fraction: float = 0.95) -> float:
        """Slow-down of ``noise`` versus the noise-free tuner (§3.1's metric)."""
        clean = self.mean_trace(0.0)
        target = reference_fraction * clean[-1]
        baseline = self.iterations_to_reach(0.0, target)
        return self.iterations_to_reach(noise, target) / max(baseline, 1.0)


def run_noise_convergence(
    noise_levels: Sequence[float] = (0.0, 0.05, 0.10),
    n_runs: int = 10,
    n_iterations: int = 60,
    workload: Workload = EPINIONS,
    seed: int = 0,
    smac_kwargs: Optional[dict] = None,
) -> NoiseConvergenceResult:
    """Reproduce Fig. 2 on the simulated bare-metal testbed.

    The tuner sees ``value * N(1, noise^2)``; the recorded trace keeps the
    *noise-free* value of the best configuration believed best so far, which
    is what the paper plots.
    """
    if 0.0 not in noise_levels:
        raise ValueError("noise_levels must include 0.0 as the reference")
    system = PostgreSQLSystem()
    sku = get_sku("c220g5")
    smac_kwargs = dict(smac_kwargs or {})
    smac_kwargs.setdefault("n_initial_design", 10)
    smac_kwargs.setdefault("n_candidates", 150)
    smac_kwargs.setdefault("n_trees", 12)

    result = NoiseConvergenceResult(noise_levels=list(noise_levels))
    master = np.random.default_rng(seed)
    run_seeds = [int(master.integers(0, 2**31 - 1)) for _ in range(n_runs)]

    for noise in noise_levels:
        runs = []
        for run_index in range(n_runs):
            # detlint: allow[DET003] -- frozen legacy derivation; retagging it shifts the seeded Fig. 2 trajectories
            rng = np.random.default_rng(run_seeds[run_index] + int(noise * 1_000))
            vm = VirtualMachine(
                "baremetal-0", sku, CLOUDLAB_WISCONSIN, seed=run_seeds[run_index]
            )
            optimizer = SMACOptimizer(
                system.knob_space, seed=run_seeds[run_index], **smac_kwargs
            )
            best_clean = -np.inf
            trace = []
            for _ in range(n_iterations):
                config = optimizer.ask()
                evaluation = system.run(config, workload, vm, rng=rng)
                clean_value = (
                    evaluation.objective_value
                    if not evaluation.crashed
                    else workload.baseline_performance * 0.05
                )
                noisy_value = clean_value * float(rng.normal(1.0, noise)) if noise > 0 else clean_value
                optimizer.tell(
                    config, objective_to_cost(noisy_value, workload.objective)
                )
                best_clean = max(best_clean, clean_value)
                trace.append(best_clean)
            runs.append(trace)
        result.traces[noise] = np.asarray(runs, dtype=float)
    return result


def format_report(result: NoiseConvergenceResult) -> str:
    """Text table mirroring Fig. 2's takeaways."""
    lines = ["Fig. 2 — tuner convergence under synthetic sampling noise", ""]
    clean_final = result.mean_trace(0.0)[-1]
    lines.append(f"{'noise':>8} {'final best (tx/s)':>20} {'time-to-optimal ratio':>24}")
    for noise in result.noise_levels:
        final = result.mean_trace(noise)[-1]
        ratio = result.time_to_optimal_ratio(noise) if noise > 0 else 1.0
        lines.append(f"{noise:>7.0%} {final:>20.0f} {ratio:>24.2f}")
    lines.append("")
    lines.append(f"(noise-free final best = {clean_final:.0f} tx/s)")
    return "\n".join(lines)

"""Crash-resilience study: retry/backoff recovery under fail-stop faults.

The straggler study (PR 4) injected *slowness*; this study injects *loss*.
Workers suffer seeded fail-stop crashes — transient mid-run errors and
permanent node deaths — through the :mod:`repro.faults` crash models, and
the same tuning workload is run twice on the same seeds, fleet, optimizer
and **accepted**-sample budget:

* a **fault-free** arm (no crash model): the reference makespan;
* a **crash-with-recovery** arm (active crash model + retry policy): failed
  runs are resubmitted to a different worker with capped exponential
  backoff, dead workers are drained from the fleet, and exhausted retry
  budgets surface as crash-penalty samples.

Because both arms stop at the same accepted-sample count, the makespan gap
is the *price of the crashes themselves* — the recovery machinery's job is
to keep that price small (the benchmark gates it at <= 20 %) rather than
letting a handful of lost runs serialize the whole study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cloud.cluster import Cluster
from repro.core.async_engine import RetryPolicy
from repro.core.execution import ExecutionEngine
from repro.core.samplers import TunaSampler
from repro.core.tuner import TuningLoop, TuningResult
from repro.faults import build_crash_model
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import get_workload


@dataclass
class ResilienceArm:
    """One arm of the study: a tuning run under a fixed crash setting."""

    label: str
    crash: str
    result: TuningResult
    makespan_hours: float
    n_samples: int
    stats: Dict = field(default_factory=dict)


@dataclass
class ResilienceComparison:
    """Crash-with-recovery vs fault-free on the same seeds and budget."""

    crash: str
    crash_kwargs: Dict
    fault_free: ResilienceArm
    recovered: ResilienceArm

    @property
    def makespan_retention(self) -> float:
        """Fault-free makespan over recovered makespan (1.0 = crashes cost
        nothing; the benchmark gates this at >= 0.8, i.e. <= 20 % loss)."""
        return self.fault_free.makespan_hours / self.recovered.makespan_hours


def _run_arm(
    label: str,
    crash: Optional[str],
    crash_kwargs: Dict,
    retry_policy: Optional[RetryPolicy],
    n_workers: int,
    batch_size: int,
    max_samples: int,
    seed: int,
    system_name: str,
    workload_name: str,
    optimizer_name: str,
    budgets: Tuple[int, ...],
) -> ResilienceArm:
    system = get_system(system_name)
    workload = get_workload(workload_name)
    cluster = Cluster(n_workers=n_workers, seed=seed)
    execution = ExecutionEngine(system, workload, seed=seed)
    optimizer = build_optimizer(optimizer_name, system.knob_space, seed=seed)
    sampler = TunaSampler(
        optimizer, execution, cluster, seed=seed, budgets=budgets
    )
    # A freshly built model per arm with the same master seed: both arms
    # face the same crash *process*; trajectories diverge only once a
    # failure changes the submission sequence.
    crash_model = (
        build_crash_model(crash, seed=seed, **crash_kwargs) if crash else None
    )
    result = TuningLoop(
        sampler,
        max_samples=max_samples,
        batch_size=batch_size,
        crash_model=crash_model,
        retry_policy=retry_policy,
    ).run()
    return ResilienceArm(
        label=label,
        crash=crash or "none",
        result=result,
        makespan_hours=result.wall_clock_hours,
        n_samples=result.n_samples,
        stats=dict(result.engine_stats or {}),
    )


#: Default crash regime for the study: a noticeable transient error rate
#: (8 % of submissions fail mid-run) — enough that an unprotected study
#: would lose a meaningful fraction of its measurements, while a working
#: retry policy absorbs nearly all of it, since a retried run costs one
#: extra evaluation on an otherwise-idle worker rather than a serialized
#: re-pass at the end.
DEFAULT_CRASH_REGIME: Dict = {"rate": 0.08}


def run_resilience_study(
    crash: str = "transient",
    crash_kwargs: Optional[Dict] = None,
    retry_policy: Optional[RetryPolicy] = None,
    n_workers: int = 10,
    batch_size: int = 8,
    max_samples: int = 60,
    seed: int = 37,
    system_name: str = "postgres",
    workload_name: str = "tpcc",
    optimizer_name: str = "random",
    budgets: Tuple[int, ...] = (1, 3, 6),
) -> ResilienceComparison:
    """Run the fault-free vs crash-with-recovery comparison.

    ``batch_size < n_workers`` on purpose: the in-flight watermark leaves a
    couple of workers idle on average, which is the capacity retried runs
    land on — the same headroom the speculation machinery races on.
    """
    if crash_kwargs is None and crash == "transient":
        crash_kwargs = DEFAULT_CRASH_REGIME
    kwargs = dict(
        crash_kwargs=dict(crash_kwargs or {}),
        n_workers=n_workers,
        batch_size=batch_size,
        max_samples=max_samples,
        seed=seed,
        system_name=system_name,
        workload_name=workload_name,
        optimizer_name=optimizer_name,
        budgets=budgets,
    )
    fault_free = _run_arm("fault-free", None, retry_policy=None, **kwargs)
    recovered = _run_arm(
        "crash+recovery",
        crash,
        retry_policy=retry_policy if retry_policy is not None else RetryPolicy(),
        **kwargs,
    )
    return ResilienceComparison(
        crash=crash,
        crash_kwargs=dict(crash_kwargs or {}),
        fault_free=fault_free,
        recovered=recovered,
    )


def format_resilience_report(comparison: ResilienceComparison) -> str:
    """Text report for the crash-resilience comparison."""
    lines = [
        f"Crash resilience under the {comparison.crash!r} crash model",
        "",
        f"{'arm':>16} {'samples':>8} {'makespan (h)':>13}  recovery activity",
    ]
    for arm in (comparison.fault_free, comparison.recovered):
        stats = arm.stats
        activity = (
            "-"
            if arm.crash == "none"
            else (
                f"{stats.get('n_failures', 0)} failures, "
                f"{stats.get('n_retries', 0)} retries, "
                f"{stats.get('n_exhausted', 0)} exhausted, "
                f"{stats.get('n_workers_dead', 0)} workers dead"
            )
        )
        lines.append(
            f"{arm.label:>16} {arm.n_samples:>8} {arm.makespan_hours:>13.3f}  {activity}"
        )
    lines.append("")
    lines.append(
        f"makespan retained under crashes: "
        f"{comparison.makespan_retention:.1%} of fault-free"
    )
    return "\n".join(lines)

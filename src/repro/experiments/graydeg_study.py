"""Gray-degradation study: leases, fencing and quarantine under gray faults.

The resilience study (PR 5) injected *loss* — fail-stop crashes that
announce themselves.  This study injects the faults that do not: workers
that stall, network partitions that swallow a report for hours and then
deliver it from a worker everyone gave up on, and corrupted measurements
that come back as NaN/Inf garbage.  The same tuning workload is run twice
on the same seeds, fleet, optimizer and **accepted**-sample budget:

* a **fault-free** arm (no gray models): the reference makespan;
* a **gray-recovered** arm (composite stall + partition + corruption,
  liveness leases armed, result validation on, retries budgeted): silent
  workers are suspected when their lease expires, their slots fenced and
  re-submitted elsewhere, stale zombie reports deterministically rejected,
  and garbage values quarantined and re-measured.

Both arms stop at the same accepted-sample count, so the makespan gap is
the *price of the gray faults themselves*.  Unprotected, a single silent
worker serializes the study behind an hours-long silence; the lease/fence/
quarantine machinery bounds every such episode at one lease timeout plus
one re-measurement, which is what the benchmark gates (>= 70 % retention
under a deliberately heavy composite regime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cloud.cluster import Cluster
from repro.core.async_engine import RetryPolicy
from repro.core.execution import ExecutionEngine
from repro.core.samplers import TunaSampler
from repro.core.tuner import TuningLoop, TuningResult
from repro.core.validation import CorruptResultModel, ResultValidator
from repro.faults import (
    CompositePartitionModel,
    PartitionModel,
    PartitionOutageModel,
    StallModel,
)
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import get_workload


@dataclass
class GrayArm:
    """One arm of the study: a tuning run under a fixed gray regime."""

    label: str
    result: TuningResult
    makespan_hours: float
    n_samples: int
    stats: Dict = field(default_factory=dict)


@dataclass
class GrayComparison:
    """Gray-recovered vs fault-free on the same seeds and budget."""

    regime: Dict
    fault_free: GrayArm
    recovered: GrayArm

    @property
    def makespan_retention(self) -> float:
        """Fault-free makespan over recovered makespan (1.0 = the gray
        faults cost nothing; the benchmark gates this at >= 0.7)."""
        return self.fault_free.makespan_hours / self.recovered.makespan_hours


#: Default composite regime: enough gray trouble that an unprotected study
#: would stall behind silent workers and re-run garbage measurements, while
#: the lease/fence/quarantine machinery caps each episode.  Stalls are
#: frequent-but-short, outages rare-but-long (the case leases exist for),
#: and one in twenty measurements comes back as garbage.
DEFAULT_GRAY_REGIME: Dict = {
    "stall_rate": 0.05,
    "mean_stall_hours": 0.1,
    "outage_rate": 0.03,
    "mean_outage_hours": 2.0,
    "corruption_rate": 0.05,
}


def _build_partition_model(seed: int, regime: Dict) -> PartitionModel:
    return CompositePartitionModel(
        [
            StallModel(
                seed=seed,
                rate=regime["stall_rate"],
                mean_stall_hours=regime["mean_stall_hours"],
            ),
            PartitionOutageModel(
                seed=seed + 1,
                rate=regime["outage_rate"],
                mean_outage_hours=regime["mean_outage_hours"],
            ),
        ]
    )


def _run_arm(
    label: str,
    gray: bool,
    regime: Dict,
    lease_timeout: float,
    retry_policy: Optional[RetryPolicy],
    n_workers: int,
    batch_size: int,
    max_samples: int,
    seed: int,
    system_name: str,
    workload_name: str,
    optimizer_name: str,
    budgets: Tuple[int, ...],
) -> GrayArm:
    system = get_system(system_name)
    workload = get_workload(workload_name)
    cluster = Cluster(n_workers=n_workers, seed=seed)
    execution = ExecutionEngine(system, workload, seed=seed)
    optimizer = build_optimizer(optimizer_name, system.knob_space, seed=seed)
    sampler = TunaSampler(
        optimizer, execution, cluster, seed=seed, budgets=budgets
    )
    # Fresh models per arm with the same master seed: both arms face the
    # same gray-fault *process*; trajectories diverge only once a silence
    # or a quarantine changes the submission sequence.
    result = TuningLoop(
        sampler,
        max_samples=max_samples,
        batch_size=batch_size,
        partition_model=_build_partition_model(seed, regime) if gray else None,
        lease_timeout=lease_timeout if gray else None,
        validation=ResultValidator() if gray else None,
        corruption_model=(
            CorruptResultModel(seed=seed + 2, rate=regime["corruption_rate"])
            if gray
            else None
        ),
        retry_policy=retry_policy if gray else None,
    ).run()
    return GrayArm(
        label=label,
        result=result,
        makespan_hours=result.wall_clock_hours,
        n_samples=result.n_samples,
        stats=dict(result.engine_stats or {}),
    )


def run_graydeg_study(
    regime: Optional[Dict] = None,
    lease_timeout: float = 0.15,
    retry_policy: Optional[RetryPolicy] = None,
    n_workers: int = 10,
    batch_size: int = 8,
    max_samples: int = 60,
    seed: int = 37,
    system_name: str = "postgres",
    workload_name: str = "tpcc",
    optimizer_name: str = "random",
    budgets: Tuple[int, ...] = (1, 3, 6),
) -> GrayComparison:
    """Run the fault-free vs gray-recovered comparison.

    The default ``lease_timeout`` (0.15 h) is deliberately longer than the
    mean stall (0.1 h) and far shorter than the mean outage (2 h): ordinary
    stalls mostly ride out their lease, real partitions get fenced early
    enough that each episode costs one lease plus one re-measurement
    instead of the whole silence.
    """
    regime = dict(DEFAULT_GRAY_REGIME if regime is None else regime)
    kwargs = dict(
        regime=regime,
        lease_timeout=lease_timeout,
        n_workers=n_workers,
        batch_size=batch_size,
        max_samples=max_samples,
        seed=seed,
        system_name=system_name,
        workload_name=workload_name,
        optimizer_name=optimizer_name,
        budgets=budgets,
    )
    fault_free = _run_arm("fault-free", False, retry_policy=None, **kwargs)
    recovered = _run_arm(
        "gray+recovery",
        True,
        retry_policy=retry_policy if retry_policy is not None else RetryPolicy(),
        **kwargs,
    )
    return GrayComparison(
        regime=regime, fault_free=fault_free, recovered=recovered
    )


def format_graydeg_report(comparison: GrayComparison) -> str:
    """Text report for the gray-degradation comparison."""
    lines = [
        "Gray-failure tolerance under the composite stall+partition+"
        "corruption regime",
        "",
        f"{'arm':>14} {'samples':>8} {'makespan (h)':>13}  gray activity",
    ]
    for arm in (comparison.fault_free, comparison.recovered):
        stats = arm.stats
        activity = (
            "-"
            if not stats
            else (
                f"{stats.get('n_delayed', 0)} delayed, "
                f"{stats.get('n_suspected', 0)} suspected, "
                f"{stats.get('n_zombies_rejected', 0)} zombies rejected, "
                f"{stats.get('n_quarantined', 0)} quarantined"
            )
        )
        lines.append(
            f"{arm.label:>14} {arm.n_samples:>8} {arm.makespan_hours:>13.3f}  {activity}"
        )
    lines.append("")
    lines.append(
        f"makespan retained under gray faults: "
        f"{comparison.makespan_retention:.1%} of fault-free"
    )
    return "\n".join(lines)

"""Figs. 18, 19 and 20 — component analysis (§6.6).

* Fig. 18 swaps SMAC for a Gaussian-process optimizer to show TUNA is
  optimizer-agnostic; it reuses the generic generalization harness.
* Fig. 19 ablates the noise-adjuster model: convergence speed (19a) and the
  relative error between the values reported to the optimizer and the
  max-budget ground truth (19b).
* Fig. 20 ablates the outlier detector: without it the optimizer finds
  slightly faster but dramatically less stable configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.cloud import Cluster
from repro.core import (
    ExecutionEngine,
    TunaSampler,
    TuningLoop,
    deploy_configuration,
)
from repro.experiments.generalization import ArmSummary, ComparisonResult, compare_samplers
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import get_workload


def run_gp_optimizer_comparison(
    workload_name: str = "tpcc",
    n_runs: int = 3,
    n_iterations: int = 35,
    seed: int = 0,
) -> ComparisonResult:
    """Fig. 18: TUNA vs traditional sampling under a Gaussian-process optimizer."""
    return compare_samplers(
        system_name="postgres",
        workload_name=workload_name,
        optimizer_name="gp",
        n_runs=n_runs,
        n_iterations=n_iterations,
        seed=seed,
        optimizer_kwargs={"n_candidates": 200},
    )


@dataclass
class AblationResult:
    """Result of a TUNA-vs-TUNA-without-a-component ablation."""

    component: str
    workload: str
    higher_is_better: bool
    arms: Dict[str, ArmSummary] = field(default_factory=dict)
    #: Fig. 19a/b extras — per arm: best-so-far traces and reporting errors
    traces: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    reporting_errors: Dict[str, List[float]] = field(default_factory=dict)

    def variability_ratio(self) -> float:
        """How much more variable the ablated system's configs are (Fig. 20)."""
        full = self.arms["tuna"].mean_std
        ablated = self.arms[f"tuna-no-{self.component}"].mean_std
        return ablated / max(full, 1e-9)

    def mean_reporting_error(self, arm: str) -> float:
        errors = self.reporting_errors.get(arm, [])
        return float(np.mean(errors)) if errors else float("nan")

    def error_reduction(self) -> float:
        """Fig. 19b: fraction of reporting error removed by the noise adjuster."""
        with_model = self.mean_reporting_error("tuna")
        without = self.mean_reporting_error(f"tuna-no-{self.component}")
        if not np.isfinite(with_model) or not np.isfinite(without) or without == 0:
            return float("nan")
        return 1.0 - with_model / without

    def convergence_speedup(self) -> float:
        """Fig. 19a: iterations-to-target ratio (ablated / full)."""
        full = np.mean([t for t in self.traces["tuna"]], axis=0)
        ablated = np.mean([t for t in self.traces[f"tuna-no-{self.component}"]], axis=0)
        target = ablated[-1]
        if self.higher_is_better:
            reached = np.flatnonzero(full >= target)
        else:
            reached = np.flatnonzero(full <= target)
        full_iters = float(reached[0] + 1) if reached.size else float(len(full))
        return len(ablated) / full_iters


def _run_tuna_arm(
    arm_name: str,
    workload_name: str,
    run_seeds: List[int],
    n_iterations: int,
    n_deploy_nodes: int,
    use_noise_adjuster: bool,
    use_outlier_detector: bool,
    result: AblationResult,
) -> None:
    workload = get_workload(workload_name)
    arm = ArmSummary(name=arm_name)
    result.traces[arm_name] = []
    result.reporting_errors[arm_name] = []
    for run_seed in run_seeds:
        system = get_system("postgres")
        cluster = Cluster(n_workers=10, seed=run_seed)
        execution = ExecutionEngine(system, workload, seed=run_seed)
        optimizer = build_optimizer(
            "smac", system.knob_space, seed=run_seed, n_candidates=150, n_trees=12
        )
        sampler = TunaSampler(
            optimizer,
            execution,
            cluster,
            seed=run_seed,
            use_noise_adjuster=use_noise_adjuster,
            use_outlier_detector=use_outlier_detector,
        )
        tuning = TuningLoop(sampler, n_iterations=n_iterations).run()
        result.traces[arm_name].append(np.asarray(tuning.best_so_far_trace()))

        # Fig. 19b: relative error between what was reported to the optimizer
        # and the max-budget ground-truth mean of the same configuration.
        for config in sampler.schedule.configs_at_max_budget():
            samples = sampler.datastore.samples_for(config)
            values = [s.value for s in samples if not s.crashed]
            if len(values) < 2:
                continue
            truth = float(np.mean(values))
            reported = sampler._catalog[config][1]
            if truth > 0:
                result.reporting_errors[arm_name].append(abs(reported - truth) / truth)

        fresh = cluster.provision_fresh_nodes(n_deploy_nodes)
        deployment = deploy_configuration(
            system, workload, tuning.best_config, fresh, seed=run_seed + 13
        )
        arm.run_means.append(deployment.mean)
        arm.run_stds.append(deployment.std)
        arm.run_crashes.append(deployment.crashes)
        arm.run_unstable.append(deployment.relative_range > 0.30)
    result.arms[arm_name] = arm


def run_noise_adjuster_ablation(
    workload_name: str = "epinions",
    n_runs: int = 3,
    n_iterations: int = 40,
    n_deploy_nodes: int = 10,
    seed: int = 0,
) -> AblationResult:
    """Fig. 19: TUNA with and without the noise-adjuster model."""
    workload = get_workload(workload_name)
    result = AblationResult(
        component="model", workload=workload_name, higher_is_better=workload.higher_is_better
    )
    master = np.random.default_rng(seed)
    run_seeds = [int(master.integers(0, 2**31 - 1)) for _ in range(n_runs)]
    _run_tuna_arm("tuna", workload_name, run_seeds, n_iterations, n_deploy_nodes, True, True, result)
    _run_tuna_arm(
        "tuna-no-model", workload_name, run_seeds, n_iterations, n_deploy_nodes, False, True, result
    )
    return result


def run_outlier_detector_ablation(
    workload_name: str = "tpcc",
    n_runs: int = 3,
    n_iterations: int = 40,
    n_deploy_nodes: int = 10,
    seed: int = 0,
) -> AblationResult:
    """Fig. 20: TUNA with and without the outlier detector."""
    workload = get_workload(workload_name)
    result = AblationResult(
        component="outlier", workload=workload_name, higher_is_better=workload.higher_is_better
    )
    master = np.random.default_rng(seed)
    run_seeds = [int(master.integers(0, 2**31 - 1)) for _ in range(n_runs)]
    _run_tuna_arm("tuna", workload_name, run_seeds, n_iterations, n_deploy_nodes, True, True, result)
    _run_tuna_arm(
        "tuna-no-outlier", workload_name, run_seeds, n_iterations, n_deploy_nodes, True, False, result
    )
    return result


def format_gp_report(result: ComparisonResult) -> str:
    from repro.experiments.generalization import format_report

    return format_report(result, figure="Fig. 18 — GP optimizer")


def format_ablation_report(result: AblationResult, figure: str) -> str:
    lines = [f"{figure} — ablation of the {result.component} component", ""]
    lines.append(f"{'arm':>18} {'mean perf':>12} {'avg std':>10} {'unstable':>9}")
    for arm in result.arms.values():
        lines.append(
            f"{arm.name:>18} {arm.mean_performance:>12.1f} {arm.mean_std:>10.1f} "
            f"{arm.n_unstable:>9d}"
        )
    if result.component == "model":
        lines += [
            "",
            f"  reporting error with model   : {result.mean_reporting_error('tuna'):.2%}",
            f"  reporting error without model: "
            f"{result.mean_reporting_error('tuna-no-model'):.2%}",
            f"  error reduction              : {result.error_reduction():.0%}"
            " (paper: 35.8-67.3%)",
            f"  convergence speed-up          : {result.convergence_speedup():.2f}x"
            " (paper: ≈1.13x)",
        ]
    else:
        lines += [
            "",
            f"  variability without outlier detector / with: {result.variability_ratio():.1f}x"
            " (paper: ≈10x)",
        ]
    return "\n".join(lines)

"""Figs. 11-15 and 18 — TUNA vs traditional sampling vs the default config.

One generic harness, :func:`compare_samplers`, implements the paper's §6
protocol: for each tuning run, tune offline with a sampling methodology, take
the best configuration from its catalog, deploy it on fresh nodes and record
the mean and standard deviation of its performance there.  The per-figure
differences are just the system, workload, region, SKU and optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cloud import Cluster
from repro.core import (
    ExecutionEngine,
    TuningLoop,
    build_sampler,
    deploy_configuration,
)
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import Workload, get_workload


@dataclass
class ArmSummary:
    """Deployment statistics of one sampling methodology (one figure bar group)."""

    name: str
    #: per tuning run: mean deployment performance of its best config
    run_means: List[float] = field(default_factory=list)
    #: per tuning run: std of deployment performance across fresh nodes
    run_stds: List[float] = field(default_factory=list)
    #: per tuning run: number of crashed deployment runs
    run_crashes: List[int] = field(default_factory=list)
    #: per tuning run: whether the deployed config is unstable (>30% rel. range)
    run_unstable: List[bool] = field(default_factory=list)

    @property
    def mean_performance(self) -> float:
        return float(np.mean(self.run_means))

    @property
    def mean_std(self) -> float:
        return float(np.mean(self.run_stds))

    @property
    def n_unstable(self) -> int:
        return int(sum(self.run_unstable))

    @property
    def total_crashes(self) -> int:
        return int(sum(self.run_crashes))


@dataclass
class ComparisonResult:
    """Everything needed to print one of the paper's bar-chart figures."""

    system: str
    workload: str
    region: str
    sku: str
    optimizer: str
    higher_is_better: bool
    arms: Dict[str, ArmSummary] = field(default_factory=dict)
    default_arm: Optional[ArmSummary] = None

    def improvement_over_default(self, arm: str) -> float:
        """Mean performance of an arm relative to the default configuration."""
        if self.default_arm is None:
            raise RuntimeError("default configuration was not evaluated")
        tuned = self.arms[arm].mean_performance
        default = self.default_arm.mean_performance
        if self.higher_is_better:
            return tuned / default - 1.0
        return default / tuned - 1.0

    def std_reduction_vs(self, arm: str, reference: str) -> float:
        """Fractional reduction in average deployment std of ``arm`` vs ``reference``."""
        return 1.0 - self.arms[arm].mean_std / self.arms[reference].mean_std


def _evaluate_default(
    system, workload: Workload, cluster: Cluster, n_deploy_nodes: int, seed: int
) -> ArmSummary:
    arm = ArmSummary(name="default")
    fresh = cluster.provision_fresh_nodes(n_deploy_nodes)
    deployment = deploy_configuration(
        system, workload, system.default_configuration(), fresh, seed=seed
    )
    arm.run_means.append(deployment.mean)
    arm.run_stds.append(deployment.std)
    arm.run_crashes.append(deployment.crashes)
    arm.run_unstable.append(deployment.relative_range > 0.30)
    return arm


def compare_samplers(
    system_name: str = "postgres",
    workload_name: str = "tpcc",
    region: str = "westus2",
    sku: str = "Standard_D8s_v5",
    optimizer_name: str = "smac",
    samplers: Sequence[str] = ("tuna", "traditional"),
    n_runs: int = 5,
    n_iterations: int = 40,
    n_cluster_nodes: int = 10,
    n_deploy_nodes: int = 10,
    seed: int = 0,
    optimizer_kwargs: Optional[dict] = None,
    sampler_kwargs: Optional[Dict[str, dict]] = None,
) -> ComparisonResult:
    """Run the §6 evaluation protocol for one (system, workload, environment).

    Figures map onto calls as follows (all with the defaults above unless noted):

    * Fig. 11a-d — ``workload_name`` in {tpcc, epinions, tpch, mssales}
    * Fig. 12 — ``region="centralus"``
    * Fig. 13 — ``region="cloudlab-wisconsin"``, ``sku="c220g5"``
    * Fig. 14 — ``system_name="redis"``, ``workload_name="ycsb-c"``
    * Fig. 15 — ``system_name="nginx"``, ``workload_name="wikipedia-top500"``
    * Fig. 18 — ``optimizer_name="gp"``
    """
    workload = get_workload(workload_name)
    optimizer_kwargs = dict(optimizer_kwargs or {})
    if optimizer_name == "smac":
        optimizer_kwargs.setdefault("n_candidates", 150)
        optimizer_kwargs.setdefault("n_trees", 12)
        optimizer_kwargs.setdefault("n_initial_design", 10)
    sampler_kwargs = dict(sampler_kwargs or {})

    result = ComparisonResult(
        system=system_name,
        workload=workload_name,
        region=region,
        sku=sku,
        optimizer=optimizer_name,
        higher_is_better=workload.higher_is_better,
    )
    master = np.random.default_rng(seed)
    run_seeds = [int(master.integers(0, 2**31 - 1)) for _ in range(n_runs)]

    # Default-configuration reference arm (one deployment per run seed).
    default_arm = ArmSummary(name="default")
    for run_seed in run_seeds:
        system = get_system(system_name)
        cluster = Cluster(n_workers=n_cluster_nodes, region=region, sku=sku, seed=run_seed)
        single = _evaluate_default(system, workload, cluster, n_deploy_nodes, run_seed + 7)
        default_arm.run_means.extend(single.run_means)
        default_arm.run_stds.extend(single.run_stds)
        default_arm.run_crashes.extend(single.run_crashes)
        default_arm.run_unstable.extend(single.run_unstable)
    result.default_arm = default_arm

    for sampler_name in samplers:
        arm = ArmSummary(name=sampler_name)
        for run_seed in run_seeds:
            system = get_system(system_name)
            cluster = Cluster(
                n_workers=n_cluster_nodes, region=region, sku=sku, seed=run_seed
            )
            execution = ExecutionEngine(system, workload, seed=run_seed)
            optimizer = build_optimizer(
                optimizer_name, system.knob_space, seed=run_seed, **optimizer_kwargs
            )
            extra = dict(sampler_kwargs.get(sampler_name, {}))
            if sampler_name == "tuna":
                max_budget = min(n_cluster_nodes, 10)
                extra.setdefault("budgets", (1, 3, max_budget))
            sampler = build_sampler(
                sampler_name, optimizer, execution, cluster, seed=run_seed, **extra
            )
            tuning = TuningLoop(sampler, n_iterations=n_iterations).run()
            fresh = cluster.provision_fresh_nodes(n_deploy_nodes)
            deployment = deploy_configuration(
                system, workload, tuning.best_config, fresh, seed=run_seed + 13
            )
            arm.run_means.append(deployment.mean)
            arm.run_stds.append(deployment.std)
            arm.run_crashes.append(deployment.crashes)
            arm.run_unstable.append(deployment.relative_range > 0.30)
        result.arms[sampler_name] = arm
    return result


def format_report(result: ComparisonResult, figure: str = "") -> str:
    """Bar-chart figures as a text table (mean and average std per arm)."""
    workload = get_workload(result.workload)
    unit = workload.objective.unit
    direction = "higher is better" if result.higher_is_better else "lower is better"
    title = figure or f"{result.system}/{result.workload}"
    lines = [
        f"{title} — {result.region}, {result.sku}, optimizer={result.optimizer} ({direction})",
        "",
        f"{'arm':>14} {'mean ' + unit:>16} {'avg std':>12} {'unstable':>9} {'crashes':>8}",
    ]
    rows = list(result.arms.values())
    if result.default_arm is not None:
        rows.append(result.default_arm)
    for arm in rows:
        lines.append(
            f"{arm.name:>14} {arm.mean_performance:>16.2f} {arm.mean_std:>12.2f} "
            f"{arm.n_unstable:>9d} {arm.total_crashes:>8d}"
        )
    if "tuna" in result.arms and "traditional" in result.arms:
        lines += [
            "",
            f"  TUNA vs traditional: std reduction = "
            f"{result.std_reduction_vs('tuna', 'traditional'):.0%}",
            f"  TUNA vs default    : improvement   = "
            f"{result.improvement_over_default('tuna'):+.0%}",
        ]
    return "\n".join(lines)

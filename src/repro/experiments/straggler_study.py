"""Straggler mitigation study: speculative re-execution under injected noise.

The ROADMAP's open question: the heterogeneity-aware scheduler (PR 3) was
built on a *deterministic* duration model, so it had never been tested
against genuine stragglers.  This study injects runtime variability through
the :mod:`repro.faults` subsystem and runs the same tuning workload twice —
with and without speculative re-execution — on the same seeds, fleet,
optimizer and **accepted**-sample budget.  The makespan gap is then
attributable to the mitigation alone: duplicates race straggling runs on
idle workers, first-finish-wins, so heavy-tail slowdowns stop dominating
the busiest worker's timeline.

A third arm (``"none"`` fault model) is used by the benchmark to re-assert
the equivalence guarantee: injecting the null model must reproduce the
uninjected trajectory bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.cloud.cluster import Cluster
from repro.core.execution import ExecutionEngine
from repro.core.samplers import TunaSampler
from repro.core.tuner import TuningLoop, TuningResult
from repro.faults import SpeculationPolicy, build_fault_model
from repro.optimizers import build_optimizer
from repro.systems import get_system
from repro.workloads import get_workload


@dataclass
class StragglerArm:
    """One arm of the study: a tuning run under a fixed mitigation setting."""

    label: str
    speculation: bool
    result: TuningResult
    makespan_hours: float
    n_samples: int
    stats: Dict = field(default_factory=dict)


@dataclass
class StragglerComparison:
    """Speculation on vs off under the same fault model and seeds."""

    fault: str
    fault_kwargs: Dict
    baseline: StragglerArm  # no speculation
    speculative: StragglerArm

    @property
    def makespan_speedup(self) -> float:
        """Baseline makespan over speculative makespan (>1 = mitigation wins)."""
        return self.baseline.makespan_hours / self.speculative.makespan_hours


def _run_arm(
    label: str,
    speculation: "SpeculationPolicy | bool | None",
    fault: str,
    fault_kwargs: Dict,
    n_workers: int,
    batch_size: int,
    max_samples: int,
    seed: int,
    system_name: str,
    workload_name: str,
    optimizer_name: str,
    budgets: Tuple[int, ...],
) -> StragglerArm:
    system = get_system(system_name)
    workload = get_workload(workload_name)
    cluster = Cluster(n_workers=n_workers, seed=seed)
    execution = ExecutionEngine(system, workload, seed=seed)
    optimizer = build_optimizer(optimizer_name, system.knob_space, seed=seed)
    sampler = TunaSampler(
        optimizer, execution, cluster, seed=seed, budgets=budgets
    )
    # Each arm gets a freshly built model with the same master seed, so both
    # arms face the same fault *process*; trajectories diverge only once the
    # mitigation changes the submission sequence.
    fault_model = build_fault_model(fault, seed=seed, **fault_kwargs)
    result = TuningLoop(
        sampler,
        max_samples=max_samples,
        batch_size=batch_size,
        fault_model=fault_model,
        speculation=speculation,
    ).run()
    return StragglerArm(
        label=label,
        speculation=bool(speculation),
        result=result,
        makespan_hours=result.wall_clock_hours,
        n_samples=result.n_samples,
        stats=dict(result.engine_stats or {}),
    )


#: Default heavy-tail parameters for the study: stragglers are *rare* (6 %)
#: but *severe* (median tail stretch 7x, capped at 40x) — the regime where
#: a handful of events dominates the baseline makespan and speculation has
#: the most to recover, matching the long-tail shape of interference-prone
#: clusters.  Episodes are pinned to (worker, ~one-run time windows), so
#: both arms of the comparison face the same fault field and the makespan
#: gap isolates the mitigation.
DEFAULT_HEAVY_TAIL: Dict = {
    "rate": 0.06,
    "scale": 6.0,
    "sigma": 0.6,
    "window_hours": 0.1,
}


def run_straggler_study(
    fault: str = "lognormal",
    fault_kwargs: Optional[Dict] = None,
    n_workers: int = 10,
    batch_size: int = 8,
    max_samples: int = 60,
    seed: int = 37,
    system_name: str = "postgres",
    workload_name: str = "tpcc",
    optimizer_name: str = "random",
    budgets: Tuple[int, ...] = (1, 3, 6),
    speculation: Optional[SpeculationPolicy] = None,
) -> StragglerComparison:
    """Run the speculation on/off comparison under an injected fault model.

    ``batch_size < n_workers`` on purpose: the in-flight watermark leaves a
    couple of workers idle on average, which is the capacity speculative
    duplicates race on — exactly how a real cluster would reserve headroom
    for mitigation.
    """
    if fault_kwargs is None and fault == "lognormal":
        fault_kwargs = DEFAULT_HEAVY_TAIL
    kwargs = dict(
        fault=fault,
        fault_kwargs=dict(fault_kwargs or {}),
        n_workers=n_workers,
        batch_size=batch_size,
        max_samples=max_samples,
        seed=seed,
        system_name=system_name,
        workload_name=workload_name,
        optimizer_name=optimizer_name,
        budgets=budgets,
    )
    baseline = _run_arm("no-speculation", None, **kwargs)
    speculative = _run_arm(
        "speculation", speculation if speculation is not None else True, **kwargs
    )
    return StragglerComparison(
        fault=fault,
        fault_kwargs=dict(fault_kwargs or {}),
        baseline=baseline,
        speculative=speculative,
    )


def format_straggler_report(comparison: StragglerComparison) -> str:
    """Text report for the straggler mitigation comparison."""
    lines = [
        f"Straggler mitigation under the {comparison.fault!r} fault model",
        "",
        f"{'arm':>16} {'samples':>8} {'makespan (h)':>13}  mitigation activity",
    ]
    for arm in (comparison.baseline, comparison.speculative):
        stats = arm.stats
        activity = (
            "-"
            if not arm.speculation
            else (
                f"{stats.get('n_stragglers_detected', 0)} stragglers, "
                f"{stats.get('n_duplicates_submitted', 0)} duplicates, "
                f"{stats.get('n_duplicate_wins', 0)} wins"
            )
        )
        lines.append(
            f"{arm.label:>16} {arm.n_samples:>8} {arm.makespan_hours:>13.3f}  {activity}"
        )
    lines.append("")
    lines.append(
        f"makespan speedup from speculative re-execution: "
        f"{comparison.makespan_speedup:.2f}x"
    )
    return "\n".join(lines)

"""Straggler detection and speculative re-execution policy (LATE-style).

A *straggler* is a run whose elapsed time already exceeds what the completed
population suggests it should have needed.  Detection is quantile-based over
**speed-normalised** durations (observed wall-clock times the worker's SKU
factor), so a slow SKU's legitimately longer runs never read as stragglers
in a heterogeneous fleet — the same Gavel-style normalisation the placement
ranking uses.

The policy is deliberately conservative, mirroring classic speculative
execution (Zaharia et al., OSDI'08): wait for a minimum history, flag an
in-flight run once its normalised elapsed time passes
``quantile(history) * slack``, and launch at most ``max_clones_per_item``
duplicate on an idle worker.  The execution engine owns the mechanics
(first-finish-wins, cancellation, worker release); this module owns the
*decision*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class SpeculationPolicy:
    """Tunables of the speculative re-execution decision."""

    #: Quantile of completed normalised durations that anchors the threshold.
    quantile: float = 0.9
    #: Multiplier on the quantile: how far past "normal" a run must be.
    #: Chasing mild (<1.5x) slowdowns wastes duplicate capacity for little
    #: makespan gain, so the default only fires well past the populace.
    slack: float = 1.5
    #: Completed runs required before any detection fires (cold-start guard).
    min_history: int = 5
    #: Duplicates allowed per work item (first-finish-wins per pair).
    max_clones_per_item: int = 1
    #: Completed durations retained for the quantile (ring-buffered): the
    #: threshold tracks the most recent window instead of the whole run, so
    #: detector memory is bounded on million-sample runs and the threshold
    #: adapts to workload drift.  Runs shorter than the window are
    #: bit-for-bit the unwindowed behaviour.
    history_window: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        if self.min_history < 1:
            raise ValueError("min_history must be >= 1")
        if self.max_clones_per_item < 1:
            raise ValueError("max_clones_per_item must be >= 1")
        if self.history_window < self.min_history:
            raise ValueError("history_window must be >= min_history")


class StragglerDetector:
    """Quantile detector over completed-sample duration statistics.

    The history is a bounded ring (``policy.history_window`` most recent
    normalised durations); evicted values survive only as aggregates.  This
    keeps detector memory independent of run length and makes the threshold
    a moving-window statistic — identical to the unwindowed detector for
    any run shorter than the window.
    """

    def __init__(self, policy: Optional[SpeculationPolicy] = None) -> None:
        # Imported here, not at module top: repro.core.async_engine imports
        # this package, so a top-level import of repro.core from here would
        # be a circular package initialisation.
        from repro.core.telemetry_slots import RingBuffer

        self.policy = policy if policy is not None else SpeculationPolicy()
        self._durations = RingBuffer(self.policy.history_window)
        self._threshold: Optional[float] = None  # cache, invalidated by observe

    @property
    def n_observed(self) -> int:
        """All-time observation count (window evictions included)."""
        return self._durations.n_appended

    @property
    def n_windowed(self) -> int:
        """Observations currently inside the quantile window."""
        return len(self._durations)

    def observe(self, normalized_duration: float) -> None:
        """Record one completed run's speed-normalised duration."""
        if normalized_duration < 0:
            raise ValueError("durations cannot be negative")
        self._durations.append(float(normalized_duration))
        self._threshold = None

    def threshold(self) -> Optional[float]:
        """Normalised elapsed time beyond which a run counts as straggling.

        ``None`` while the history is shorter than the policy's
        ``min_history`` — no detection fires during cold start.
        """
        if self._durations.n_appended < self.policy.min_history:
            return None
        if self._threshold is None:
            anchor = self._durations.quantile(self.policy.quantile)
            self._threshold = anchor * self.policy.slack
        return self._threshold

    def is_straggler(self, normalized_elapsed: float) -> bool:
        threshold = self.threshold()
        return threshold is not None and normalized_elapsed > threshold


@dataclass
class SpeculationStats:
    """What the speculative re-execution machinery did during a run."""

    n_stragglers_detected: int = 0
    n_duplicates_submitted: int = 0
    n_duplicate_wins: int = 0
    n_duplicate_losses: int = 0
    n_items_cancelled: int = 0
    detection_threshold_hours: Optional[float] = None
    extra: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "n_stragglers_detected": self.n_stragglers_detected,
            "n_duplicates_submitted": self.n_duplicates_submitted,
            "n_duplicate_wins": self.n_duplicate_wins,
            "n_duplicate_losses": self.n_duplicate_losses,
            "n_items_cancelled": self.n_items_cancelled,
            "detection_threshold_hours": self.detection_threshold_hours,
            **self.extra,
        }

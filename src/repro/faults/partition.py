"""Gray-failure partition models: workers that go silent instead of dying.

The crash models of :mod:`repro.faults.crash` kill runs; the models here
*delay their reports*.  A :class:`PartitionModel` is consulted by
:class:`~repro.core.async_engine.ClusterEventLoop` at submission time and
returns a :class:`PartitionDecision` for the item's scheduled window (after
any duration stretch and crash rescheduling): either the report arrives on
time, or the worker goes silent at some instant inside the window and its
terminal report — completion *or* failure — only reaches the orchestrator
``delay_hours`` late.  The orchestrator's view of the worker is pessimistic:
it holds the worker's queue until the delayed report (work is not routed to
a node that cannot be heard from), and during ``[silent_at, finish]`` no
heartbeats arrive, which is what the lease monitor in
:mod:`repro.core.liveness` acts on.  Whether a delayed item becomes a
*zombie* — given up on, re-submitted under a new lease epoch, its eventual
report fenced — is decided by the lease timeout, not by the model: silence
longer than the lease means suspicion, anything shorter is just a late
result.

Three hazard shapes:

* :class:`StallModel` — the run itself pauses mid-flight (GC storm, I/O
  hang) and resumes: moderate delays, silence starting at a uniform point
  of the run.
* :class:`PartitionOutageModel` — the network partitions: the worker keeps
  computing and finishes locally, but nothing is heard until the partition
  heals.  Heavy-tailed delays; the healed report carries a completed
  result, the classic zombie.
* :class:`FlakyReconnectModel` — short reconnect blips at report time:
  small repeated delays that jitter observation order without (normally)
  tripping any lease.

Determinism contract
--------------------
Identical to the crash models: independent seeded RNG streams **per
worker** (speculative duplicates on channel 1), domain tag 17 so a
partition model built from the same master seed as a crash/duration model
stays decorrelated, a fixed number of draws per decision regardless of the
branch taken, and a :class:`NoPartitionModel` that consumes no randomness
at all — injecting ``"none"`` reproduces uninjected trajectories
bit-for-bit.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PartitionContext:
    """The scheduled window a partition decision is drawn for.

    ``duration_hours`` is the item's *final* scheduled duration — after any
    duration-model stretch, and up to the failure instant for an item a
    crash model already killed — so silence onsets land inside the window
    the event loop actually simulates.  ``speculative`` duplicates draw
    from a separate per-worker channel, exactly like the other fault
    domains, so arming speculation never shifts the partition trace of
    regular work.
    """

    worker_id: str
    start_hours: float
    duration_hours: float
    speculative: bool = False

    @property
    def finish_hours(self) -> float:
        return self.start_hours + self.duration_hours


@dataclass(frozen=True)
class PartitionDecision:
    """What a partition model decided for one submission.

    ``delay_hours`` is how long after the run's local finish (or failure)
    the terminal report reaches the orchestrator; ``silent_fraction`` is
    where inside the scheduled window the last heartbeat was heard (1.0:
    the worker was responsive right up to its local finish and only the
    report is late).  The event loop turns these into the item's
    ``silent_at`` / delayed ``finish_hours``.
    """

    delayed: bool
    delay_hours: float = 0.0
    silent_fraction: float = 1.0
    kind: str = ""


#: The shared "heard from on time" decision (no per-call allocation).
RESPONSIVE = PartitionDecision(delayed=False)


class PartitionModel(abc.ABC):
    """Base class: seeded per-worker RNG streams + the decision interface."""

    name = "abstract"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = 0 if seed is None else int(seed)
        self._streams: Dict[Tuple[str, int], np.random.Generator] = {}

    @property
    def is_null(self) -> bool:
        """True when the model never delays anything and never consumes RNG."""
        return False

    def stream_for(self, worker_id: str, channel: int = 0) -> np.random.Generator:
        """A worker's private partition-RNG stream (lazily derived).

        The entropy mixes the master seed, a stable hash of the worker id,
        the partition-domain tag 17 (crash models use 13, windowed duration
        faults 7 — same master seed, decorrelated streams) and the channel:
        channel 0 carries regular submissions, channel 1 speculative
        duplicates.
        """
        key = (worker_id, channel)
        stream = self._streams.get(key)
        if stream is None:
            entropy = np.random.SeedSequence(
                [self._seed, zlib.crc32(worker_id.encode("utf-8")), 17, channel]
            )
            stream = np.random.default_rng(entropy)
            self._streams[key] = stream
        return stream

    def _stream(self, context: PartitionContext) -> np.random.Generator:
        return self.stream_for(context.worker_id, 1 if context.speculative else 0)

    @abc.abstractmethod
    def decide(self, context: PartitionContext) -> PartitionDecision:
        """Decide whether (and how) the submitted run's report is delayed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self._seed})"


class NoPartitionModel(PartitionModel):
    """The ``"none"`` model: every report arrives on time, no RNG consumed.

    The gray-failure subsystem's signature guarantee rests on this model:
    injecting it must reproduce existing trajectories bit-for-bit under the
    same seeds, which is trivially auditable because it touches nothing.
    """

    name = "none"

    @property
    def is_null(self) -> bool:
        return True

    def decide(self, context: PartitionContext) -> PartitionDecision:
        return RESPONSIVE


class StallModel(PartitionModel):
    """Mid-run stalls: the run pauses for a window, then resumes.

    With probability ``rate`` a submission stalls for an exponentially
    distributed window of mean ``mean_stall_hours``, starting at a uniform
    instant of the run; the run completes (and reports) that much later,
    and the worker is silent from the stall's onset until the report.
    Three draws per decision, unconditionally, so the stream position never
    depends on earlier outcomes.
    """

    name = "stall"

    def __init__(
        self,
        seed: Optional[int] = None,
        rate: float = 0.05,
        mean_stall_hours: float = 0.25,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if mean_stall_hours <= 0:
            raise ValueError("mean_stall_hours must be positive")
        self.rate = float(rate)
        self.mean_stall_hours = float(mean_stall_hours)

    def decide(self, context: PartitionContext) -> PartitionDecision:
        rng = self._stream(context)
        hit = rng.random() < self.rate
        delay = float(rng.exponential(self.mean_stall_hours))
        fraction = float(rng.random())
        if not hit:
            return RESPONSIVE
        return PartitionDecision(
            delayed=True,
            delay_hours=delay,
            silent_fraction=fraction,
            kind="stall",
        )


class PartitionOutageModel(PartitionModel):
    """Network partitions: the worker finishes, the report arrives late.

    With probability ``rate`` the link to the worker drops at a uniform
    instant of the run and stays down for an exponentially distributed
    outage of mean ``mean_outage_hours`` *past the local finish* — long
    enough, typically, to outlive a lease and turn the healed report into
    a fenced zombie.  Three draws per decision, unconditionally.
    """

    name = "partition"

    def __init__(
        self,
        seed: Optional[int] = None,
        rate: float = 0.03,
        mean_outage_hours: float = 1.0,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if mean_outage_hours <= 0:
            raise ValueError("mean_outage_hours must be positive")
        self.rate = float(rate)
        self.mean_outage_hours = float(mean_outage_hours)

    def decide(self, context: PartitionContext) -> PartitionDecision:
        rng = self._stream(context)
        hit = rng.random() < self.rate
        delay = float(rng.exponential(self.mean_outage_hours))
        fraction = float(rng.random())
        if not hit:
            return RESPONSIVE
        return PartitionDecision(
            delayed=True,
            delay_hours=delay,
            silent_fraction=fraction,
            kind="partition",
        )


class FlakyReconnectModel(PartitionModel):
    """Reconnect blips at report time: short, occasionally repeated delays.

    With probability ``rate`` the report needs between 1 and ``max_blips``
    delivery attempts, each costing an exponentially distributed blip of
    mean ``blip_hours``; the worker was responsive through the whole run
    (``silent_fraction=1.0``), so unless blips stack past the lease
    timeout the only effect is jittered observation order.  Three draws
    per decision, unconditionally.
    """

    name = "flaky"

    def __init__(
        self,
        seed: Optional[int] = None,
        rate: float = 0.1,
        blip_hours: float = 0.02,
        max_blips: int = 3,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if blip_hours <= 0:
            raise ValueError("blip_hours must be positive")
        if max_blips < 1:
            raise ValueError("max_blips must be >= 1")
        self.rate = float(rate)
        self.blip_hours = float(blip_hours)
        self.max_blips = int(max_blips)

    def decide(self, context: PartitionContext) -> PartitionDecision:
        rng = self._stream(context)
        hit = rng.random() < self.rate
        n_blips = int(rng.integers(1, self.max_blips + 1))
        magnitude = float(rng.exponential(1.0))
        if not hit:
            return RESPONSIVE
        return PartitionDecision(
            delayed=True,
            delay_hours=n_blips * self.blip_hours * magnitude,
            silent_fraction=1.0,
            kind="flaky",
        )


class CompositePartitionModel(PartitionModel):
    """Several silence hazards at once: the longest silence dominates.

    Every member model draws unconditionally (fixed stream positions);
    among the delayed decisions the one with the largest delay wins —
    overlapping outages do not add, the worker is simply unreachable until
    the last one heals.  Ties break on member order (deterministic).
    """

    name = "composite"

    def __init__(self, models: Sequence[PartitionModel]) -> None:
        if not models:
            raise ValueError("composite needs at least one model")
        super().__init__(seed=0)
        self.models = list(models)

    @property
    def is_null(self) -> bool:
        return all(model.is_null for model in self.models)

    def decide(self, context: PartitionContext) -> PartitionDecision:
        decisions = [model.decide(context) for model in self.models]
        delayed = [d for d in decisions if d.delayed]
        if not delayed:
            return RESPONSIVE
        return max(delayed, key=lambda d: d.delay_hours)


@dataclass
class PartitionStats:
    """What the partition machinery injected during a run (loop-side)."""

    n_delayed: int = 0
    n_stalls: int = 0
    n_outages: int = 0
    n_flaky: int = 0
    total_delay_hours: float = 0.0

    def record(self, decision: PartitionDecision) -> None:
        self.n_delayed += 1
        self.total_delay_hours += decision.delay_hours
        if decision.kind == "stall":
            self.n_stalls += 1
        elif decision.kind == "partition":
            self.n_outages += 1
        elif decision.kind == "flaky":
            self.n_flaky += 1

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_delayed": self.n_delayed,
            "n_stalls": self.n_stalls,
            "n_outages": self.n_outages,
            "n_flaky": self.n_flaky,
            "total_delay_hours": self.total_delay_hours,
        }


#: Known model names for :func:`build_partition_model` (aliases included).
PARTITION_MODELS = {
    "none": NoPartitionModel,
    "stall": StallModel,
    "partition": PartitionOutageModel,
    "outage": PartitionOutageModel,
    "flaky": FlakyReconnectModel,
    "reconnect": FlakyReconnectModel,
}


def build_partition_model(
    spec: "PartitionModel | str | None",
    seed: Optional[int] = None,
    **kwargs: Any,
) -> Optional[PartitionModel]:
    """Instantiate a partition model by name; instances/None pass through.

    ``"none"`` returns a :class:`NoPartitionModel` (injected, but
    guaranteed to change nothing); ``None`` returns ``None`` (nothing
    injected at all) — behaviourally identical by construction, mirroring
    :func:`~repro.faults.crash.build_crash_model`.
    """
    if spec is None or isinstance(spec, PartitionModel):
        return spec
    name = str(spec).lower()
    if name not in PARTITION_MODELS:
        raise KeyError(
            f"unknown partition model {spec!r}; known: {sorted(PARTITION_MODELS)}"
        )
    cls = PARTITION_MODELS[name]
    if cls is NoPartitionModel:
        return NoPartitionModel()
    return cls(seed=seed, **kwargs)

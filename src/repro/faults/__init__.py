"""Stochastic interference & straggler fault injection.

The event loop of :mod:`repro.core.async_engine` is deterministic by design:
every sample's duration comes straight from its worker's SKU
``perf_factor``.  Real clouds are not like that — the whole premise of the
source paper is that tuning must survive performance *noise* — so this
subsystem supplies pluggable stochastic duration models the event loop
consults when computing each work item's finish time, plus the straggler
machinery (quantile detection, speculative re-execution policy) the
execution engine uses to mitigate them.

Guarantees:

* **Equivalence** — with the ``"none"`` model (or no model at all) every
  trajectory is bit-for-bit identical to an uninjected run: no RNG is
  consumed, no arithmetic changes.
* **Reproducibility** — every model draws from seeded *per-worker* RNG
  streams (spawned from one master seed keyed by worker id), so a fixed
  seed and submission sequence yield identical stretches regardless of how
  many workers exist or in which order they are queried.

See :mod:`repro.faults.models` for the duration models,
:mod:`repro.faults.straggler` for detection/speculation,
:mod:`repro.faults.crash` for fail-stop crash injection (transient mid-run
errors, permanent node death), and :mod:`repro.faults.partition` for
gray-failure silence injection (stalls, partitions, flaky reconnects —
reports delayed instead of runs killed) — the same two guarantees hold in
each, with the ``"none"`` model as the no-RNG equivalence anchor.
"""

from repro.faults.crash import (
    CRASH_MODELS,
    CompositeCrashModel,
    CrashContext,
    CrashDecision,
    CrashModel,
    CrashStats,
    NoCrashModel,
    NodeDeathModel,
    TransientCrashModel,
    build_crash_model,
)
from repro.faults.models import (
    FAULT_MODELS,
    BrownoutModel,
    CompositeFaultModel,
    FaultContext,
    FaultModel,
    InterferenceBurstModel,
    LognormalTailModel,
    NoFaultModel,
    build_fault_model,
)
from repro.faults.partition import (
    PARTITION_MODELS,
    CompositePartitionModel,
    FlakyReconnectModel,
    NoPartitionModel,
    PartitionContext,
    PartitionDecision,
    PartitionModel,
    PartitionOutageModel,
    PartitionStats,
    StallModel,
    build_partition_model,
)
from repro.faults.straggler import (
    SpeculationPolicy,
    SpeculationStats,
    StragglerDetector,
)

__all__ = [
    "CRASH_MODELS",
    "FAULT_MODELS",
    "PARTITION_MODELS",
    "BrownoutModel",
    "CompositeCrashModel",
    "CompositeFaultModel",
    "CompositePartitionModel",
    "CrashContext",
    "CrashDecision",
    "CrashModel",
    "CrashStats",
    "FaultContext",
    "FaultModel",
    "FlakyReconnectModel",
    "InterferenceBurstModel",
    "LognormalTailModel",
    "NoCrashModel",
    "NodeDeathModel",
    "NoFaultModel",
    "NoPartitionModel",
    "PartitionContext",
    "PartitionDecision",
    "PartitionModel",
    "PartitionOutageModel",
    "PartitionStats",
    "SpeculationPolicy",
    "SpeculationStats",
    "StallModel",
    "StragglerDetector",
    "TransientCrashModel",
    "build_crash_model",
    "build_fault_model",
    "build_partition_model",
]

"""Pluggable stochastic duration models (runtime-variability injection).

A :class:`FaultModel` turns a work item's deterministic base duration into a
stochastic one by returning a multiplicative *stretch* factor for the
``(worker, start time, duration, co-located load)`` context of the
submission.  The event loop multiplies the base duration by the stretch, so
``stretch == 1.0`` leaves the finish time bit-for-bit unchanged (IEEE-754
multiplication by 1.0 is exact).

Determinism contract
--------------------
Each model owns one independent RNG stream **per worker**, derived from the
master seed and a stable hash of the worker id.  A worker's stream is
consumed once per submission on that worker, in submission order — which the
event loop fixes — so a fixed seed reproduces a run exactly, and adding or
removing *other* workers never perturbs a worker's own draw sequence.
:class:`NoFaultModel` consumes no randomness at all, which is what makes the
``"none"`` equivalence guarantee trivial to audit.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FaultContext:
    """Everything a fault model may condition a stretch draw on.

    ``concurrent_items`` is the number of other work items in flight across
    the cluster at submission time — the co-located load that drives the
    interference-burst model; ``n_workers`` normalises it to an occupancy
    fraction.  ``speculative`` marks a straggler-mitigation duplicate:
    models draw those from a separate per-worker channel so that launching
    a duplicate never shifts the fault trace the *regular* submissions on
    that worker would have seen — speculation on/off comparisons stay
    paired run-for-run.
    """

    worker_id: str
    start_hours: float
    duration_hours: float
    concurrent_items: int = 0
    n_workers: int = 1
    speculative: bool = False

    @property
    def occupancy(self) -> float:
        """Fraction of the cluster busy with other items at submission."""
        return self.concurrent_items / max(self.n_workers, 1)


class FaultModel(abc.ABC):
    """Base class: seeded per-worker RNG streams + the stretch interface."""

    name = "abstract"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = 0 if seed is None else int(seed)
        self._streams: Dict[Tuple[str, int], np.random.Generator] = {}

    @property
    def is_null(self) -> bool:
        """True when the model never stretches and never consumes RNG."""
        return False

    def stream_for(self, worker_id: str, channel: int = 0) -> np.random.Generator:
        """A worker's private RNG stream (lazily derived, order-stable).

        The stream seed mixes the master seed, a stable hash of the worker
        id and the channel, so it depends neither on how many workers exist
        nor on first-query order.  Channel 0 carries regular submissions;
        channel 1 carries speculative duplicates, so mitigation never
        perturbs the fault trace regular work would have drawn.
        """
        key = (worker_id, channel)
        stream = self._streams.get(key)
        if stream is None:
            entropy = np.random.SeedSequence(
                [self._seed, zlib.crc32(worker_id.encode("utf-8")), channel]
            )
            stream = np.random.default_rng(entropy)
            self._streams[key] = stream
        return stream

    def _stream(self, context: FaultContext) -> np.random.Generator:
        """The stream a draw for this submission should come from."""
        return self.stream_for(context.worker_id, 1 if context.speculative else 0)

    def _window_rng(
        self, context: FaultContext, window_hours: float
    ) -> np.random.Generator:
        """A throwaway RNG pinned to the submission's ``(worker, window)``.

        Windowed models treat the fault as a property of the *environment*
        at a simulated time — any run starting on this worker inside the
        window inherits the same episode.  That makes the realised fault
        field independent of submission interleaving, so mitigation on/off
        comparisons stay paired even though mitigation reshuffles which run
        lands where.
        """
        window = int(context.start_hours // window_hours)
        entropy = np.random.SeedSequence(
            [self._seed, zlib.crc32(context.worker_id.encode("utf-8")), 7, window]
        )
        return np.random.default_rng(entropy)

    @abc.abstractmethod
    def stretch(self, context: FaultContext) -> float:
        """Multiplicative duration stretch (>= some small positive bound)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self._seed})"


class NoFaultModel(FaultModel):
    """The ``"none"`` model: every stretch is exactly 1.0, no RNG consumed.

    This is the model behind the repo's signature guarantee — injecting it
    must reproduce existing trajectories bit-for-bit under the same seeds.
    """

    name = "none"

    @property
    def is_null(self) -> bool:
        return True

    def stretch(self, context: FaultContext) -> float:
        return 1.0


class LognormalTailModel(FaultModel):
    """Heavy-tail runtime stretch: most runs are clean, a few are stragglers.

    With probability ``rate`` a run is hit by a slowdown of
    ``1 + scale * LogNormal(0, sigma)`` — the classic long-tailed runtime
    distribution of interference-prone clusters (median tail stretch
    ``1 + scale``, with a tail that reaches an order of magnitude).  Clean
    runs keep exactly their base duration.

    With ``window_hours`` set, the draw is pinned to the run's
    ``(worker, start-time window)`` instead of the worker's sequential
    stream: the slowdown becomes an *episode of the environment* that any
    run starting in the window inherits.  This keeps the realised fault
    field identical across scheduling policies (the basis of the paired
    speculation on/off benchmark); without it, draws follow per-submission
    stream order.
    """

    name = "lognormal"

    def __init__(
        self,
        seed: Optional[int] = None,
        rate: float = 0.15,
        sigma: float = 1.0,
        scale: float = 2.0,
        max_stretch: float = 40.0,
        window_hours: Optional[float] = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if sigma <= 0 or scale <= 0:
            raise ValueError("sigma and scale must be positive")
        if window_hours is not None and window_hours <= 0:
            raise ValueError("window_hours must be positive")
        self.rate = float(rate)
        self.sigma = float(sigma)
        self.scale = float(scale)
        self.max_stretch = float(max_stretch)
        self.window_hours = window_hours

    def stretch(self, context: FaultContext) -> float:
        if self.window_hours is not None:
            rng = self._window_rng(context, self.window_hours)
        else:
            rng = self._stream(context)
        # Two draws per submission, unconditionally, so the stream position
        # does not depend on which branch earlier submissions took.
        hit = rng.random() < self.rate
        tail = float(rng.lognormal(0.0, self.sigma))
        if not hit:
            return 1.0
        return float(min(1.0 + self.scale * tail, self.max_stretch))


class InterferenceBurstModel(FaultModel):
    """Interference bursts whose likelihood grows with co-located load.

    A busy cluster means noisy neighbours: the burst probability scales from
    ``base_rate`` (idle cluster) up to ``base_rate * (1 + coupling)`` (fully
    occupied), and a burst stretches the run by ``1 + Exp(magnitude)``
    (capped).  This couples the noise the scheduler experiences to the load
    it creates — exactly the feedback a queue model should be tested under.
    """

    name = "interference"

    def __init__(
        self,
        seed: Optional[int] = None,
        base_rate: float = 0.2,
        coupling: float = 2.0,
        magnitude: float = 0.9,
        max_extra: float = 6.0,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= base_rate <= 1.0:
            raise ValueError("base_rate must be in [0, 1]")
        if coupling < 0 or magnitude <= 0:
            raise ValueError("coupling must be >= 0 and magnitude > 0")
        self.base_rate = float(base_rate)
        self.coupling = float(coupling)
        self.magnitude = float(magnitude)
        self.max_extra = float(max_extra)

    def stretch(self, context: FaultContext) -> float:
        rng = self._stream(context)
        probability = min(
            0.95, self.base_rate * (1.0 + self.coupling * context.occupancy)
        )
        hit = rng.random() < probability
        extra = float(rng.exponential(self.magnitude))
        if not hit:
            return 1.0
        return 1.0 + min(extra, self.max_extra)


class BrownoutModel(FaultModel):
    """Transient slow-worker state machine (healthy <-> browned-out).

    Each worker runs an independent two-state continuous-time Markov chain
    over *simulated* time: healthy dwell times are ``Exp(mean_healthy_hours)``
    and brownout dwells ``Exp(mean_brownout_hours)``; while browned out,
    every run on the worker is stretched by ``slowdown``.  The state is
    evolved lazily to each submission's start time, which is sound because
    the event loop submits per-worker work in non-decreasing start order.
    A run straddling a state boundary uses the state at its start (the
    standard simplification for discrete-event injection).
    """

    name = "brownout"

    def __init__(
        self,
        seed: Optional[int] = None,
        mean_healthy_hours: float = 6.0,
        mean_brownout_hours: float = 1.0,
        slowdown: float = 3.0,
    ) -> None:
        super().__init__(seed=seed)
        if mean_healthy_hours <= 0 or mean_brownout_hours <= 0:
            raise ValueError("dwell means must be positive")
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1.0 (a brownout never speeds up)")
        self.mean_healthy_hours = float(mean_healthy_hours)
        self.mean_brownout_hours = float(mean_brownout_hours)
        self.slowdown = float(slowdown)
        # worker id -> [browned_out, next_transition_hours]
        self._state: Dict[str, list] = {}

    def stretch(self, context: FaultContext) -> float:
        # The brownout state is a property of the *worker*, shared by
        # regular and speculative runs alike; evolution is a pure function
        # of query time (queries are monotone per worker), so speculative
        # queries never shift the dwell-draw sequence either.
        rng = self.stream_for(context.worker_id)
        state = self._state.get(context.worker_id)
        if state is None:
            state = [False, float(rng.exponential(self.mean_healthy_hours))]
            self._state[context.worker_id] = state
        while state[1] <= context.start_hours:
            state[0] = not state[0]
            dwell = (
                self.mean_brownout_hours if state[0] else self.mean_healthy_hours
            )
            state[1] += float(rng.exponential(dwell))
        return self.slowdown if state[0] else 1.0

    def is_browned_out(self, worker_id: str) -> bool:
        """Current state of a worker (before any lazy evolution)."""
        state = self._state.get(worker_id)
        return bool(state[0]) if state is not None else False


class CompositeFaultModel(FaultModel):
    """Product of several fault models (e.g. heavy tail on top of brownouts)."""

    name = "composite"

    def __init__(self, models: Sequence[FaultModel]) -> None:
        if not models:
            raise ValueError("composite needs at least one model")
        super().__init__(seed=0)
        self.models = list(models)

    @property
    def is_null(self) -> bool:
        return all(model.is_null for model in self.models)

    def stretch(self, context: FaultContext) -> float:
        factor = 1.0
        for model in self.models:
            factor *= model.stretch(context)
        return factor


#: Known model names for :func:`build_fault_model` (aliases included).
FAULT_MODELS = {
    "none": NoFaultModel,
    "lognormal": LognormalTailModel,
    "heavy-tail": LognormalTailModel,
    "interference": InterferenceBurstModel,
    "brownout": BrownoutModel,
}


def build_fault_model(
    spec: "FaultModel | str | None",
    seed: Optional[int] = None,
    **kwargs: Any,
) -> Optional[FaultModel]:
    """Instantiate a fault model by name; instances and ``None`` pass through.

    ``"none"`` returns a :class:`NoFaultModel` (injected, but guaranteed to
    change nothing); ``None`` returns ``None`` (nothing injected at all) —
    the two are behaviourally identical by construction.
    """
    if spec is None or isinstance(spec, FaultModel):
        return spec
    name = str(spec).lower()
    if name not in FAULT_MODELS:
        raise KeyError(
            f"unknown fault model {spec!r}; known: {sorted(FAULT_MODELS)}"
        )
    cls = FAULT_MODELS[name]
    if cls is NoFaultModel:
        return NoFaultModel()
    return cls(seed=seed, **kwargs)

"""Fail-stop crash models: work items that *fail* instead of finishing.

The duration models of :mod:`repro.faults.models` stretch runs; the models
here kill them.  A :class:`CrashModel` is consulted by
:class:`~repro.core.async_engine.ClusterEventLoop` at submission time and
returns a :class:`CrashDecision` for the scheduled ``[start, finish]``
window of the work item: either the run survives, or it fails at a sampled
instant inside the window — optionally taking its worker down permanently
(fail-stop node death).  The event loop reschedules a failed item's
completion event to the failure instant, so the orchestrator *observes* the
failure exactly when a real cluster's monitor would, and the recovery
machinery (retry with backoff, rerouting, crash-penalty surfacing) lives in
:class:`~repro.core.async_engine.AsyncExecutionEngine`.

Determinism contract
--------------------
Same discipline as the duration models: each model owns independent seeded
RNG streams **per worker** (speculative duplicates on a separate channel),
consumed a fixed number of times per decision regardless of the branch
taken, so a fixed seed reproduces the crash trace exactly and mitigation
never perturbs the draws regular submissions would have seen.
:class:`NoCrashModel` consumes no randomness at all — injecting it is
guaranteed to reproduce uninjected trajectories bit-for-bit.
"""

from __future__ import annotations

import abc
import math
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class CrashContext:
    """The scheduled window a crash decision is drawn for.

    ``duration_hours`` is the item's *scheduled* duration — after any
    duration-model stretch — so hazard models see the same exposure window
    the event loop does.  ``speculative`` marks a straggler-mitigation
    duplicate; models draw those from a separate per-worker channel, exactly
    like the duration models, so arming speculation never shifts the crash
    trace of regular work.
    """

    worker_id: str
    start_hours: float
    duration_hours: float
    speculative: bool = False

    @property
    def finish_hours(self) -> float:
        return self.start_hours + self.duration_hours


@dataclass(frozen=True)
class CrashDecision:
    """What a crash model decided for one submission.

    ``fail_at_hours`` is an *absolute* simulated time; the event loop clamps
    it into the item's ``[start, finish]`` window.  ``worker_dead`` marks a
    permanent fail-stop of the node: the worker is drained from the fleet
    and never receives work again.
    """

    failed: bool
    fail_at_hours: float = 0.0
    worker_dead: bool = False
    kind: str = ""


#: The shared "nothing happened" decision (no per-call allocation).
SURVIVES = CrashDecision(failed=False)


class CrashModel(abc.ABC):
    """Base class: seeded per-worker RNG streams + the decision interface."""

    name = "abstract"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = 0 if seed is None else int(seed)
        self._streams: Dict[Tuple[str, int], np.random.Generator] = {}

    @property
    def is_null(self) -> bool:
        """True when the model never fails anything and never consumes RNG."""
        return False

    def stream_for(self, worker_id: str, channel: int = 0) -> np.random.Generator:
        """A worker's private crash-RNG stream (lazily derived, order-stable).

        The entropy mixes the master seed, a stable hash of the worker id,
        a crash-domain tag (so a crash model and a duration model built from
        the same master seed stay decorrelated) and the channel: channel 0
        carries regular submissions, channel 1 speculative duplicates.
        """
        key = (worker_id, channel)
        stream = self._streams.get(key)
        if stream is None:
            entropy = np.random.SeedSequence(
                [self._seed, zlib.crc32(worker_id.encode("utf-8")), 13, channel]
            )
            stream = np.random.default_rng(entropy)
            self._streams[key] = stream
        return stream

    def _stream(self, context: CrashContext) -> np.random.Generator:
        return self.stream_for(context.worker_id, 1 if context.speculative else 0)

    @abc.abstractmethod
    def decide(self, context: CrashContext) -> CrashDecision:
        """Decide whether (and when) the submitted run fails."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self._seed})"


class NoCrashModel(CrashModel):
    """The ``"none"`` model: every run survives, no RNG consumed.

    The crash subsystem's signature guarantee rests on this model: injecting
    it must reproduce existing trajectories bit-for-bit under the same
    seeds, which is trivially auditable because it touches nothing.
    """

    name = "none"

    @property
    def is_null(self) -> bool:
        return True

    def decide(self, context: CrashContext) -> CrashDecision:
        return SURVIVES


class TransientCrashModel(CrashModel):
    """Memoryless mid-run errors: the run dies, the worker survives.

    With probability ``rate`` a submission fails at a uniformly distributed
    instant inside its scheduled window — the benchmark process segfaults,
    the SuT wedges, the VM reboots.  The worker itself comes back
    immediately (its queue resumes at the failure instant), so the only
    damage is the lost run.  Two draws per decision, unconditionally, so
    the stream position never depends on earlier outcomes.
    """

    name = "transient"

    def __init__(self, seed: Optional[int] = None, rate: float = 0.05) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = float(rate)

    def decide(self, context: CrashContext) -> CrashDecision:
        rng = self._stream(context)
        hit = rng.random() < self.rate
        fraction = float(rng.random())
        if not hit:
            return SURVIVES
        return CrashDecision(
            failed=True,
            fail_at_hours=context.start_hours + fraction * context.duration_hours,
            worker_dead=False,
            kind="transient",
        )


class NodeDeathModel(CrashModel):
    """Permanent fail-stop node death under a per-worker Weibull hazard.

    Each worker's time of death is one Weibull draw over its *simulated*
    uptime, scaled so the distribution's mean equals ``mtbf_hours``
    (``shape == 1`` is the classic exponential/MTBF memoryless hazard;
    ``shape > 1`` models wear-out, ``shape < 1`` infant mortality).  A
    submission whose scheduled window reaches past the death instant fails
    there — mid-run if the worker dies while running it, instantly at its
    start if the node was already dead when the work was queued — and the
    worker is permanently drained.  Exactly one draw per worker, taken
    lazily at the worker's first submission, so fleet size and query order
    never shift another worker's fate.
    """

    name = "node-death"

    def __init__(
        self,
        seed: Optional[int] = None,
        mtbf_hours: float = 48.0,
        shape: float = 1.0,
    ) -> None:
        super().__init__(seed=seed)
        if mtbf_hours <= 0:
            raise ValueError("mtbf_hours must be positive")
        if shape <= 0:
            raise ValueError("shape must be positive")
        self.mtbf_hours = float(mtbf_hours)
        self.shape = float(shape)
        # Mean of Weibull(shape, scale=1) is gamma(1 + 1/shape).
        self._scale = self.mtbf_hours / math.gamma(1.0 + 1.0 / self.shape)
        self._death_at: Dict[str, float] = {}

    def death_time(self, worker_id: str) -> float:
        """The worker's (lazily sampled) time of death in simulated hours."""
        death = self._death_at.get(worker_id)
        if death is None:
            # The death instant is a property of the *worker*, shared by
            # regular and speculative runs alike: always channel 0.
            rng = self.stream_for(worker_id)
            death = float(rng.weibull(self.shape)) * self._scale
            self._death_at[worker_id] = death
        return death

    def decide(self, context: CrashContext) -> CrashDecision:
        death = self.death_time(context.worker_id)
        if context.finish_hours <= death:
            return SURVIVES
        return CrashDecision(
            failed=True,
            fail_at_hours=max(context.start_hours, death),
            worker_dead=True,
            kind="node-death",
        )


class CompositeCrashModel(CrashModel):
    """Several crash hazards at once: the earliest failure wins."""

    name = "composite"

    def __init__(self, models: Sequence[CrashModel]) -> None:
        if not models:
            raise ValueError("composite needs at least one model")
        super().__init__(seed=0)
        self.models = list(models)

    @property
    def is_null(self) -> bool:
        return all(model.is_null for model in self.models)

    def decide(self, context: CrashContext) -> CrashDecision:
        # Every member model draws unconditionally (fixed stream positions);
        # among the failures, the earliest instant decides the outcome.
        decisions = [model.decide(context) for model in self.models]
        failed = [d for d in decisions if d.failed]
        if not failed:
            return SURVIVES
        return min(failed, key=lambda d: d.fail_at_hours)


@dataclass
class CrashStats:
    """What the crash-fault machinery observed and did during a run."""

    n_failures: int = 0
    n_transient_failures: int = 0
    n_node_death_failures: int = 0
    n_speculative_failures: int = 0
    n_workers_dead: int = 0
    n_retries: int = 0
    n_exhausted: int = 0

    def as_dict(self) -> Dict:
        return {
            "n_failures": self.n_failures,
            "n_transient_failures": self.n_transient_failures,
            "n_node_death_failures": self.n_node_death_failures,
            "n_speculative_failures": self.n_speculative_failures,
            "n_workers_dead": self.n_workers_dead,
            "n_retries": self.n_retries,
            "n_exhausted": self.n_exhausted,
        }


#: Known model names for :func:`build_crash_model` (aliases included).
CRASH_MODELS = {
    "none": NoCrashModel,
    "transient": TransientCrashModel,
    "node-death": NodeDeathModel,
    "weibull": NodeDeathModel,
    "mtbf": NodeDeathModel,
}


def build_crash_model(
    spec: "CrashModel | str | None",
    seed: Optional[int] = None,
    **kwargs: Any,
) -> Optional[CrashModel]:
    """Instantiate a crash model by name; instances and ``None`` pass through.

    ``"none"`` returns a :class:`NoCrashModel` (injected, but guaranteed to
    change nothing); ``None`` returns ``None`` (nothing injected at all) —
    behaviourally identical by construction, mirroring
    :func:`~repro.faults.models.build_fault_model`.
    """
    if spec is None or isinstance(spec, CrashModel):
        return spec
    name = str(spec).lower()
    if name not in CRASH_MODELS:
        raise KeyError(
            f"unknown crash model {spec!r}; known: {sorted(CRASH_MODELS)}"
        )
    cls = CRASH_MODELS[name]
    if cls is NoCrashModel:
        return NoCrashModel()
    return cls(seed=seed, **kwargs)

"""Unit tests for the metrics registry (counters, gauges, histograms).

The registry is built on the event loop's bounded telemetry slots, so the
invariants mirror those: bounded windows, no silent truncation (all-time
aggregates survive eviction), deterministic exports.  Timers only record
under an enabled clock — with the default NullClock they are no-ops, which
is what keeps a registry attached to a study deterministic by construction.
"""

import pickle

import pytest

from repro.obs import MetricsRegistry, NullClock
from repro.obs.metrics import base_name, _key


class FakeClock:
    """Deterministic 'host' clock for timer tests: ticks one second per read."""

    enabled = True

    def __init__(self):
        self.ticks = 0.0

    def now(self):
        self.ticks += 1.0
        return self.ticks


class TestKeys:
    def test_unlabelled_key_is_the_name(self):
        assert _key("engine.items.submitted", {}) == "engine.items.submitted"

    def test_labels_are_sorted_into_the_key(self):
        key = _key("loop.busy_hours", {"sku": "m5.xlarge", "region": "eu-west-1"})
        assert key == "loop.busy_hours{region=eu-west-1,sku=m5.xlarge}"

    def test_base_name_strips_the_label_suffix(self):
        assert base_name("loop.busy_hours{region=eu-west-1}") == "loop.busy_hours"
        assert base_name("loop.busy_hours") == "loop.busy_hours"


class TestInstruments:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.items.submitted")
        assert registry.counter("engine.items.submitted") is counter
        registry.inc("engine.items.submitted")
        registry.inc("engine.items.submitted", 2.0)
        assert registry.counter_value("engine.items.submitted") == 3.0

    def test_counters_reject_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("engine.items.submitted", -1.0)

    def test_untouched_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("never.touched") == 0.0

    def test_gauge_holds_the_last_written_level(self):
        registry = MetricsRegistry()
        registry.set("scheduler.reserved", 7)
        registry.set("scheduler.reserved", 3)
        assert registry.gauge("scheduler.reserved").value == 3.0

    def test_labelled_counters_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.inc("scheduler.placements", region="eu")
        registry.inc("scheduler.placements", region="us")
        registry.inc("scheduler.placements", region="us")
        assert registry.labelled("scheduler.placements") == {
            "scheduler.placements{region=eu}": 1.0,
            "scheduler.placements{region=us}": 2.0,
        }

    def test_histogram_window_is_bounded_but_all_time_is_not(self):
        registry = MetricsRegistry(window=4)
        for value in range(10):
            registry.observe("loop.duration_hours", float(value))
        histogram = registry.histogram("loop.duration_hours")
        assert histogram.count == 10
        summary = histogram.all_time()
        assert summary.count == 10
        assert summary.minimum == 0.0
        assert summary.maximum == 9.0
        # Quantiles cover the recent window only (the 4 newest values).
        assert histogram.quantile(0.0) == 6.0

    def test_rollup_merges_all_label_sets(self):
        registry = MetricsRegistry()
        registry.observe("loop.busy_hours", 2.0, region="eu")
        registry.observe("loop.busy_hours", 4.0, region="us")
        registry.observe("loop.busy_hours", 6.0, region="us")
        combined = registry.rollup("loop.busy_hours")
        assert combined.count == 3
        assert combined.total == 12.0
        assert combined.minimum == 2.0
        assert combined.maximum == 6.0

    def test_registry_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            MetricsRegistry(window=0)


class TestTimers:
    def test_timer_is_a_noop_under_the_null_clock(self):
        registry = MetricsRegistry(clock=NullClock())
        with registry.timer("optimizer.ask_seconds"):
            pass
        # Nothing was recorded: no histogram was even created.
        assert len(registry) == 0

    def test_timer_records_under_an_enabled_clock(self):
        registry = MetricsRegistry(clock=FakeClock())
        with registry.timer("optimizer.ask_seconds"):
            pass
        histogram = registry.histogram("optimizer.ask_seconds")
        assert histogram.count == 1
        assert histogram.all_time().total == 1.0  # two ticks, one apart

    def test_timer_records_even_when_the_block_raises(self):
        registry = MetricsRegistry(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with registry.timer("optimizer.refit_seconds"):
                raise RuntimeError("surrogate exploded")
        assert registry.histogram("optimizer.refit_seconds").count == 1


class TestExport:
    def test_as_dict_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.inc("b.counter")
        registry.inc("a.counter")
        registry.set("a.gauge", 5.0)
        registry.observe("a.histogram", 1.0)
        snapshot = registry.as_dict()
        assert list(snapshot["counters"]) == ["a.counter", "b.counter"]
        assert snapshot["gauges"] == {"a.gauge": 5.0}
        assert snapshot["histograms"]["a.histogram"]["count"] == 1
        assert "p50" in snapshot["histograms"]["a.histogram"]

    def test_registry_pickles_with_its_contents(self):
        registry = MetricsRegistry(window=8)
        registry.inc("engine.items.submitted", 5)
        registry.set("scheduler.reserved", 2)
        for value in range(20):
            registry.observe("loop.duration_hours", float(value))
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.as_dict() == registry.as_dict()
        assert clone.window == 8
        # The clone keeps working after the round-trip.
        clone.inc("engine.items.submitted")
        assert clone.counter_value("engine.items.submitted") == 6.0

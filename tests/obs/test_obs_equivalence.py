"""The trajectory-inertness gate: observability must change *nothing*.

Same discipline as ``fault_model="none"``: a seeded study run with a full
registry, a live tracer and an enabled host clock must be bit-for-bit
identical — samples, values, placements, simulated clocks, event-log
contents — to the same study run with observability off.  Three arms cover
the plain path, crash injection with retries, and faults with speculation
(the paths with the densest instrumentation).
"""

import pytest

from repro.cloud import Cluster
from repro.core import (
    EventLog,
    ExecutionEngine,
    RetryPolicy,
    TunaSampler,
    TuningLoop,
)
from repro.obs import HostClock, MetricsRegistry, TraceRecorder
from repro.optimizers import SMACOptimizer
from repro.systems import PostgreSQLSystem
from repro.workloads import TPCC

ARMS = {
    "plain": {},
    "crash-retry": dict(
        crash_model="transient", crash_seed=3, retry_policy=RetryPolicy()
    ),
    "faults-speculation": dict(
        fault_model="lognormal", fault_seed=7, speculation=True
    ),
}


def make_sampler(seed=11):
    system = PostgreSQLSystem()
    cluster = Cluster(n_workers=10, seed=seed)
    execution = ExecutionEngine(system, TPCC, seed=seed)
    opt = SMACOptimizer(system.knob_space, seed=seed, n_initial_design=5)
    return TunaSampler(opt, execution, cluster, seed=seed)


def trajectory(sampler):
    return [
        (s.worker_id, s.value, s.iteration, s.budget, s.crashed)
        for s in sampler.datastore.all_samples()
    ]


def run_study(log_path, observed, **extra):
    sampler = make_sampler()
    obs_kwargs = {}
    if observed:
        # The *hardest* configuration: full registry with a real host clock
        # (timers actually record) plus a live tracer.
        obs_kwargs = dict(
            metrics=MetricsRegistry(clock=HostClock()), tracer=TraceRecorder()
        )
    loop = TuningLoop(
        sampler,
        max_samples=30,
        batch_size=5,
        event_log=str(log_path),
        **extra,
        **obs_kwargs,
    )
    result = loop.run()
    return loop, sampler, result


@pytest.mark.parametrize("arm", sorted(ARMS))
def test_observability_is_bit_for_bit_trajectory_inert(tmp_path, arm):
    extra = ARMS[arm]
    ref_loop, ref_sampler, ref_result = run_study(tmp_path / "ref.jsonl", False, **extra)
    obs_loop, obs_sampler, obs_result = run_study(tmp_path / "obs.jsonl", True, **extra)

    # Samples: worker placements, values, iterations, budgets, crash flags.
    assert trajectory(obs_sampler) == trajectory(ref_sampler)
    # Clocks and outcomes.
    assert obs_result.wall_clock_hours == ref_result.wall_clock_hours
    assert obs_result.best_config == ref_result.best_config
    assert obs_result.best_catalog_value == ref_result.best_catalog_value
    assert obs_result.n_samples == ref_result.n_samples
    assert obs_result.engine_stats == ref_result.engine_stats

    # Event logs: identical record for record past the provenance header
    # (whose UTC timestamp legitimately differs between the two runs).
    ref_events = EventLog.replay(str(tmp_path / "ref.jsonl"))
    obs_events = EventLog.replay(str(tmp_path / "obs.jsonl"))
    assert obs_events[1:] == ref_events[1:]

    # And the observer actually observed: this is not a vacuous pass.
    assert obs_loop.metrics is not None
    assert obs_loop.metrics.counter_value("engine.items.submitted") > 0
    assert obs_loop.metrics.counter_value("loop.items.completed") > 0
    assert obs_loop.tracer.n_closed > 0


def test_true_builds_default_instances_and_false_means_off():
    loop = TuningLoop(make_sampler(), max_samples=5, batch_size=2,
                      metrics=True, tracer=True)
    assert isinstance(loop.metrics, MetricsRegistry)
    assert isinstance(loop.tracer, TraceRecorder)
    # The default registry gets the deterministic NullClock.
    assert not loop.metrics.clock.enabled
    off = TuningLoop(make_sampler(), max_samples=5, batch_size=2,
                     metrics=False, tracer=False)
    assert off.metrics is None and off.tracer is None


def test_registry_is_shared_across_the_whole_stack():
    """One registry observes the engine, loop, scheduler and optimizer."""
    registry = MetricsRegistry()
    sampler = make_sampler()
    loop = TuningLoop(sampler, max_samples=30, batch_size=5, metrics=registry)
    loop.run()
    assert sampler.scheduler.metrics is registry
    assert sampler.optimizer.metrics is registry
    snapshot = registry.as_dict()
    counters = snapshot["counters"]
    assert counters["engine.items.submitted"] == counters["loop.items.submitted"]
    assert counters["scheduler.assignments"] > 0
    assert counters["optimizer.tells"] > 0
    assert counters["optimizer.asks"] > 0
    assert counters["optimizer.surrogate.refits"] > 0
    # Per-(region, SKU) utilization counters exist and sum to total busy time.
    busy = registry.labelled("loop.busy_hours")
    assert busy  # at least one (region, sku) bucket
    # Queue waits and durations were observed as histograms.
    assert registry.rollup("loop.queue_wait_hours").count > 0
    assert registry.rollup("loop.duration_hours").count > 0

"""Unit tests for span tracing and the Chrome trace-event export.

Spans live in simulated hours; the recorder is memory-bounded (oldest
closed spans drop with a tally, never silently); the offline builder
understands both current logs (with ``submitted``/``cancel`` records) and
pre-observability logs (graceful fallbacks).
"""

import json

from repro.obs import Span, TraceRecorder, spans_from_events, to_chrome_trace
from repro.obs.tracing import MICROSECONDS_PER_HOUR


def make_recorder():
    recorder = TraceRecorder()
    recorder.begin(0, "w0", "run", submitted=0.0, start=0.0, config="abc123")
    recorder.begin(1, "w1", "run", submitted=0.0, start=0.5, config="def456")
    recorder.end(0, 2.0, "complete", value=41.5)
    recorder.end(1, 3.0, "fail", fault="crash")
    return recorder


class TestRecorder:
    def test_spans_are_ordered_and_carry_outcomes(self):
        spans = make_recorder().spans()
        assert [(s.item, s.outcome) for s in spans] == [
            (0, "complete"),
            (1, "fail"),
        ]
        assert spans[0].value == 41.5
        assert spans[0].duration_hours == 2.0
        assert spans[1].fault == "crash"
        assert spans[1].wait_hours == 0.5

    def test_open_spans_are_reported_after_closed_ones(self):
        recorder = make_recorder()
        recorder.begin(2, "w0", "retry", submitted=2.0, start=2.5)
        spans = recorder.spans()
        assert recorder.n_open == 1
        assert recorder.n_closed == 2
        assert spans[-1].item == 2
        assert spans[-1].end is None and spans[-1].duration_hours is None

    def test_ending_an_unknown_item_is_ignored(self):
        recorder = TraceRecorder()
        recorder.end(99, 1.0, "complete")  # attached mid-run; item predates us
        assert recorder.n_closed == 0

    def test_closed_spans_are_bounded_with_a_drop_tally(self):
        recorder = TraceRecorder(max_spans=2)
        for item in range(4):
            recorder.begin(item, "w0", "run", submitted=0.0, start=float(item))
            recorder.end(item, float(item) + 1.0, "complete")
        assert recorder.n_closed == 2
        assert recorder.n_dropped == 2
        assert [s.item for s in recorder.spans()] == [2, 3]


class TestOfflineBuilder:
    def test_rebuilds_spans_from_engine_events(self):
        events = [
            {"kind": "open"},
            {
                "kind": "submit",
                "item": 0,
                "worker": "w0",
                "t": 0.5,
                "submitted": 0.0,
                "config": "abc123",
            },
            {"kind": "complete", "item": 0, "worker": "w0", "t": 2.0, "value": 7.5},
            {"kind": "retry", "item": 1, "worker": "w1", "t": 2.5, "submitted": 2.0},
            {"kind": "fail", "item": 1, "worker": "w1", "t": 3.0, "fault": "crash"},
            {"kind": "speculate", "item": 2, "worker": "w2", "t": 3.0, "submitted": 3.0},
            {"kind": "cancel", "item": 2, "worker": "w2", "t": 3.5},
        ]
        spans = spans_from_events(events)
        assert [(s.item, s.kind, s.outcome) for s in spans] == [
            (0, "run", "complete"),
            (1, "retry", "fail"),
            (2, "speculative", "cancel"),
        ]
        assert spans[0].submitted == 0.0 and spans[0].wait_hours == 0.5
        assert spans[0].value == 7.5
        assert spans[1].fault == "crash"

    def test_pre_observability_logs_degrade_gracefully(self):
        # No ``submitted`` field, no cancel record: submitted falls back to
        # the start instant and the second span simply stays open.
        events = [
            {"kind": "submit", "item": 0, "worker": "w0", "t": 1.5},
            {"kind": "complete", "item": 0, "worker": "w0", "t": 2.0},
            {"kind": "submit", "item": 1, "worker": "w1", "t": 1.5},
        ]
        spans = spans_from_events(events)
        assert spans[0].submitted == 1.5 and spans[0].wait_hours == 0.0
        assert spans[1].end is None and spans[1].outcome is None


class TestChromeTrace:
    def test_trace_structure_and_time_scaling(self):
        spans = [
            Span(0, "w0", "run", 0.0, 0.5, end=2.5, outcome="complete",
                 config="abc123", value=9.0),
            Span(1, "w1", "retry", 1.0, 1.5, end=3.0, outcome="fail",
                 fault="crash"),
            Span(2, "w0", "run", 3.0, 3.5),  # still open: skipped, counted
        ]
        trace = to_chrome_trace(spans)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [m["args"]["name"] for m in meta] == ["w0", "w1"]
        assert len(complete) == 2
        first = complete[0]
        assert first["ts"] == 0.5 * MICROSECONDS_PER_HOUR
        assert first["dur"] == 2.0 * MICROSECONDS_PER_HOUR
        assert first["args"]["value"] == 9.0
        assert first["name"] == "run:abc123"
        assert complete[1]["args"]["fault"] == "crash"
        assert trace["otherData"]["n_spans"] == 2
        assert trace["otherData"]["n_open_spans"] == 1
        assert trace["otherData"]["n_workers"] == 2
        # Both workers share one pid; tids are distinct tracks.
        assert {e["pid"] for e in trace["traceEvents"]} == {0}
        assert {e["tid"] for e in complete} == {0, 1}

    def test_trace_is_json_serialisable(self):
        trace = to_chrome_trace(make_recorder().spans())
        parsed = json.loads(json.dumps(trace))
        assert parsed["otherData"]["n_spans"] == 2

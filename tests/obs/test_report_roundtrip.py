"""Round-trip gate: offline reports agree with the live registry.

A resilience-style seeded study (transient crashes + retries + speculation)
runs once with a live registry, tracer and durable event log.  The report
rebuilt offline from the log must agree with the live instruments field by
field — same counter names, same counts — and the live tracer's spans must
equal the spans rebuilt from the log.  The CLI is exercised end to end on
the same log.
"""

import json

import pytest

from repro.cloud import Cluster
from repro.core import (
    EventLog,
    ExecutionEngine,
    RetryPolicy,
    TunaSampler,
    TuningLoop,
)
from repro.obs import MetricsRegistry, TraceRecorder, spans_from_events
from repro.obs.__main__ import main as obs_main
from repro.obs.report import RunReport, report_from_log
from repro.optimizers import RandomSearchOptimizer
from repro.systems import PostgreSQLSystem
from repro.workloads import TPCC

SEED = 90

#: Counter names whose live value must equal the offline report's count.
MATCHED_COUNTERS = (
    "engine.items.submitted",
    "engine.items.retried",
    "engine.items.speculated",
    "engine.items.completed",
    "engine.items.failed",
    "engine.items.cancelled",
    "engine.samples.landed",
    "engine.samples.crashed",
)


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    """One resilience-style study: crashes, retries, speculation, full obs."""
    tmp_path = tmp_path_factory.mktemp("obs_study")
    log = str(tmp_path / "events.jsonl")
    system = PostgreSQLSystem()
    cluster = Cluster(n_workers=10, seed=SEED)
    execution = ExecutionEngine(system, TPCC, seed=SEED)
    opt = RandomSearchOptimizer(system.knob_space, seed=SEED)
    sampler = TunaSampler(opt, execution, cluster, seed=SEED)
    registry = MetricsRegistry()
    tracer = TraceRecorder()
    loop = TuningLoop(
        sampler,
        max_samples=40,
        batch_size=5,
        crash_model="transient",
        crash_seed=3,
        retry_policy=RetryPolicy(max_retries=2, backoff_hours=0.05),
        fault_model="lognormal",
        fault_seed=7,
        speculation=True,
        event_log=log,
        metrics=registry,
        tracer=tracer,
    )
    result = loop.run()
    return {
        "log": log,
        "registry": registry,
        "tracer": tracer,
        "result": result,
        "tmp_path": tmp_path,
    }


class TestReportMatchesLiveRegistry:
    def test_lifecycle_counters_agree_field_by_field(self, study):
        report = report_from_log(study["log"])
        registry = study["registry"]
        for name in MATCHED_COUNTERS:
            assert report.counters[name] == registry.counter_value(name), name
        # The study genuinely exercised the resilience paths.
        assert report.counters["engine.samples.crashed"] > 0 or (
            report.counters["engine.items.retried"] > 0
        )

    def test_failures_by_fault_match_the_labelled_counters(self, study):
        report = report_from_log(study["log"])
        live = {
            key.split("fault=")[1].rstrip("}"): value
            for key, value in study["registry"].labelled("engine.failures").items()
        }
        assert {k: float(v) for k, v in report.failures_by_fault.items()} == live

    def test_crash_and_retry_budget_lines_match(self, study):
        report = report_from_log(study["log"])
        registry = study["registry"]
        if report.retries:
            assert report.retries["n_retries"] == registry.counter_value(
                "engine.items.retried"
            )
            assert report.retries["n_exhausted"] == registry.counter_value(
                "engine.retries.exhausted"
            )
        if report.speculation:
            assert report.speculation["n_duplicates"] == registry.counter_value(
                "engine.items.speculated"
            )
            assert report.speculation["n_wins"] == registry.counter_value(
                "engine.speculation.wins"
            )
            assert report.speculation["n_losses"] == registry.counter_value(
                "engine.speculation.losses"
            )

    def test_live_spans_equal_offline_spans(self, study):
        events = EventLog.replay(study["log"])
        offline = [span.as_dict() for span in spans_from_events(events)]
        live = [span.as_dict() for span in study["tracer"].spans()]
        assert live == offline

    def test_report_macro_facts(self, study):
        report = report_from_log(study["log"])
        result = study["result"]
        assert report.makespan_hours == result.wall_clock_hours
        assert report.counters["engine.samples.landed"] == result.n_samples
        assert report.provenance["git_sha"]
        assert 0 < report.n_workers <= 10
        assert report.utilization["busy_fraction"]
        assert 0.0 < report.utilization["mean_busy_fraction"] <= 1.0
        assert report.queue_wait_hours["p50"] >= 0.0
        assert report.duration_hours["p99"] > 0.0
        assert report.waves["n_waves"] >= 1


class TestCli:
    def test_cli_writes_markdown_json_and_trace(self, study):
        out = study["tmp_path"]
        md, js, tr = out / "report.md", out / "report.json", out / "trace.json"
        code = obs_main(
            [
                "report",
                study["log"],
                "--markdown", str(md),
                "--json", str(js),
                "--trace", str(tr),
                "--bins", "12",
            ]
        )
        assert code == 0
        markdown = md.read_text()
        assert markdown.startswith("# Study run report")
        assert "## Lifecycle counters" in markdown
        assert "## Worker-utilization timeline" in markdown
        data = json.loads(js.read_text())
        registry = study["registry"]
        for name in MATCHED_COUNTERS:
            assert data["counters"][name] == registry.counter_value(name)
        assert len(data["utilization"]["busy_fraction"]) == 12
        trace = json.loads(tr.read_text())
        assert trace["otherData"]["n_spans"] > 0
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_cli_default_prints_markdown(self, study, capsys):
        assert obs_main(["report", study["log"]]) == 0
        printed = capsys.readouterr().out
        assert printed.startswith("# Study run report")

    def test_cli_reports_a_corrupt_log_on_stderr(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq": 0, "kind": "open", "version": 1}\n{broken\n')
        assert obs_main(["report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_json_round_trips_through_from_events(self, study):
        events = EventLog.replay(study["log"])
        direct = RunReport.from_events(events).as_dict()
        via_log = report_from_log(study["log"]).as_dict()
        assert direct == via_log

"""Guard rails for the shell tooling under ``tools/``.

Every gate/benchmark script must fail loudly: ``set -euo pipefail`` so a
failing pytest invocation (or an unset variable) can never report success,
and the executable bit so ``make`` targets and CI can run them directly.
"""

import os
import stat

TOOLS_DIR = os.path.join(os.path.dirname(__file__), "..", "tools")


def _scripts():
    return sorted(
        os.path.join(TOOLS_DIR, name)
        for name in os.listdir(TOOLS_DIR)
        if name.endswith(".sh")
    )


def test_tools_directory_has_scripts():
    assert len(_scripts()) >= 5


def test_every_script_fails_loudly():
    for path in _scripts():
        with open(path) as fh:
            content = fh.read()
        assert "set -euo pipefail" in content, (
            f"{os.path.basename(path)} must 'set -euo pipefail' so failures "
            "propagate instead of being swallowed"
        )


def test_every_script_is_executable_with_a_shebang():
    for path in _scripts():
        mode = os.stat(path).st_mode
        assert mode & stat.S_IXUSR, f"{os.path.basename(path)} is not executable"
        with open(path) as fh:
            first = fh.readline()
        assert first.startswith("#!"), f"{os.path.basename(path)} lacks a shebang"

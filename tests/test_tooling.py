"""Guard rails for the shell tooling under ``tools/``.

Every gate/benchmark script must fail loudly: ``set -euo pipefail`` so a
failing pytest invocation (or an unset variable) can never report success,
and the executable bit so ``make`` targets and CI can run them directly.
The same fail-loud discipline is asserted for the durable event log: a
damaged study log must refuse to load, naming the offending line.
"""

import os
import re
import stat

import pytest

TOOLS_DIR = os.path.join(os.path.dirname(__file__), "..", "tools")
REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def _scripts():
    return sorted(
        os.path.join(TOOLS_DIR, name)
        for name in os.listdir(TOOLS_DIR)
        if name.endswith(".sh")
    )


def test_tools_directory_has_scripts():
    assert len(_scripts()) >= 5


def test_every_script_fails_loudly():
    for path in _scripts():
        with open(path) as fh:
            content = fh.read()
        assert "set -euo pipefail" in content, (
            f"{os.path.basename(path)} must 'set -euo pipefail' so failures "
            "propagate instead of being swallowed"
        )


def test_every_script_is_executable_with_a_shebang():
    for path in _scripts():
        mode = os.stat(path).st_mode
        assert mode & stat.S_IXUSR, f"{os.path.basename(path)} is not executable"
        with open(path) as fh:
            first = fh.readline()
        assert first.startswith("#!"), f"{os.path.basename(path)} lacks a shebang"


def test_static_analysis_gates_are_wired_into_make_and_ci():
    """`make lint-det` / `make typecheck` exist, their scripts exist, and CI
    runs both before the tier-1 gate — a linter nobody runs guards nothing."""
    with open(os.path.join(REPO_ROOT, "Makefile")) as fh:
        makefile = fh.read()
    assert re.search(r"^lint-det:", makefile, re.MULTILINE)
    assert re.search(r"^typecheck:", makefile, re.MULTILINE)
    for script in ("run_detlint.sh", "run_typecheck.sh"):
        assert os.path.exists(os.path.join(TOOLS_DIR, script)), script

    with open(os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")) as fh:
        ci = fh.read()
    assert "make lint-det" in ci, "CI must run the determinism lint"
    assert "make typecheck" in ci, "CI must run the typing gate"
    # Both gates must come before the tier-1 gate in the test job (the
    # run step, not the comment that merely mentions the script).
    tier1 = ci.index("run: ./tools/run_tier1.sh")
    assert ci.index("make lint-det") < tier1
    assert ci.index("make typecheck") < tier1


def test_bench_gates_are_wired_into_make_and_ci():
    """The event-loop scale bench and the perf-trajectory compare gate are
    reachable: make targets exist, their tools exist, CI runs both, and the
    compare step follows the full bench suite (it diffs its artifacts)."""
    with open(os.path.join(REPO_ROOT, "Makefile")) as fh:
        makefile = fh.read()
    assert re.search(r"^bench-eventloop:", makefile, re.MULTILINE)
    assert re.search(r"^bench-compare:", makefile, re.MULTILINE)
    # The help header documents both new targets.
    assert "make bench-eventloop" in makefile
    assert "make bench-compare" in makefile
    assert os.path.exists(os.path.join(TOOLS_DIR, "run_eventloop_bench.sh"))
    assert os.path.exists(os.path.join(TOOLS_DIR, "bench_compare.py"))
    # Committed baselines exist for the compare gate to diff against.
    baselines = os.path.join(REPO_ROOT, "benchmarks", "baselines")
    assert os.path.isdir(baselines)
    assert any(name.startswith("BENCH_") for name in os.listdir(baselines))

    with open(os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")) as fh:
        ci = fh.read()
    assert "make bench-eventloop" in ci, "CI must run the event-loop scale gate"
    assert "tools/bench_compare.py" in ci, "CI must run the perf-trajectory gate"
    assert ci.index("run: make bench\n") < ci.index("tools/bench_compare.py"), (
        "bench-compare must run after the full bench suite generated artifacts"
    )
    assert "GITHUB_STEP_SUMMARY" in ci, (
        "CI must publish the bench_compare table to the job summary"
    )


def test_obs_bench_gate_is_wired_into_make_and_ci():
    """`make bench-obs` exists, its runner exists, CI runs it, the compare
    gate guards its artifact, and the example run report reaches the job
    summary — an overhead gate nobody runs guards nothing."""
    with open(os.path.join(REPO_ROOT, "Makefile")) as fh:
        makefile = fh.read()
    assert re.search(r"^bench-obs:", makefile, re.MULTILINE)
    assert "make bench-obs" in makefile  # help header documents the target
    assert os.path.exists(os.path.join(TOOLS_DIR, "run_obs_bench.sh"))
    # The perf-trajectory gate tracks the obs artifact's guarded metrics.
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_compare", os.path.join(TOOLS_DIR, "bench_compare.py")
    )
    bench_compare = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_compare)
    assert bench_compare.GUARDED["BENCH_OBS.json"] == {
        "enabled_overhead_frac": "ceiling",
        "disabled_overhead_frac": "ceiling",
        "trajectory_identical": "flag",
    }
    baseline = os.path.join(
        REPO_ROOT, "benchmarks", "baselines", "BENCH_OBS.json"
    )
    assert os.path.exists(baseline), "bench-compare needs a committed baseline"

    with open(os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")) as fh:
        ci = fh.read()
    assert "make bench-obs" in ci, "CI must run the observability gate"
    assert "RUN_REPORT.md" in ci, (
        "CI must publish the example run report to the job summary"
    )


def test_graydeg_gate_is_wired_into_make_and_ci():
    """`make bench-graydeg` exists, its runner exists, CI runs it alongside
    the chaos suite, and the compare gate guards its artifact — a gray-
    failure retention gate nobody runs guards nothing."""
    with open(os.path.join(REPO_ROOT, "Makefile")) as fh:
        makefile = fh.read()
    assert re.search(r"^bench-graydeg:", makefile, re.MULTILINE)
    assert "make bench-graydeg" in makefile  # help header documents the target
    assert os.path.exists(os.path.join(TOOLS_DIR, "run_graydeg_bench.sh"))
    # The perf-trajectory gate tracks the retention as a guarded ratio.
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_compare", os.path.join(TOOLS_DIR, "bench_compare.py")
    )
    bench_compare = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_compare)
    assert bench_compare.GUARDED["BENCH_GRAYDEG.json"] == {
        "geomean_retention": "ratio"
    }
    baseline = os.path.join(
        REPO_ROOT, "benchmarks", "baselines", "BENCH_GRAYDEG.json"
    )
    assert os.path.exists(baseline), "bench-compare needs a committed baseline"

    with open(os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")) as fh:
        ci = fh.read()
    assert "make bench-graydeg" in ci, "CI must run the gray-failure gate"
    assert re.search(r"pytest tests/chaos", ci), (
        "CI must run the chaos suite as its own step"
    )


def test_ci_workflow_is_hardened():
    """Concurrency cancellation, job timeouts and the unit-test version
    matrix — CI hygiene the workflow must not silently lose."""
    with open(os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")) as fh:
        ci = fh.read()
    assert "concurrency:" in ci, "workflow must declare a concurrency group"
    assert "cancel-in-progress:" in ci, (
        "superseded pull-request runs must be cancelled, not queued"
    )
    n_jobs = len(re.findall(r"^\s{2}\w[\w-]*:\s*$\n(?=\s{4}runs-on:)", ci, re.MULTILINE))
    n_timeouts = len(re.findall(r"^\s+timeout-minutes:\s*\d+", ci, re.MULTILINE))
    assert n_jobs == 3, f"expected the three lint/test/bench jobs, found {n_jobs}"
    assert n_timeouts == n_jobs, (
        f"every job needs a timeout-minutes ({n_timeouts}/{n_jobs} set)"
    )
    assert re.search(r"matrix:\s*\n\s*python-version:", ci), (
        "the test job must run a python-version matrix"
    )
    assert '"3.11"' in ci and '"3.12"' in ci, (
        "unit tests must cover Python 3.11 and 3.12"
    )


def test_readme_rule_table_matches_the_registry():
    """The README's detlint rule table stays in sync with the registry:
    every registered code documented, no stale rows for removed rules."""
    from repro.analysis import RULES

    with open(os.path.join(REPO_ROOT, "README.md")) as fh:
        readme = fh.read()
    table_rows = re.findall(r"^\| `(DET\d{3})` \|", readme, re.MULTILINE)
    registered = sorted(rule.code for rule in RULES)
    assert sorted(table_rows) == registered, (
        "README rule table out of sync with repro.analysis.RULES: "
        f"table={sorted(table_rows)} registry={registered}"
    )
    # The bookkeeping codes are documented too (pragma audit + parse error).
    assert "DET000" in readme
    assert "DET999" in readme


def test_event_log_replay_fails_loudly_on_damage(tmp_path):
    """A truncated or corrupted study log must refuse to load with a
    line-numbered error — silently replaying a partial study would poison
    every conclusion drawn from it."""
    from repro.core import EventLog, EventLogError

    path = str(tmp_path / "events.jsonl")
    log = EventLog(path)
    for _ in range(3):
        log.append("submit", worker="w-0")
    log.close()

    # Truncation: chop the last record mid-JSON.
    truncated = str(tmp_path / "truncated.jsonl")
    content = open(path, encoding="utf-8").read()
    with open(truncated, "w", encoding="utf-8") as fh:
        fh.write(content[:-20] + "\n")
    with pytest.raises(EventLogError) as excinfo:
        EventLog.replay(truncated)
    assert excinfo.value.line == 4
    assert ":4:" in str(excinfo.value)

    # Corruption: mangle a middle record.
    corrupted = str(tmp_path / "corrupted.jsonl")
    lines = content.splitlines()
    lines[1] = lines[1][:-4] + "\x00"
    with open(corrupted, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    with pytest.raises(EventLogError) as excinfo:
        EventLog.replay(corrupted)
    assert excinfo.value.line == 2
    assert ":2:" in str(excinfo.value)

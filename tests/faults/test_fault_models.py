"""Tests for the stochastic fault models and the straggler detector."""

import numpy as np
import pytest

from repro.faults import (
    FAULT_MODELS,
    BrownoutModel,
    CompositeFaultModel,
    FaultContext,
    FaultModel,
    InterferenceBurstModel,
    LognormalTailModel,
    NoFaultModel,
    SpeculationPolicy,
    SpeculationStats,
    StragglerDetector,
    build_fault_model,
)


def ctx(worker="worker-0", start=0.0, duration=0.1, concurrent=0, n_workers=10, speculative=False):
    return FaultContext(
        worker_id=worker,
        start_hours=start,
        duration_hours=duration,
        concurrent_items=concurrent,
        n_workers=n_workers,
        speculative=speculative,
    )


class TestNoFaultModel:
    def test_always_unity_and_null(self):
        model = NoFaultModel()
        assert model.is_null
        assert all(model.stretch(ctx(start=t)) == 1.0 for t in (0.0, 5.0, 100.0))

    def test_consumes_no_rng(self):
        model = NoFaultModel()
        model.stretch(ctx())
        assert model._streams == {}


class TestLognormalTailModel:
    def test_reproducible_for_fixed_seed(self):
        a = LognormalTailModel(seed=7)
        b = LognormalTailModel(seed=7)
        draws_a = [a.stretch(ctx()) for _ in range(50)]
        draws_b = [b.stretch(ctx()) for _ in range(50)]
        assert draws_a == draws_b

    def test_per_worker_streams_are_order_independent(self):
        a = LognormalTailModel(seed=3)
        b = LognormalTailModel(seed=3)
        # Interleave workers differently; each worker's own sequence must
        # be unchanged.
        seq_a = [a.stretch(ctx(worker="w1")) for _ in range(20)]
        for _ in range(20):
            b.stretch(ctx(worker="w2"))
        seq_b = [b.stretch(ctx(worker="w1")) for _ in range(20)]
        assert seq_a == seq_b

    def test_stretch_never_shrinks_and_has_a_heavy_tail(self):
        model = LognormalTailModel(seed=0, rate=1.0, sigma=1.0, scale=2.0)
        draws = [model.stretch(ctx()) for _ in range(400)]
        assert min(draws) >= 1.0
        assert max(draws) > 5.0  # the long tail exists
        assert max(draws) <= model.max_stretch

    def test_clean_runs_keep_exact_duration(self):
        model = LognormalTailModel(seed=0, rate=0.0)
        assert all(model.stretch(ctx()) == 1.0 for _ in range(20))

    def test_speculative_channel_does_not_shift_the_primary_stream(self):
        a = LognormalTailModel(seed=5)
        b = LognormalTailModel(seed=5)
        seq_a = [a.stretch(ctx()) for _ in range(20)]
        seq_b = []
        for i in range(20):
            if i % 3 == 0:
                b.stretch(ctx(speculative=True))  # extra duplicate draws
            seq_b.append(b.stretch(ctx()))
        assert seq_a == seq_b

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LognormalTailModel(rate=1.5)
        with pytest.raises(ValueError):
            LognormalTailModel(sigma=0.0)


class TestInterferenceBurstModel:
    def test_bursts_couple_to_colocated_load(self):
        idle = InterferenceBurstModel(seed=11, base_rate=0.15, coupling=3.0)
        busy = InterferenceBurstModel(seed=11, base_rate=0.15, coupling=3.0)
        idle_draws = [idle.stretch(ctx(concurrent=0)) for _ in range(600)]
        busy_draws = [busy.stretch(ctx(concurrent=10)) for _ in range(600)]
        idle_hits = sum(d > 1.0 for d in idle_draws)
        busy_hits = sum(d > 1.0 for d in busy_draws)
        assert busy_hits > idle_hits * 1.5

    def test_burst_magnitude_is_capped(self):
        model = InterferenceBurstModel(seed=0, base_rate=1.0, max_extra=2.0)
        assert all(model.stretch(ctx()) <= 3.0 for _ in range(200))


class TestBrownoutModel:
    def test_binary_stretch_values(self):
        model = BrownoutModel(seed=2, mean_healthy_hours=1.0, mean_brownout_hours=0.5, slowdown=3.0)
        draws = {model.stretch(ctx(start=t * 0.25)) for t in range(400)}
        assert draws <= {1.0, 3.0}
        assert draws == {1.0, 3.0}  # both states visited over 100 hours

    def test_state_is_persistent_between_queries(self):
        model = BrownoutModel(seed=4, mean_healthy_hours=2.0, mean_brownout_hours=1.0)
        # Two queries at the same time see the same state.
        assert model.stretch(ctx(start=10.0)) == model.stretch(ctx(start=10.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutModel(mean_healthy_hours=0.0)
        with pytest.raises(ValueError):
            BrownoutModel(slowdown=0.5)


class TestCompositeAndRegistry:
    def test_composite_multiplies(self):
        always = LognormalTailModel(seed=0, rate=1.0, sigma=0.1, scale=1.0)
        model = CompositeFaultModel([always, NoFaultModel()])
        assert not model.is_null
        assert model.stretch(ctx()) > 1.0
        assert CompositeFaultModel([NoFaultModel()]).is_null

    def test_composite_requires_models(self):
        with pytest.raises(ValueError):
            CompositeFaultModel([])

    def test_build_by_name(self):
        assert isinstance(build_fault_model("none"), NoFaultModel)
        assert isinstance(build_fault_model("lognormal", seed=1), LognormalTailModel)
        assert isinstance(build_fault_model("heavy-tail", seed=1), LognormalTailModel)
        assert isinstance(build_fault_model("interference"), InterferenceBurstModel)
        assert isinstance(build_fault_model("brownout"), BrownoutModel)
        assert build_fault_model(None) is None
        instance = LognormalTailModel(seed=9)
        assert build_fault_model(instance) is instance
        with pytest.raises(KeyError):
            build_fault_model("cosmic-rays")
        assert set(FAULT_MODELS) >= {"none", "lognormal", "interference", "brownout"}

    def test_kwargs_forwarded(self):
        model = build_fault_model("lognormal", seed=0, rate=0.5, scale=3.0)
        assert model.rate == 0.5 and model.scale == 3.0


class TestStragglerDetector:
    def test_cold_start_never_fires(self):
        detector = StragglerDetector(SpeculationPolicy(min_history=5))
        for _ in range(4):
            detector.observe(1.0)
        assert detector.threshold() is None
        assert not detector.is_straggler(100.0)

    def test_quantile_threshold(self):
        policy = SpeculationPolicy(quantile=0.5, slack=2.0, min_history=5)
        detector = StragglerDetector(policy)
        for value in (1.0, 1.0, 1.0, 1.0, 1.0):
            detector.observe(value)
        assert detector.threshold() == pytest.approx(2.0)
        assert detector.is_straggler(2.1)
        assert not detector.is_straggler(1.9)

    def test_observe_invalidates_cached_threshold(self):
        detector = StragglerDetector(SpeculationPolicy(quantile=0.5, slack=1.0, min_history=1))
        detector.observe(1.0)
        assert detector.threshold() == pytest.approx(1.0)
        for _ in range(9):
            detector.observe(11.0)
        assert detector.threshold() > 5.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            StragglerDetector().observe(-0.1)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(quantile=1.5)
        with pytest.raises(ValueError):
            SpeculationPolicy(slack=0.9)
        with pytest.raises(ValueError):
            SpeculationPolicy(min_history=0)
        with pytest.raises(ValueError):
            SpeculationPolicy(max_clones_per_item=0)

    def test_stats_as_dict(self):
        stats = SpeculationStats(n_stragglers_detected=2, extra={"note": "x"})
        payload = stats.as_dict()
        assert payload["n_stragglers_detected"] == 2
        assert payload["note"] == "x"


class TestFaultModelInterface:
    def test_custom_model_subclassing(self):
        class Doubler(FaultModel):
            name = "doubler"

            def stretch(self, context):
                return 2.0

        model = Doubler()
        assert model.stretch(ctx()) == 2.0
        assert not model.is_null

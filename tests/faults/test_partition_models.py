"""Unit tests for the gray-failure partition models."""

import numpy as np
import pytest

from repro.faults import (
    PARTITION_MODELS,
    CompositePartitionModel,
    FlakyReconnectModel,
    NoPartitionModel,
    PartitionContext,
    PartitionDecision,
    PartitionModel,
    PartitionOutageModel,
    PartitionStats,
    StallModel,
    build_partition_model,
)


def ctx(worker="worker-0", start=0.0, duration=1.0, speculative=False):
    return PartitionContext(
        worker_id=worker,
        start_hours=start,
        duration_hours=duration,
        speculative=speculative,
    )


class TestNoPartitionModel:
    def test_always_responsive(self):
        model = NoPartitionModel()
        for i in range(50):
            decision = model.decide(ctx(start=float(i)))
            assert not decision.delayed

    def test_is_null_and_consumes_no_rng(self):
        model = NoPartitionModel()
        model.decide(ctx())
        assert model.is_null
        # Structural inertness: the null model never materialises a stream.
        assert model._streams == {}


@pytest.mark.parametrize(
    "model_cls,kind",
    [
        (StallModel, "stall"),
        (PartitionOutageModel, "partition"),
        (FlakyReconnectModel, "flaky"),
    ],
)
class TestActiveModels:
    def test_seeded_reproducibility(self, model_cls, kind):
        a = model_cls(seed=3, rate=0.4)
        b = model_cls(seed=3, rate=0.4)
        decisions_a = [a.decide(ctx(start=float(i))) for i in range(200)]
        decisions_b = [b.decide(ctx(start=float(i))) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(d.delayed for d in decisions_a)
        assert any(not d.delayed for d in decisions_a)

    def test_delayed_decisions_carry_the_kind_and_a_positive_delay(
        self, model_cls, kind
    ):
        model = model_cls(seed=1, rate=1.0)
        for i in range(20):
            decision = model.decide(ctx(start=float(i)))
            assert decision.delayed
            assert decision.kind == kind
            assert decision.delay_hours > 0
            assert 0.0 <= decision.silent_fraction <= 1.0

    def test_fixed_draw_count_per_decision(self, model_cls, kind):
        """Responsive and delayed decisions consume the same number of
        draws, so the stream position never depends on earlier outcomes."""
        model = model_cls(seed=3, rate=0.5)
        reference = model_cls(seed=3, rate=0.5)
        for i in range(10):
            model.decide(ctx(start=float(i)))
        rng = reference.stream_for("worker-0")
        for _ in range(10):
            # Every model draws exactly three times per decision.
            rng.random()
            if model_cls is FlakyReconnectModel:
                rng.integers(1, reference.max_blips + 1)
                rng.exponential(1.0)
            else:
                rng.exponential(1.0)
                rng.random()
        assert model.decide(ctx(start=99.0)) == reference.decide(ctx(start=99.0))

    def test_speculative_channel_is_independent(self, model_cls, kind):
        plain = model_cls(seed=5, rate=0.4)
        mixed = model_cls(seed=5, rate=0.4)
        plain_decisions = [plain.decide(ctx(start=float(i))) for i in range(50)]
        mixed_decisions = []
        for i in range(50):
            mixed.decide(ctx(start=float(i), speculative=True))
            mixed_decisions.append(mixed.decide(ctx(start=float(i))))
        assert plain_decisions == mixed_decisions

    def test_per_worker_streams_are_query_order_independent(self, model_cls, kind):
        a = model_cls(seed=9, rate=0.5)
        b = model_cls(seed=9, rate=0.5)
        # Interleave another worker's queries on b only.
        a_decisions = [a.decide(ctx(worker="worker-2", start=float(i))) for i in range(30)]
        b_decisions = []
        for i in range(30):
            b.decide(ctx(worker="worker-7", start=float(i)))
            b_decisions.append(b.decide(ctx(worker="worker-2", start=float(i))))
        assert a_decisions == b_decisions

    def test_rate_validation(self, model_cls, kind):
        with pytest.raises(ValueError):
            model_cls(seed=0, rate=1.5)


class TestFlakyReconnectModel:
    def test_silence_only_at_report_time(self):
        model = FlakyReconnectModel(seed=2, rate=1.0)
        decision = model.decide(ctx())
        assert decision.silent_fraction == 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FlakyReconnectModel(seed=0, blip_hours=0.0)
        with pytest.raises(ValueError):
            FlakyReconnectModel(seed=0, max_blips=0)


class TestCompositePartitionModel:
    def test_longest_silence_dominates(self):
        class Fixed(PartitionModel):
            name = "fixed"

            def __init__(self, delay):
                super().__init__(seed=0)
                self.delay = delay

            def decide(self, context):
                if self.delay is None:
                    return PartitionDecision(delayed=False)
                return PartitionDecision(
                    delayed=True, delay_hours=self.delay, kind="stall"
                )

        composite = CompositePartitionModel(
            [Fixed(0.5), Fixed(None), Fixed(2.0), Fixed(1.0)]
        )
        decision = composite.decide(ctx())
        assert decision.delayed and decision.delay_hours == 2.0

    def test_all_members_draw_unconditionally(self):
        """Member stream positions must not depend on sibling outcomes."""
        solo = StallModel(seed=4, rate=0.5)
        member = StallModel(seed=4, rate=0.5)
        composite = CompositePartitionModel(
            [PartitionOutageModel(seed=11, rate=1.0), member]
        )
        solo_decisions = [solo.decide(ctx(start=float(i))) for i in range(30)]
        for i in range(30):
            composite.decide(ctx(start=float(i)))
        # After 30 composite decisions the member's stream sits exactly where
        # the solo model's does.
        assert member.decide(ctx(start=99.0)) == solo.decide(ctx(start=99.0))

    def test_null_iff_all_members_null(self):
        assert CompositePartitionModel([NoPartitionModel()]).is_null
        assert not CompositePartitionModel(
            [NoPartitionModel(), StallModel(seed=0)]
        ).is_null

    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError):
            CompositePartitionModel([])


class TestPartitionStats:
    def test_record_classifies_by_kind(self):
        stats = PartitionStats()
        stats.record(PartitionDecision(delayed=True, delay_hours=0.5, kind="stall"))
        stats.record(
            PartitionDecision(delayed=True, delay_hours=1.5, kind="partition")
        )
        stats.record(PartitionDecision(delayed=True, delay_hours=0.1, kind="flaky"))
        assert stats.as_dict() == {
            "n_delayed": 3,
            "n_stalls": 1,
            "n_outages": 1,
            "n_flaky": 1,
            "total_delay_hours": pytest.approx(2.1),
        }


class TestBuildPartitionModel:
    def test_registry_names(self):
        assert isinstance(build_partition_model("none"), NoPartitionModel)
        assert isinstance(build_partition_model("stall", seed=1), StallModel)
        assert isinstance(
            build_partition_model("partition", seed=1), PartitionOutageModel
        )
        assert isinstance(build_partition_model("outage", seed=1), PartitionOutageModel)
        assert isinstance(build_partition_model("flaky", seed=1), FlakyReconnectModel)
        assert isinstance(
            build_partition_model("reconnect", seed=1), FlakyReconnectModel
        )

    def test_instance_and_none_pass_through(self):
        model = StallModel(seed=0)
        assert build_partition_model(model) is model
        assert build_partition_model(None) is None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown partition model"):
            build_partition_model("quantum-tunnel")

    def test_registry_covers_the_documented_names(self):
        assert set(PARTITION_MODELS) == {
            "none",
            "stall",
            "partition",
            "outage",
            "flaky",
            "reconnect",
        }

"""Unit tests for the fail-stop crash models."""

import numpy as np
import pytest

from repro.faults import (
    CRASH_MODELS,
    CompositeCrashModel,
    CrashContext,
    CrashDecision,
    CrashModel,
    NoCrashModel,
    NodeDeathModel,
    TransientCrashModel,
    build_crash_model,
)


def ctx(worker="worker-0", start=0.0, duration=1.0, speculative=False):
    return CrashContext(
        worker_id=worker,
        start_hours=start,
        duration_hours=duration,
        speculative=speculative,
    )


class TestNoCrashModel:
    def test_always_survives(self):
        model = NoCrashModel()
        for i in range(50):
            decision = model.decide(ctx(start=float(i)))
            assert not decision.failed

    def test_is_null_and_consumes_no_rng(self):
        model = NoCrashModel()
        model.decide(ctx())
        assert model.is_null
        # The null model must never materialise a stream: structural
        # inertness, not merely behavioural.
        assert model._streams == {}


class TestTransientCrashModel:
    def test_seeded_reproducibility(self):
        a = TransientCrashModel(seed=3, rate=0.3)
        b = TransientCrashModel(seed=3, rate=0.3)
        decisions_a = [a.decide(ctx(start=float(i))) for i in range(200)]
        decisions_b = [b.decide(ctx(start=float(i))) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(d.failed for d in decisions_a)
        assert any(not d.failed for d in decisions_a)

    def test_fixed_draw_count_per_decision(self):
        """Surviving and failing decisions consume the same number of draws,
        so the stream position never depends on earlier outcomes."""
        model = TransientCrashModel(seed=3, rate=0.5)
        reference = TransientCrashModel(seed=3, rate=0.5)
        # Consume 10 decisions on the model; advance the reference stream by
        # hand the same number of (2-draw) steps and compare positions via
        # the next decision.
        for i in range(10):
            model.decide(ctx(start=float(i)))
        rng = reference.stream_for("worker-0")
        for _ in range(10):
            rng.random()
            rng.random()
        assert model.decide(ctx(start=99.0)) == reference.decide(ctx(start=99.0))

    def test_failure_lands_inside_the_window(self):
        model = TransientCrashModel(seed=1, rate=1.0)
        for i in range(20):
            decision = model.decide(ctx(start=float(i), duration=2.0))
            assert decision.failed
            assert float(i) <= decision.fail_at_hours <= float(i) + 2.0
            assert not decision.worker_dead
            assert decision.kind == "transient"

    def test_speculative_channel_is_independent(self):
        """Speculative decisions draw from their own stream: interleaving
        them must not shift the regular channel's outcomes."""
        plain = TransientCrashModel(seed=5, rate=0.4)
        mixed = TransientCrashModel(seed=5, rate=0.4)
        plain_decisions = [plain.decide(ctx(start=float(i))) for i in range(50)]
        mixed_decisions = []
        for i in range(50):
            mixed.decide(ctx(start=float(i), speculative=True))
            mixed_decisions.append(mixed.decide(ctx(start=float(i))))
        assert plain_decisions == mixed_decisions

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TransientCrashModel(seed=0, rate=1.5)


class TestNodeDeathModel:
    def test_death_time_is_lazy_and_cached(self):
        model = NodeDeathModel(seed=7, mtbf_hours=10.0)
        first = model.death_time("worker-3")
        assert model.death_time("worker-3") == first
        # Other workers' fates are independent of query order.
        other = NodeDeathModel(seed=7, mtbf_hours=10.0)
        other.death_time("worker-9")
        assert other.death_time("worker-3") == first

    def test_run_ending_before_death_survives(self):
        model = NodeDeathModel(seed=7, mtbf_hours=10.0)
        death = model.death_time("worker-0")
        ok = model.decide(ctx(start=0.0, duration=death * 0.5))
        assert not ok.failed

    def test_run_crossing_death_fails_at_death(self):
        model = NodeDeathModel(seed=7, mtbf_hours=10.0)
        death = model.death_time("worker-0")
        dead = model.decide(ctx(start=0.0, duration=death + 1.0))
        assert dead.failed and dead.worker_dead
        assert dead.fail_at_hours == death
        assert dead.kind == "node-death"

    def test_run_starting_after_death_fails_instantly(self):
        model = NodeDeathModel(seed=7, mtbf_hours=10.0)
        death = model.death_time("worker-0")
        late = model.decide(ctx(start=death + 5.0, duration=1.0))
        assert late.failed and late.worker_dead
        assert late.fail_at_hours == death + 5.0  # clamped to its start

    def test_mean_death_time_tracks_mtbf(self):
        model = NodeDeathModel(seed=11, mtbf_hours=48.0)
        deaths = [model.death_time(f"w-{i}") for i in range(2000)]
        assert np.mean(deaths) == pytest.approx(48.0, rel=0.1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NodeDeathModel(seed=0, mtbf_hours=0.0)
        with pytest.raises(ValueError):
            NodeDeathModel(seed=0, shape=-1.0)


class TestCompositeCrashModel:
    def test_earliest_failure_wins(self):
        class At(CrashModel):
            name = "scripted"

            def __init__(self, at):
                super().__init__(seed=0)
                self.at = at

            def decide(self, context):
                return CrashDecision(failed=True, fail_at_hours=self.at, kind="s")

        composite = CompositeCrashModel([At(3.0), At(1.0), At(2.0)])
        decision = composite.decide(ctx(duration=10.0))
        assert decision.failed
        assert decision.fail_at_hours == 1.0

    def test_null_only_when_all_members_null(self):
        assert CompositeCrashModel([NoCrashModel(), NoCrashModel()]).is_null
        assert not CompositeCrashModel(
            [NoCrashModel(), TransientCrashModel(seed=0)]
        ).is_null

    def test_needs_members(self):
        with pytest.raises(ValueError):
            CompositeCrashModel([])


class TestBuildCrashModel:
    def test_registry_names(self):
        assert build_crash_model(None) is None
        assert isinstance(build_crash_model("none"), NoCrashModel)
        assert isinstance(build_crash_model("transient", seed=1), TransientCrashModel)
        assert isinstance(build_crash_model("node-death", seed=1), NodeDeathModel)
        assert isinstance(build_crash_model("mtbf", seed=1), NodeDeathModel)
        assert set(CRASH_MODELS) == {"none", "transient", "node-death", "weibull", "mtbf"}

    def test_instances_pass_through(self):
        model = TransientCrashModel(seed=2)
        assert build_crash_model(model) is model

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_crash_model("meteor-strike")

    def test_kwargs_forwarded(self):
        model = build_crash_model("transient", seed=1, rate=0.42)
        assert model.rate == 0.42

"""Self-tests for detlint: every rule proven on bad/good fixture pairs.

Each DET rule must (a) fire on its bad fixture with the right code and line,
(b) stay silent on the good fixture, and (c) respect its path scoping.  The
pragma machinery (justified suppression, DET000 for unjustified pragmas) and
the JSON report round-trip are covered here too, plus the gate that the
*real* tree stays clean — the test-suite twin of ``make lint-det``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import RULES, Report, check_file, check_paths

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def codes_and_lines(path):
    findings, suppressed = check_file(path)
    return [(f.code, f.line) for f in findings], suppressed


def codes(path):
    return [code for code, _ in codes_and_lines(path)[0]]


class TestRuleFixtures:
    def test_det001_bad_fixture_fires(self):
        found, _ = codes_and_lines(FIXTURES / "det001_bad.py")
        assert found == [
            ("DET001", 9),   # default_rng()
            ("DET001", 13),  # default_rng(None)
            ("DET001", 17),  # np.random.seed
            ("DET001", 18),  # np.random.uniform (legacy global state)
            ("DET001", 22),  # random.randint
        ]

    def test_det001_good_fixture_is_silent(self):
        assert codes(FIXTURES / "det001_good.py") == []

    def test_det002_bad_fixture_fires(self):
        found, _ = codes_and_lines(FIXTURES / "det002_bad.py")
        assert found == [("DET002", 8), ("DET002", 9), ("DET002", 10)]

    def test_det002_good_fixture_is_silent(self):
        assert codes(FIXTURES / "det002_good.py") == []

    def test_det003_bad_fixture_fires(self):
        found, _ = codes_and_lines(FIXTURES / "det003_bad.py")
        assert found == [("DET003", 7), ("DET003", 11)]

    def test_det003_good_fixture_is_silent(self):
        assert codes(FIXTURES / "det003_good.py") == []

    def test_det004_bad_fixture_fires(self):
        found, _ = codes_and_lines(FIXTURES / "det004" / "core" / "bad.py")
        assert found == [
            ("DET004", 6),   # for worker in set(workers)
            ("DET004", 8),   # for flag in {"cpu", "disk"}
            ("DET004", 10),  # comprehension over queues.keys()
        ]

    def test_det004_good_fixture_is_silent(self):
        assert codes(FIXTURES / "det004" / "core" / "good.py") == []

    def test_det004_is_scoped_to_core_and_ml(self):
        assert codes(FIXTURES / "det004" / "elsewhere" / "unscoped.py") == []

    def test_det005_bad_fixture_fires(self):
        found, _ = codes_and_lines(FIXTURES / "det005" / "scheduler.py")
        assert found == [("DET005", 7), ("DET005", 8)]

    def test_det005_good_fixture_is_silent(self):
        assert codes(FIXTURES / "det005" / "good" / "scheduler.py") == []

    def test_det005_is_scoped_to_tiebreak_sensitive_modules(self):
        assert codes(FIXTURES / "det005" / "unscoped" / "helpers.py") == []

    def test_det006_bad_fixture_fires(self):
        found, _ = codes_and_lines(FIXTURES / "det006_bad.py")
        assert found == [("DET006", 5), ("DET006", 6), ("DET006", 7)]

    def test_det006_good_fixture_is_silent(self):
        assert codes(FIXTURES / "det006_good.py") == []

    def test_det007_bad_fixture_fires(self):
        found, _ = codes_and_lines(FIXTURES / "det007" / "core" / "bad.py")
        assert found == [
            ("DET007", 7),   # bare except
            ("DET007", 14),  # except Exception: pass
            ("DET007", 21),  # tuple containing BaseException, body = ...
        ]

    def test_det007_good_fixture_is_silent(self):
        assert codes(FIXTURES / "det007" / "core" / "good.py") == []

    def test_det007_is_scoped_to_core_and_faults(self):
        assert codes(FIXTURES / "det007" / "elsewhere" / "unscoped.py") == []


class TestPragmas:
    def test_justified_pragma_suppresses_and_is_counted(self):
        found, suppressed = codes_and_lines(FIXTURES / "det002_pragma.py")
        assert found == []
        assert suppressed == 1

    def test_unjustified_pragma_suppresses_nothing_and_reports_det000(self):
        found, suppressed = codes_and_lines(FIXTURES / "det000_unjustified.py")
        assert suppressed == 0
        assert ("DET002", 7) in found
        assert ("DET000", 7) in found

    def test_pragma_on_preceding_line_covers_the_next_line(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    # detlint: allow[DET002] -- provenance only\n"
            "    return time.time()\n"
        )
        findings, suppressed = check_file("virtual.py", source=source)
        assert findings == []
        assert suppressed == 1

    def test_wildcard_pragma_covers_every_code(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  # detlint: allow[*] -- fixture for wildcard\n"
        )
        findings, suppressed = check_file("virtual.py", source=source)
        assert findings == []
        assert suppressed == 1


class TestScopedPragmas:
    """DET002's exemption surface inside ``obs/`` is one file: ``clock.py``."""

    def test_bare_wall_clock_in_obs_fires(self):
        found, suppressed = codes_and_lines(FIXTURES / "obs" / "bad_timer.py")
        assert found == [("DET002", 7)]
        assert suppressed == 0

    def test_justified_pragma_outside_clock_py_is_refused(self):
        found, suppressed = codes_and_lines(FIXTURES / "obs" / "pragma_refused.py")
        assert ("DET002", 8) in found
        assert suppressed == 0

    def test_clock_py_pragma_still_suppresses(self):
        found, suppressed = codes_and_lines(FIXTURES / "obs" / "clock.py")
        assert found == []
        assert suppressed == 1

    def test_real_clock_shim_is_the_only_obs_suppression(self):
        shim = REPO_ROOT / "src" / "repro" / "obs" / "clock.py"
        findings, suppressed = check_file(shim)
        assert findings == []
        assert suppressed == 1


class TestReport:
    def test_json_report_round_trip(self):
        report = check_paths([FIXTURES / "det001_bad.py", FIXTURES / "det002_bad.py"])
        assert not report.ok
        assert report.n_files == 2
        clone = Report.from_json(report.to_json())
        assert clone.findings == report.findings
        assert clone.n_suppressed == report.n_suppressed
        assert clone.n_files == report.n_files

    def test_report_dict_schema(self):
        report = check_paths([FIXTURES / "det006_bad.py"])
        data = json.loads(report.to_json())
        assert data["version"] == 1
        assert data["n_findings"] == len(data["findings"]) == 3
        for finding in data["findings"]:
            assert set(finding) == {"path", "line", "col", "code", "message"}

    def test_directory_walks_skip_fixtures_but_explicit_files_do_not(self):
        walked = check_paths([FIXTURES.parent])  # tests/analysis/
        assert walked.ok  # the fixture violations are excluded from walks
        explicit = check_paths([FIXTURES / "det001_bad.py"])
        assert not explicit.ok

    def test_syntax_error_is_reported_not_raised(self):
        findings, _ = check_file("broken.py", source="def broken(:\n")
        assert [f.code for f in findings] == ["DET999"]


class TestCommandLine:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )

    def test_cli_exits_nonzero_on_findings_and_writes_json(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run(
            str(FIXTURES / "det005" / "scheduler.py"), "--json", str(out)
        )
        assert proc.returncode == 1
        assert "DET005" in proc.stdout
        data = json.loads(out.read_text())
        assert data["n_findings"] == 2

    def test_cli_exits_zero_on_clean_input(self):
        proc = self._run(str(FIXTURES / "det002_good.py"))
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_cli_lists_every_registered_rule(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule_cls in RULES:
            assert rule_cls.code in proc.stdout

    def test_cli_rejects_missing_paths(self):
        proc = self._run("does/not/exist.py")
        assert proc.returncode == 2


class TestRegistry:
    def test_rule_codes_are_unique_and_ordered(self):
        rule_codes = [rule_cls.code for rule_cls in RULES]
        assert rule_codes == sorted(set(rule_codes))
        assert rule_codes == [f"DET00{i}" for i in range(1, 8)]

    def test_every_rule_documents_itself(self):
        for rule_cls in RULES:
            assert rule_cls.title and rule_cls.rationale


@pytest.mark.filterwarnings("ignore")
def test_the_real_tree_is_clean():
    """The merge gate: detlint over src/tests/benchmarks finds nothing.

    Every intentional exception must carry a justified allow-pragma —
    an unjustified one resurfaces here as DET000.
    """
    report = check_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    assert report.ok, "\n" + "\n".join(f.render() for f in report.findings)
    assert report.n_suppressed >= 1  # the eventlog provenance stamp, at least

"""DET002 bad fixture: wall-clock reads in a core path."""

import time
from datetime import datetime


def stamp_with_host_clock():
    started = time.time()
    elapsed = time.perf_counter() - started
    return datetime.now(), elapsed

"""Fixture: a justified DET002 pragma in obs/ outside clock.py is refused."""

import time


def sneaky_timer():
    # detlint: allow[DET002] -- looks justified, but obs/ only sanctions clock.py
    return time.monotonic()

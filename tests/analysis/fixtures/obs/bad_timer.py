"""Fixture: a bare wall-clock read inside the observability package."""

import time


def elapsed():
    return time.perf_counter()

"""Fixture: the sanctioned clock shim may suppress DET002 with a pragma."""

import time


def now():
    # detlint: allow[DET002] -- the sanctioned host-clock shim, telemetry only
    return time.perf_counter()

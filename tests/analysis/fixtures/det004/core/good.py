"""DET004 good fixture: explicit, stable iteration orders."""


def drain_order(workers, queues):
    drained = []
    for worker in sorted(set(workers)):
        drained.append(worker)
    for name in queues:  # insertion order is the contract here
        drained.append(name)
    first_seen = list(dict.fromkeys(workers))
    return drained + first_seen

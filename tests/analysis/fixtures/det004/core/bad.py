"""DET004 bad fixture (scoped: lives under a ``core`` path part)."""


def drain_order(workers, queues):
    drained = []
    for worker in set(workers):
        drained.append(worker)
    for flag in {"cpu", "disk"}:
        drained.append(flag)
    names = [name for name in queues.keys()]
    return drained + names

"""DET004 scope fixture: identical set iteration, but outside core/ml."""


def drain_order(workers):
    drained = []
    for worker in set(workers):
        drained.append(worker)
    return drained

"""DET002 good fixture: time flows from the simulated clock only."""


def advance(now_hours: float, duration_hours: float) -> float:
    return now_hours + duration_hours

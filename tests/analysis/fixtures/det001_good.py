"""DET001 good fixture: every stream derives from an explicit seed."""

import numpy as np


def tagged_stream(master_seed: int) -> np.random.Generator:
    entropy = np.random.SeedSequence([master_seed, 11])
    return np.random.default_rng(entropy)


def seeded_stream(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def generator_method_named_random(rng: np.random.Generator) -> float:
    # A Generator's own .random() is seeded state, not module-level entropy.
    return float(rng.random())

"""Pragma fixture: an unjustified pragma suppresses nothing (DET000)."""

import time


def provenance_stamp() -> float:
    return time.time()  # detlint: allow[DET002]

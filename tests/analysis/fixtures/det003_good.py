"""DET003 good fixture: domain-tagged SeedSequence streams (stream_for idiom)."""

import zlib

import numpy as np


def stream_for(master_seed: int, worker_id: str, channel: int) -> np.random.Generator:
    entropy = np.random.SeedSequence(
        [master_seed, zlib.crc32(worker_id.encode("utf-8")), channel]
    )
    return np.random.default_rng(entropy)


def spawned_children(master_seed: int, n: int) -> list:
    return [np.random.default_rng(s) for s in np.random.SeedSequence(master_seed).spawn(n)]

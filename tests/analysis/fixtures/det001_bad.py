"""DET001 bad fixture: entropy nobody seeded."""

import random

import numpy as np


def ambient_stream():
    return np.random.default_rng()


def explicit_none_stream():
    return np.random.default_rng(None)


def hidden_global_state():
    np.random.seed(42)
    return np.random.uniform(0.0, 1.0)


def stdlib_global_state():
    return random.randint(0, 10)

"""DET005 bad fixture: unstable sorts in a tie-break-sensitive module name."""

import numpy as np


def rank(values):
    order = np.argsort(values)
    best = values.argsort()[:3]
    return order, best

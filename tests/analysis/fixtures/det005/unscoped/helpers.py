"""DET005 scope fixture: unstable argsort, but not a tie-break-sensitive module."""

import numpy as np


def rank(values):
    return np.argsort(values)

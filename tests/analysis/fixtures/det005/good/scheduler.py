"""DET005 good fixture: stable sorts (and Python's always-stable sorted)."""

import numpy as np


def rank(values, items):
    order = np.argsort(values, kind="stable")
    merged = np.sort(values, kind="mergesort")
    tied = sorted(items, key=len)  # Python sort is stable by definition
    return order, merged, tied

"""DET003 bad fixture: sibling streams derived by seed arithmetic."""

import numpy as np


def sibling_stream(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed + 1)


def offset_entropy(seed: int) -> np.random.SeedSequence:
    return np.random.SeedSequence(seed * 1000)

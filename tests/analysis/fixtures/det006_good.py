"""DET006 good fixture: the envelope stays EventLog.append's business."""


def record_actions(log, items):
    log.append("submit", worker="w-0")
    for item in items:
        items_kind = {"worker": item}  # plain payload dict, no envelope keys
        log.append("complete", **items_kind)

"""DET007 good fixture: specific or genuinely handled exceptions."""


def drain(queue):
    try:
        return queue.pop()
    except IndexError:
        return None


def observe(callback, log):
    try:
        callback()
    except Exception:
        log.append("callback failed")
        raise


def settle(table, key):
    try:
        return table[key]
    except (KeyError, ValueError):
        pass
    return None

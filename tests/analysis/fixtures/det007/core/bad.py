"""DET007 bad fixture: swallowed exceptions in failure-handling code."""


def drain(queue):
    try:
        return queue.pop()
    except:
        return None


def observe(callback):
    try:
        callback()
    except Exception:
        pass


def tick(handlers):
    try:
        handlers[0]()
    except (ValueError, BaseException):
        ...

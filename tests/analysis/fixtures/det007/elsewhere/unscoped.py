"""DET007 scoping fixture: outside core/faults the rule does not apply."""


def best_effort(callback):
    try:
        callback()
    except Exception:
        pass

"""DET006 bad fixture: forging the event-log envelope outside eventlog.py."""


def forge(log):
    log.append("submit", seq=3)
    log.append("complete", kind="complete", worker="w-0")
    record = {"seq": 0, "kind": "submit", "worker": "w-0"}
    return record

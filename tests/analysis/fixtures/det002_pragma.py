"""Pragma fixture: a justified allow-pragma suppresses the finding."""

import time


def provenance_stamp() -> float:
    return time.time()  # detlint: allow[DET002] -- provenance stamp only, never consumed by replay

"""Tests for repro.ml.metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.ml.metrics import (
    coefficient_of_variation,
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    r2_score,
    relative_range,
)


class TestMeanSquaredError:
    def test_zero_for_identical_vectors(self):
        assert mean_squared_error([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestMeanAbsoluteError:
    def test_known_value(self):
        assert mean_absolute_error([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_symmetry(self):
        a = [1.0, 5.0, -2.0]
        b = [0.5, 4.0, 2.0]
        assert mean_absolute_error(a, b) == pytest.approx(mean_absolute_error(b, a))


class TestMeanRelativeError:
    def test_known_value(self):
        # |110-100|/100 = 0.1, |90-100|/100 = 0.1
        assert mean_relative_error([100.0, 100.0], [110.0, 90.0]) == pytest.approx(0.1)

    def test_zero_true_value_raises(self):
        with pytest.raises(ValueError):
            mean_relative_error([0.0, 1.0], [1.0, 1.0])


class TestR2Score:
    def test_perfect_prediction(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_mean_prediction_gives_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_constant_target(self):
        assert r2_score([5.0, 5.0], [5.0, 5.0]) == 1.0


class TestCoefficientOfVariation:
    def test_constant_values_have_zero_cov(self):
        assert coefficient_of_variation([10.0, 10.0, 10.0]) == 0.0

    def test_known_value(self):
        values = [90.0, 110.0]
        # std = 10, mean = 100
        assert coefficient_of_variation(values) == pytest.approx(0.1)

    def test_zero_mean_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1.0, 1.0])

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=50),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scale_invariance(self, values, scale):
        """CoV is invariant to multiplying every sample by a constant."""
        base = coefficient_of_variation(values)
        scaled = coefficient_of_variation([v * scale for v in values])
        assert scaled == pytest.approx(base, rel=1e-6, abs=1e-9)


class TestRelativeRange:
    def test_constant_values(self):
        assert relative_range([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        # max 120, min 80, mean 100 -> 0.4
        assert relative_range([80.0, 100.0, 120.0]) == pytest.approx(0.4)

    def test_insensitive_to_outlier_count(self):
        """Paper §4.2: one outlier or two extreme outliers classify the same."""
        one_outlier = relative_range([100.0, 100.0, 100.0, 50.0])
        # Same extremes, more outliers; mean shifts but range stays wide.
        two_outliers = relative_range([100.0, 100.0, 50.0, 50.0])
        assert one_outlier > 0.3
        assert two_outliers > 0.3

    def test_zero_mean_raises(self):
        with pytest.raises(ValueError):
            relative_range([-1.0, 1.0])

    @given(st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=40))
    def test_non_negative(self, values):
        assert relative_range(values) >= 0.0

    @given(
        st.lists(st.floats(min_value=10.0, max_value=1e4), min_size=2, max_size=30),
        st.floats(min_value=0.5, max_value=20.0),
    )
    def test_scale_invariance(self, values, scale):
        base = relative_range(values)
        scaled = relative_range([v * scale for v in values])
        assert scaled == pytest.approx(base, rel=1e-6, abs=1e-9)

    def test_stable_vs_unstable_threshold(self):
        """Samples mimicking the paper's stable/unstable split around 30%."""
        stable = [1000.0, 1020.0, 990.0, 1010.0]
        unstable = [1000.0, 1020.0, 300.0, 1010.0]
        assert relative_range(stable) < 0.30
        assert relative_range(unstable) > 0.30

"""Tests for GP regression and kernels."""

import numpy as np
import pytest

from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernels import (
    ConstantKernel,
    Matern52Kernel,
    RBFKernel,
    WhiteKernel,
)


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        X = np.random.default_rng(0).random((10, 3))
        K = RBFKernel(length_scale=0.7)(X, X)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_psd(self):
        X = np.random.default_rng(1).random((15, 2))
        K = RBFKernel()(X, X)
        assert np.allclose(K, K.T)
        eigvals = np.linalg.eigvalsh(K + 1e-10 * np.eye(15))
        assert np.all(eigvals > -1e-8)

    def test_matern_diagonal_is_one(self):
        X = np.random.default_rng(2).random((8, 4))
        K = Matern52Kernel(length_scale=0.5)(X, X)
        assert np.allclose(np.diag(K), 1.0)

    def test_matern_decays_with_distance(self):
        k = Matern52Kernel(length_scale=1.0)
        a = np.array([[0.0]])
        near = k(a, np.array([[0.1]]))[0, 0]
        far = k(a, np.array([[2.0]]))[0, 0]
        assert near > far

    def test_constant_kernel(self):
        K = ConstantKernel(2.5)(np.zeros((3, 1)), np.zeros((4, 1)))
        assert K.shape == (3, 4)
        assert np.all(K == 2.5)

    def test_white_kernel_only_diagonal(self):
        X = np.random.default_rng(3).random((5, 2))
        K = WhiteKernel(0.1)(X, X)
        assert np.allclose(K, 0.1 * np.eye(5))

    def test_white_kernel_identity_detection_is_by_object(self):
        # Self-covariance is detected by object identity only; an
        # equal-but-distinct array is treated as cross-covariance (zeros)
        # instead of paying an O(n*d) element comparison per call.
        X = np.random.default_rng(3).random((5, 2))
        assert np.allclose(WhiteKernel(0.1)(X, X.copy()), np.zeros((5, 5)))
        assert np.allclose(WhiteKernel(0.1).diag(X), np.full(5, 0.1))
        # A non-array input that is the same object is still self-covariance.
        rows = X.tolist()
        assert np.allclose(WhiteKernel(0.1)(rows, rows), 0.1 * np.eye(5))

    def test_diag_matches_full_matrix_diagonal(self):
        X = np.random.default_rng(4).random((9, 3))
        kernels = [
            RBFKernel(0.7),
            Matern52Kernel(0.4),
            ConstantKernel(2.5),
            WhiteKernel(0.05),
            ConstantKernel(2.0) * RBFKernel(0.5) + WhiteKernel(0.01),
            ConstantKernel(3.0) * Matern52Kernel(0.8),
        ]
        for kernel in kernels:
            assert np.allclose(kernel.diag(X), np.diag(kernel(X, X)))

    def test_base_class_diag_fallback_avoids_full_matrix(self):
        class TracingRBF(RBFKernel):
            max_rows = 0

            def __call__(self, A, B):
                self.max_rows = max(self.max_rows, np.atleast_2d(A).shape[0])
                return super().__call__(A, B)

            diag = None  # force the base-class fallback

        kernel = TracingRBF(0.5)
        from repro.ml.kernels import Kernel

        X = np.random.default_rng(5).random((30, 2))
        diag = Kernel.diag(kernel, X)
        assert np.allclose(diag, 1.0)
        assert kernel.max_rows == 1  # never evaluated more than 1x1 blocks

    def test_kernel_composition(self):
        X = np.random.default_rng(4).random((6, 2))
        k = ConstantKernel(2.0) * RBFKernel(0.5) + WhiteKernel(0.01)
        K = k(X, X)
        expected = 2.0 * RBFKernel(0.5)(X, X) + 0.01 * np.eye(6)
        assert np.allclose(K, expected)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0.0)
        with pytest.raises(ValueError):
            Matern52Kernel(length_scale=-1.0)
        with pytest.raises(ValueError):
            ConstantKernel(0.0)
        with pytest.raises(ValueError):
            WhiteKernel(-0.1)


class TestGaussianProcess:
    def test_interpolates_noise_free_data(self):
        X = np.linspace(0, 1, 12).reshape(-1, 1)
        y = np.sin(4.0 * X[:, 0])
        gp = GaussianProcessRegressor(noise=1e-8).fit(X, y)
        pred = gp.predict(X)
        assert np.allclose(pred, y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self):
        X = np.linspace(0.3, 0.7, 10).reshape(-1, 1)
        y = np.cos(3 * X[:, 0])
        gp = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        _, std_in = gp.predict(np.array([[0.5]]), return_std=True)
        _, std_out = gp.predict(np.array([[0.0]]), return_std=True)
        assert std_out[0] > std_in[0]

    def test_std_nonnegative(self):
        rng = np.random.default_rng(0)
        X = rng.random((30, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        gp = GaussianProcessRegressor().fit(X, y)
        _, std = gp.predict(rng.random((20, 3)), return_std=True)
        assert np.all(std >= 0.0)

    def test_prediction_reasonable_on_held_out(self):
        rng = np.random.default_rng(1)
        X = rng.random((60, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        Xt = rng.random((20, 2))
        yt = np.sin(3 * Xt[:, 0]) + Xt[:, 1] ** 2
        gp = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        pred = gp.predict(Xt)
        assert np.mean(np.abs(pred - yt)) < 0.1

    def test_normalization_handles_large_targets(self):
        X = np.linspace(0, 1, 15).reshape(-1, 1)
        y = 50_000.0 + 5_000.0 * np.sin(5 * X[:, 0])
        gp = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        pred = gp.predict(X)
        assert np.max(np.abs(pred - y)) < 500.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict([[0.0]])

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_log_marginal_likelihood_finite(self):
        X = np.random.default_rng(2).random((25, 2))
        y = X[:, 0] * 2.0
        gp = GaussianProcessRegressor(noise=1e-4).fit(X, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_log_marginal_likelihood_matches_direct_formula(self):
        # Regression test: the data-fit term must use y_norm = L (L^T alpha),
        # not L (L^-1 alpha), which collapses to alpha.
        rng = np.random.default_rng(6)
        X = rng.random((18, 3))
        y = np.sin(5 * X[:, 0]) + 0.5 * X[:, 1]
        noise = 1e-3
        gp = GaussianProcessRegressor(noise=noise, normalize_y=True).fit(X, y)

        y_norm = (y - np.mean(y)) / np.std(y)
        K = gp.kernel(X, X)
        K[np.diag_indices_from(K)] += noise + 1e-10
        n = X.shape[0]
        direct = (
            -0.5 * float(y_norm @ np.linalg.solve(K, y_norm))
            - 0.5 * float(np.log(np.linalg.det(K)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        assert gp.log_marginal_likelihood() == pytest.approx(direct, rel=1e-8)

    def test_prior_variance_far_from_data_approaches_kernel_diag(self):
        # With kernel.diag used for the prior term, the posterior variance
        # far away from the data must approach k(x, x) = 1 for Matern 5/2.
        X = np.full((8, 2), 0.5) + np.random.default_rng(7).normal(0, 0.01, (8, 2))
        y = np.random.default_rng(8).normal(size=8)
        gp = GaussianProcessRegressor(noise=1e-6, normalize_y=False).fit(X, y)
        _, std = gp.predict(np.array([[50.0, -50.0]]), return_std=True)
        assert std[0] == pytest.approx(1.0, abs=1e-6)

    def test_constant_targets(self):
        X = np.random.default_rng(3).random((10, 2))
        gp = GaussianProcessRegressor().fit(X, np.full(10, 3.0))
        assert np.allclose(gp.predict(X), 3.0, atol=1e-6)

"""Tests for GP regression and kernels."""

import numpy as np
import pytest

from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernels import (
    ConstantKernel,
    Matern52Kernel,
    RBFKernel,
    WhiteKernel,
)


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        X = np.random.default_rng(0).random((10, 3))
        K = RBFKernel(length_scale=0.7)(X, X)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_psd(self):
        X = np.random.default_rng(1).random((15, 2))
        K = RBFKernel()(X, X)
        assert np.allclose(K, K.T)
        eigvals = np.linalg.eigvalsh(K + 1e-10 * np.eye(15))
        assert np.all(eigvals > -1e-8)

    def test_matern_diagonal_is_one(self):
        X = np.random.default_rng(2).random((8, 4))
        K = Matern52Kernel(length_scale=0.5)(X, X)
        assert np.allclose(np.diag(K), 1.0)

    def test_matern_decays_with_distance(self):
        k = Matern52Kernel(length_scale=1.0)
        a = np.array([[0.0]])
        near = k(a, np.array([[0.1]]))[0, 0]
        far = k(a, np.array([[2.0]]))[0, 0]
        assert near > far

    def test_constant_kernel(self):
        K = ConstantKernel(2.5)(np.zeros((3, 1)), np.zeros((4, 1)))
        assert K.shape == (3, 4)
        assert np.all(K == 2.5)

    def test_white_kernel_only_diagonal(self):
        X = np.random.default_rng(3).random((5, 2))
        K = WhiteKernel(0.1)(X, X)
        assert np.allclose(K, 0.1 * np.eye(5))

    def test_kernel_composition(self):
        X = np.random.default_rng(4).random((6, 2))
        k = ConstantKernel(2.0) * RBFKernel(0.5) + WhiteKernel(0.01)
        K = k(X, X)
        expected = 2.0 * RBFKernel(0.5)(X, X) + 0.01 * np.eye(6)
        assert np.allclose(K, expected)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0.0)
        with pytest.raises(ValueError):
            Matern52Kernel(length_scale=-1.0)
        with pytest.raises(ValueError):
            ConstantKernel(0.0)
        with pytest.raises(ValueError):
            WhiteKernel(-0.1)


class TestGaussianProcess:
    def test_interpolates_noise_free_data(self):
        X = np.linspace(0, 1, 12).reshape(-1, 1)
        y = np.sin(4.0 * X[:, 0])
        gp = GaussianProcessRegressor(noise=1e-8).fit(X, y)
        pred = gp.predict(X)
        assert np.allclose(pred, y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self):
        X = np.linspace(0.3, 0.7, 10).reshape(-1, 1)
        y = np.cos(3 * X[:, 0])
        gp = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        _, std_in = gp.predict(np.array([[0.5]]), return_std=True)
        _, std_out = gp.predict(np.array([[0.0]]), return_std=True)
        assert std_out[0] > std_in[0]

    def test_std_nonnegative(self):
        rng = np.random.default_rng(0)
        X = rng.random((30, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        gp = GaussianProcessRegressor().fit(X, y)
        _, std = gp.predict(rng.random((20, 3)), return_std=True)
        assert np.all(std >= 0.0)

    def test_prediction_reasonable_on_held_out(self):
        rng = np.random.default_rng(1)
        X = rng.random((60, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        Xt = rng.random((20, 2))
        yt = np.sin(3 * Xt[:, 0]) + Xt[:, 1] ** 2
        gp = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        pred = gp.predict(Xt)
        assert np.mean(np.abs(pred - yt)) < 0.1

    def test_normalization_handles_large_targets(self):
        X = np.linspace(0, 1, 15).reshape(-1, 1)
        y = 50_000.0 + 5_000.0 * np.sin(5 * X[:, 0])
        gp = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        pred = gp.predict(X)
        assert np.max(np.abs(pred - y)) < 500.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict([[0.0]])

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_log_marginal_likelihood_finite(self):
        X = np.random.default_rng(2).random((25, 2))
        y = X[:, 0] * 2.0
        gp = GaussianProcessRegressor(noise=1e-4).fit(X, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_constant_targets(self):
        X = np.random.default_rng(3).random((10, 2))
        gp = GaussianProcessRegressor().fit(X, np.full(10, 3.0))
        assert np.allclose(gp.predict(X), 3.0, atol=1e-6)

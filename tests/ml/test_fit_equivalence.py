"""Vectorized fit must reproduce the pointer reference bit for bit.

``DecisionTreeRegressor.fit`` (level-synchronous builder, see
:mod:`repro.ml.treebuilder`) and ``fit_pointer`` (per-node queue over
pointer nodes) share canonical arithmetic by construction: the same RNG
consumption order for feature subsampling, the same sequential weighted
cumulative sums, the same tie-breaking.  These tests pin that contract at
full strength — *exact* equality of the emitted flat node tables and of
every prediction, across seeds, ``max_features`` settings, duplicate rows,
constant targets, and bootstrap sample weights.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor

FLAT_FIELDS = ("feature", "threshold", "left", "right", "value", "variance", "n_samples")


def assert_flat_equal(flat_a, flat_b):
    for field in FLAT_FIELDS:
        a = getattr(flat_a, field)
        b = getattr(flat_b, field)
        assert a.shape == b.shape, field
        assert a.dtype == b.dtype, field
        assert np.array_equal(a, b, equal_nan=True), field


def _problem(seed, n, d, duplicates=False, constant=False):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    if duplicates:
        X = np.round(X * 4.0) / 4.0
    if constant:
        y = np.full(n, 7.5)
    else:
        y = rng.normal(size=n) + 2.0 * X[:, 0] - X[:, d // 2] ** 2
    return X, y


TREE_CASES = [
    # (seed, n, d, max_features, max_depth, min_leaf, duplicates, constant)
    (0, 120, 5, None, None, 1, False, False),
    (1, 120, 5, 5.0 / 6.0, None, 1, False, False),
    (2, 120, 5, 0.5, None, 1, False, False),
    (3, 120, 5, 2, None, 1, False, False),
    (4, 80, 4, 1, 3, 1, False, False),
    (5, 150, 6, 0.5, None, 7, False, False),
    (6, 90, 5, 5.0 / 6.0, None, 1, True, False),
    (7, 40, 3, None, None, 1, False, True),
    (8, 2, 2, None, None, 1, False, False),
    (9, 1, 2, None, None, 1, False, False),
    (10, 60, 3, 0.5, 1, 1, True, False),
]


class TestTreeFitEquivalence:
    @pytest.mark.parametrize(
        "seed,n,d,max_features,max_depth,min_leaf,dup,const", TREE_CASES
    )
    def test_flat_arrays_and_predictions_identical(
        self, seed, n, d, max_features, max_depth, min_leaf, dup, const
    ):
        X, y = _problem(seed, n, d, duplicates=dup, constant=const)
        kwargs = dict(
            max_depth=max_depth,
            min_samples_leaf=min_leaf,
            max_features=max_features,
            seed=seed * 13 + 1,
        )
        fast = DecisionTreeRegressor(**kwargs).fit(X, y)
        ref = DecisionTreeRegressor(**kwargs).fit_pointer(X, y)
        assert_flat_equal(fast.flat, ref.flat)
        rng = np.random.default_rng(seed + 100)
        for Xq in (X, rng.random((80, d))):
            assert np.array_equal(fast.predict(Xq), ref.predict(Xq))
            mean_a, var_a = fast.predict_with_variance(Xq)
            mean_b, var_b = ref.predict_with_variance(Xq)
            assert np.array_equal(mean_a, mean_b)
            assert np.array_equal(var_a, var_b)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_sample_weight_equivalence(self, seed):
        """Integer weights (the bootstrap encoding) agree across both paths."""
        X, y = _problem(seed, 70, 4)
        rng = np.random.default_rng(seed)
        w = rng.integers(0, 4, size=70).astype(float)
        w[0] = 1.0  # guarantee a positive entry
        fast = DecisionTreeRegressor(seed=5).fit(X, y, sample_weight=w)
        ref = DecisionTreeRegressor(seed=5).fit_pointer(X, y, sample_weight=w)
        assert_flat_equal(fast.flat, ref.flat)
        # Rows with zero weight must not influence the tree: root count is
        # the total weight, not the row count.
        assert fast.flat.n_samples[0] == int(w.sum())

    def test_rng_consumption_matches(self):
        """Both fits leave the feature-subsampling stream in the same state."""
        X, y = _problem(11, 100, 6)
        fast = DecisionTreeRegressor(max_features=0.5, seed=9).fit(X, y)
        ref = DecisionTreeRegressor(max_features=0.5, seed=9).fit_pointer(X, y)
        a = fast._rng.integers(0, 2**31 - 1)
        b = ref._rng.integers(0, 2**31 - 1)
        assert a == b


class TestForestFitEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("min_leaf", [1, 4])
    def test_forest_bit_for_bit(self, seed, min_leaf):
        X, y = _problem(seed, 130, 6)
        kwargs = dict(n_estimators=12, min_samples_leaf=min_leaf, seed=seed)
        fast = RandomForestRegressor(**kwargs).fit(X, y)
        ref = RandomForestRegressor(**kwargs).fit_pointer(X, y)
        assert len(fast.trees_) == len(ref.trees_)
        for tree_a, tree_b in zip(fast.trees_, ref.trees_):
            assert_flat_equal(tree_a.flat, tree_b.flat)
        Xq = np.random.default_rng(seed + 50).random((200, 6))
        mean_a, std_a = fast.predict_mean_std(Xq)
        mean_b, std_b = ref.predict_mean_std(Xq)
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(std_a, std_b)
        assert np.array_equal(fast.predict(Xq), ref.predict(Xq))

    def test_no_bootstrap_equivalence(self):
        X, y = _problem(4, 90, 5)
        fast = RandomForestRegressor(n_estimators=6, bootstrap=False, seed=2).fit(X, y)
        ref = RandomForestRegressor(n_estimators=6, bootstrap=False, seed=2).fit_pointer(
            X, y
        )
        for tree_a, tree_b in zip(fast.trees_, ref.trees_):
            assert_flat_equal(tree_a.flat, tree_b.flat)

    def test_constant_target_forest(self):
        X, _ = _problem(6, 50, 4)
        y = np.full(50, -3.25)
        fast = RandomForestRegressor(n_estimators=8, seed=1).fit(X, y)
        ref = RandomForestRegressor(n_estimators=8, seed=1).fit_pointer(X, y)
        for tree_a, tree_b in zip(fast.trees_, ref.trees_):
            assert_flat_equal(tree_a.flat, tree_b.flat)
            assert tree_a.n_leaves == 1
        assert np.allclose(fast.predict(X), -3.25)

    def test_duplicate_rows_forest(self):
        """Quantised features force threshold tie-breaking in every tree."""
        X, y = _problem(7, 110, 5, duplicates=True)
        fast = RandomForestRegressor(n_estimators=10, seed=3).fit(X, y)
        ref = RandomForestRegressor(n_estimators=10, seed=3).fit_pointer(X, y)
        for tree_a, tree_b in zip(fast.trees_, ref.trees_):
            assert_flat_equal(tree_a.flat, tree_b.flat)

    def test_forest_rng_consumption_matches(self):
        X, y = _problem(8, 80, 5)
        fast = RandomForestRegressor(n_estimators=5, seed=11).fit(X, y)
        ref = RandomForestRegressor(n_estimators=5, seed=11).fit_pointer(X, y)
        assert fast._rng.integers(0, 2**31 - 1) == ref._rng.integers(0, 2**31 - 1)

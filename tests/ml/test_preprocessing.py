"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.preprocessing import OneHotEncoder, StandardScaler


class TestStandardScaler:
    def test_transform_gives_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Xt = StandardScaler().fit_transform(X)
        assert np.allclose(Xt.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Xt.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_does_not_nan(self):
        X = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        Xt = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xt))
        assert np.allclose(Xt[:, 1], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3)) * 10 + 2
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_dimension_mismatch_raises(self):
        scaler = StandardScaler().fit([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            scaler.transform([[1.0, 2.0, 3.0]])

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(min_value=2, max_value=30),
                st.integers(min_value=1, max_value=5),
            ),
            elements=st.floats(min_value=-1e6, max_value=1e6),
        )
    )
    def test_roundtrip_property(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X, atol=1e-6, rtol=1e-6)


class TestOneHotEncoder:
    def test_basic_encoding(self):
        enc = OneHotEncoder().fit(["a", "b", "c"])
        out = enc.transform(["b", "a"])
        assert out.shape == (2, 3)
        assert out[0].tolist() == [0.0, 1.0, 0.0]
        assert out[1].tolist() == [1.0, 0.0, 0.0]

    def test_unknown_category_maps_to_zeros(self):
        enc = OneHotEncoder().fit(["w1", "w2"])
        out = enc.transform(["w3"])
        assert out.tolist() == [[0.0, 0.0]]

    def test_explicit_categories(self):
        enc = OneHotEncoder(categories=["w0", "w1", "w2"]).fit([])
        assert enc.n_categories == 3
        assert enc.transform_one("w2").tolist() == [0.0, 0.0, 1.0]

    def test_duplicate_labels_collapse(self):
        enc = OneHotEncoder().fit(["x", "x", "y", "x"])
        assert enc.categories_ == ["x", "y"]

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            OneHotEncoder().fit([])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform(["a"])

    def test_each_row_sums_to_at_most_one(self):
        enc = OneHotEncoder().fit(list("abcdef"))
        out = enc.transform(list("fedxyz"))
        sums = out.sum(axis=1)
        assert np.all((sums == 0.0) | (sums == 1.0))

"""Tests for the single-entry surrogate cache."""

from repro.ml.cache import SurrogateCache


class TestSurrogateCache:
    def test_empty_cache_misses(self):
        cache = SurrogateCache()
        assert cache.get(1) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_put_then_get(self):
        cache = SurrogateCache()
        payload = object()
        cache.put(("n", 5), payload)
        assert cache.get(("n", 5)) is payload
        assert cache.hits == 1

    def test_stale_key_misses_and_is_replaced(self):
        cache = SurrogateCache()
        cache.put(5, "model-a")
        assert cache.get(6) is None
        cache.put(6, "model-b")
        assert cache.get(6) == "model-b"
        assert cache.get(5) is None  # only one entry is kept

    def test_invalidate(self):
        cache = SurrogateCache()
        cache.put(1, "model")
        cache.invalidate()
        assert cache.get(1) is None

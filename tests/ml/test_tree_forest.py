"""Tests for the CART tree and random-forest regressors."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


def _make_regression(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 5))
    y = 3.0 * X[:, 0] + np.sin(4.0 * X[:, 1]) + 0.5 * X[:, 2] ** 2
    return X, y


class TestDecisionTree:
    def test_fits_training_data_exactly_when_unrestricted(self):
        X, y = _make_regression(n=80)
        tree = DecisionTreeRegressor(seed=0).fit(X, y)
        assert r2_score(y, tree.predict(X)) > 0.999

    def test_single_sample(self):
        tree = DecisionTreeRegressor().fit([[1.0, 2.0]], [5.0])
        assert tree.predict([[9.0, 9.0]])[0] == pytest.approx(5.0)

    def test_constant_target(self):
        X = np.random.default_rng(0).random((20, 3))
        tree = DecisionTreeRegressor().fit(X, np.full(20, 7.0))
        assert np.allclose(tree.predict(X), 7.0)
        assert tree.n_leaves == 1

    def test_max_depth_limits_depth(self):
        X, y = _make_regression(n=150)
        tree = DecisionTreeRegressor(max_depth=3, seed=0).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self):
        X, y = _make_regression(n=60)
        tree = DecisionTreeRegressor(min_samples_leaf=10, seed=0).fit(X, y)
        flat = tree.flat
        leaves = flat.left < 0
        assert np.all(flat.n_samples[leaves] >= 10)

    def test_depth_iterative_on_degenerate_chain(self):
        # An exponentially growing target keeps splitting off the largest
        # remaining elements, producing a heavily unbalanced tree; computing
        # its depth under a tiny recursion budget proves the walk is
        # iterative (the old nested-recursive version needed ~2 frames per
        # level and would raise RecursionError here).
        import inspect
        import sys

        n = 600
        X = np.arange(n, dtype=float)[:, None]
        y = 1.8 ** np.arange(n)
        tree = DecisionTreeRegressor(seed=0).fit(X, y)
        limit = sys.getrecursionlimit()
        # Leave headroom above the live stack (pytest runners vary) while
        # staying far below what a recursive walk of this tree would need.
        sys.setrecursionlimit(len(inspect.stack()) + 50)
        try:
            depth = tree.depth
        finally:
            sys.setrecursionlimit(limit)
        assert depth > 250
        assert tree.n_leaves == n

    def test_generalises_on_smooth_function(self):
        X, y = _make_regression(n=400, seed=1)
        Xt, yt = _make_regression(n=100, seed=2)
        tree = DecisionTreeRegressor(min_samples_leaf=3, seed=0).fit(X, y)
        assert r2_score(yt, tree.predict(Xt)) > 0.8

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_dimension_mismatch_raises(self):
        X, y = _make_regression(n=30)
        tree = DecisionTreeRegressor().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 3)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_variance_prediction_zero_for_pure_leaves(self):
        X, y = _make_regression(n=50)
        tree = DecisionTreeRegressor(seed=0).fit(X, y)
        _, var = tree.predict_with_variance(X)
        assert np.all(var >= 0.0)

    def test_deterministic_given_seed(self):
        X, y = _make_regression(n=100)
        p1 = DecisionTreeRegressor(max_features=0.5, seed=7).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(max_features=0.5, seed=7).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)


class TestRandomForest:
    def test_fits_and_generalises(self):
        X, y = _make_regression(n=300, seed=3)
        Xt, yt = _make_regression(n=100, seed=4)
        forest = RandomForestRegressor(n_estimators=25, seed=0).fit(X, y)
        assert r2_score(yt, forest.predict(Xt)) > 0.85

    def test_prediction_shape(self):
        X, y = _make_regression(n=50)
        forest = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
        assert forest.predict(X[:7]).shape == (7,)

    def test_mean_std_shapes_and_positive_std(self):
        X, y = _make_regression(n=100)
        forest = RandomForestRegressor(n_estimators=10, seed=1).fit(X, y)
        mean, std = forest.predict_mean_std(X[:9])
        assert mean.shape == (9,)
        assert std.shape == (9,)
        assert np.all(std >= 0.0)

    def test_uncertainty_larger_far_from_data(self):
        rng = np.random.default_rng(0)
        X = rng.random((150, 2)) * 0.4  # train only in [0, 0.4]^2
        y = X[:, 0] * 10 + rng.normal(0, 0.05, 150)
        forest = RandomForestRegressor(n_estimators=30, seed=2).fit(X, y)
        _, std_near = forest.predict_mean_std(np.array([[0.2, 0.2]]))
        _, std_far = forest.predict_mean_std(np.array([[0.95, 0.95]]))
        # Not guaranteed in general for forests, but holds for this setup.
        assert std_far[0] >= std_near[0] * 0.5

    def test_deterministic_given_seed(self):
        X, y = _make_regression(n=80)
        f1 = RandomForestRegressor(n_estimators=8, seed=42).fit(X, y)
        f2 = RandomForestRegressor(n_estimators=8, seed=42).fit(X, y)
        assert np.array_equal(f1.predict(X), f2.predict(X))

    def test_different_seeds_differ(self):
        X, y = _make_regression(n=80)
        f1 = RandomForestRegressor(n_estimators=8, seed=1).fit(X, y)
        f2 = RandomForestRegressor(n_estimators=8, seed=2).fit(X, y)
        assert not np.array_equal(f1.predict(X), f2.predict(X))

    def test_feature_importances_sum_to_one(self):
        X, y = _make_regression(n=120)
        forest = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        importances = forest.feature_importances()
        assert importances.shape == (5,)
        assert importances.sum() == pytest.approx(1.0)

    def test_important_feature_detected(self):
        rng = np.random.default_rng(5)
        X = rng.random((300, 4))
        y = 10.0 * X[:, 2] + rng.normal(0, 0.01, 300)
        forest = RandomForestRegressor(n_estimators=20, seed=0).fit(X, y)
        importances = forest.feature_importances()
        assert int(np.argmax(importances)) == 2

    def test_small_training_set(self):
        """Noise adjuster is a cold-start model; must cope with tiny data."""
        X = np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        y = np.array([1.0, 2.0, 3.0])
        forest = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
        preds = forest.predict(X)
        assert preds.shape == (3,)
        assert np.all(np.isfinite(preds))

    def test_errors(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        forest = RandomForestRegressor(n_estimators=3)
        with pytest.raises(RuntimeError):
            forest.predict([[1.0]])
        with pytest.raises(ValueError):
            forest.fit(np.zeros((0, 2)), [])

"""Flat-array inference must agree with the legacy pointer walk.

Property-style checks over randomised fits: the vectorized structure-of-
arrays ``predict`` / ``predict_with_variance`` (tree) and
``predict_mean_std`` (forest) are compared against the per-row pointer-walk
reference implementations that the seed shipped with (kept as
``*_pointer`` methods).  Tree-level results must be *identical* — both
paths gather the same leaf statistics.  Forest-level aggregates are allowed
float-addition-order slack only (NumPy's reductions are not bit-stable
across allocations), pinned at 1e-12.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor


def _random_problem(rng, n, d, duplicates=False):
    X = rng.random((n, d))
    if duplicates:
        # Quantise features so many rows share values and splits must
        # tie-break between equal thresholds.
        X = np.round(X * 4.0) / 4.0
    y = rng.normal(size=n) + 2.0 * X[:, 0] - X[:, d // 2] ** 2
    return X, y


TREE_CASES = [
    # (rng_seed, max_depth, min_samples_leaf, n, d, duplicates)
    (10, None, 1, 120, 5, False),
    (11, None, 1, 120, 5, True),
    (12, 3, 1, 80, 4, False),
    (13, None, 7, 150, 6, False),
    (14, 1, 1, 60, 3, True),
    (15, None, 1, 2, 2, False),
]


class TestTreeEquivalence:
    @pytest.mark.parametrize("seed,max_depth,min_leaf,n,d,dup", TREE_CASES)
    def test_predict_identical_to_pointer_walk(self, seed, max_depth, min_leaf, n, d, dup):
        rng = np.random.default_rng(seed)
        X, y = _random_problem(rng, n, d, duplicates=dup)
        tree = DecisionTreeRegressor(
            max_depth=max_depth, min_samples_leaf=min_leaf, seed=0
        ).fit(X, y)
        for Xq in (X, rng.random((200, d)), np.round(rng.random((50, d)) * 4) / 4):
            assert np.array_equal(tree.predict(Xq), tree.predict_pointer(Xq))
            mean, var = tree.predict_with_variance(Xq)
            mean_ref, var_ref = tree.predict_with_variance_pointer(Xq)
            assert np.array_equal(mean, mean_ref)
            assert np.array_equal(var, var_ref)

    def test_single_leaf_tree(self):
        X = np.ones((10, 3))  # no split possible: constant features
        y = np.arange(10.0)
        tree = DecisionTreeRegressor(seed=0).fit(X, y)
        assert tree.n_leaves == 1
        Xq = np.random.default_rng(0).random((25, 3))
        assert np.array_equal(tree.predict(Xq), tree.predict_pointer(Xq))
        assert np.allclose(tree.predict(Xq), np.mean(y))

    def test_query_values_exactly_on_thresholds(self):
        rng = np.random.default_rng(3)
        X = rng.integers(0, 4, size=(100, 3)).astype(float)
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(seed=1).fit(X, y)
        # Integer grid + midpoint thresholds exercises the <= boundary.
        Xq = rng.integers(0, 4, size=(300, 3)).astype(float)
        assert np.array_equal(tree.predict(Xq), tree.predict_pointer(Xq))

    def test_empty_query(self):
        X = np.random.default_rng(0).random((20, 4))
        tree = DecisionTreeRegressor(seed=0).fit(X, X[:, 0])
        assert tree.predict(np.zeros((0, 4))).shape == (0,)

    def test_flat_arrays_describe_the_tree(self):
        X = np.random.default_rng(1).random((60, 4))
        tree = DecisionTreeRegressor(seed=0).fit(X, X[:, 1])
        flat = tree.flat
        leaves = flat.left < 0
        assert np.count_nonzero(leaves) == tree.n_leaves
        # Internal nodes reference children inside the array.
        internal = ~leaves
        assert np.all(flat.left[internal] >= 0)
        assert np.all(flat.right[internal] >= 0)
        assert np.all(flat.left < flat.n_nodes)
        assert np.all(flat.right < flat.n_nodes)
        # Root carries all the samples.
        assert flat.n_samples[0] == 60


class TestForestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("min_leaf", [1, 4])
    def test_mean_std_matches_pointer_walk(self, seed, min_leaf):
        rng = np.random.default_rng(seed)
        X, y = _random_problem(rng, 130, 6)
        forest = RandomForestRegressor(
            n_estimators=12, min_samples_leaf=min_leaf, seed=seed
        ).fit(X, y)
        Xq = rng.random((400, 6))
        mean, std = forest.predict_mean_std(Xq)
        mean_ref, std_ref = forest.predict_mean_std_pointer(Xq)
        assert np.allclose(mean, mean_ref, rtol=1e-12, atol=1e-12)
        assert np.allclose(std, std_ref, rtol=1e-12, atol=1e-12)
        assert np.allclose(forest.predict(Xq), mean_ref, rtol=1e-12, atol=1e-12)

    def test_per_tree_leaves_match(self):
        rng = np.random.default_rng(7)
        X, y = _random_problem(rng, 90, 5, duplicates=True)
        forest = RandomForestRegressor(n_estimators=8, seed=3).fit(X, y)
        Xq = rng.random((150, 5))
        assert forest._flat is not None
        leaves = forest._flat.leaf_indices(np.ascontiguousarray(Xq))
        stacked_means = forest._flat.value[leaves]
        for t, tree in enumerate(forest.trees_):
            ref, _ = tree.predict_with_variance_pointer(Xq)
            assert np.array_equal(stacked_means[:, t], ref)

    def test_single_tree_forest(self):
        rng = np.random.default_rng(11)
        X, y = _random_problem(rng, 40, 3)
        forest = RandomForestRegressor(n_estimators=1, seed=0).fit(X, y)
        Xq = rng.random((60, 3))
        mean, std = forest.predict_mean_std(Xq)
        mean_ref, std_ref = forest.predict_mean_std_pointer(Xq)
        assert np.allclose(mean, mean_ref, rtol=1e-12, atol=1e-12)
        assert np.allclose(std, std_ref, rtol=1e-12, atol=1e-12)

"""Tests for gray-failure tolerance: leases, zombie fencing, quarantine.

The subsystem's headline invariant — under any interleaving of partitions,
lease expiries, retries, speculation and corruption, the optimizer receives
*exactly one* accepted result per sample slot, and no fenced (zombie) or
non-finite value ever reaches it — is asserted here at the engine level,
with the metrics registry and the event log agreeing on every tally.  The
signature guarantee (``"none"`` models, an armed-but-idle lease monitor and
the validator are bit-for-bit inert) rides the same checks as the fault and
crash subsystems.
"""

import math

import numpy as np
import pytest

from repro.cloud import Cluster
from repro.core import (
    AsyncExecutionEngine,
    EventLog,
    ExecutionEngine,
    LivenessMonitor,
    ResultValidator,
    RetryPolicy,
    TunaSampler,
    TuningLoop,
    WorkRequest,
    build_validator,
)
from repro.core.validation import (
    CorruptionContext,
    CorruptionDecision,
    CorruptionModel,
    CorruptResultModel,
    NoCorruptionModel,
    build_corruption_model,
)
from repro.faults import (
    NoPartitionModel,
    PartitionDecision,
    PartitionModel,
)
from repro.obs import MetricsRegistry
from repro.optimizers import RandomSearchOptimizer
from repro.systems import PostgreSQLSystem
from repro.workloads import TPCC


def make_setup(seed, n_workers=10):
    system = PostgreSQLSystem()
    cluster = Cluster(n_workers=n_workers, seed=seed)
    execution = ExecutionEngine(system, TPCC, seed=seed)
    opt = RandomSearchOptimizer(system.knob_space, seed=seed)
    return system, cluster, execution, opt


def sample_trajectory(sampler):
    return [
        (s.worker_id, s.value, s.iteration, s.budget, s.crashed)
        for s in sampler.datastore.all_samples()
    ]


def run_tuna(seed=5, batch_size=5, max_samples=40, n_workers=10, **loop_kwargs):
    _, cluster, execution, opt = make_setup(seed, n_workers=n_workers)
    sampler = TunaSampler(opt, execution, cluster, seed=seed)
    result = TuningLoop(
        sampler, max_samples=max_samples, batch_size=batch_size, **loop_kwargs
    ).run()
    return sampler, result, cluster


class ScriptedPartition(PartitionModel):
    """Delays the n-th submission(s) by a fixed amount."""

    name = "scripted"

    def __init__(self, delay_at=(), delay_hours=5.0, silent_fraction=0.5):
        super().__init__(seed=0)
        self.delay_calls = set(delay_at)
        self.delay_hours = delay_hours
        self.silent_fraction = silent_fraction
        self.calls = 0

    def decide(self, context):
        call = self.calls
        self.calls += 1
        if call not in self.delay_calls:
            return PartitionDecision(delayed=False)
        return PartitionDecision(
            delayed=True,
            delay_hours=self.delay_hours,
            silent_fraction=self.silent_fraction,
            kind="partition",
        )


class ScriptedCorruption(CorruptionModel):
    """Corrupts the n-th measured value(s) into a chosen garbage kind."""

    name = "scripted"

    def __init__(self, corrupt_at=(), kind="nan"):
        super().__init__(seed=0)
        self.corrupt_calls = set(corrupt_at)
        self.kind = kind
        self.calls = 0

    def decide(self, context):
        call = self.calls
        self.calls += 1
        if call not in self.corrupt_calls:
            return CorruptionDecision(corrupted=False)
        return CorruptionDecision(corrupted=True, kind=self.kind)


def make_engine(n_workers=4, seed=1, **kwargs):
    _, cluster, execution, _ = make_setup(seed, n_workers=n_workers)
    engine = AsyncExecutionEngine(execution, cluster, **kwargs)
    return engine, cluster


def submit_singles(engine, cluster, workers):
    space = PostgreSQLSystem().knob_space
    requests = []
    for i, worker_index in enumerate(workers):
        config = space.sample(np.random.default_rng(i))
        request = WorkRequest(config, 1, [cluster.workers[worker_index]], i)
        engine.submit(request)
        requests.append(request)
    return requests


def drain_items(engine):
    """Drain everything in flight (zombie reports included)."""
    completed = {}
    while engine.n_in_flight_items:
        for request, samples in engine.next_completed_requests():
            completed[request.iteration] = samples
    return completed


# -- liveness monitor ---------------------------------------------------------


class _FakeItem:
    def __init__(self, sequence, silent_at, finish_hours):
        self.sequence = sequence
        self.silent_at = silent_at
        self.finish_hours = finish_hours
        self.epoch = 0
        self.cancelled = False
        self.done = False


class TestLivenessMonitor:
    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            LivenessMonitor(0.0)
        with pytest.raises(ValueError):
            LivenessMonitor(-1.0)

    def test_epochs_are_monotone_starting_at_one(self):
        monitor = LivenessMonitor(0.5)
        items = [_FakeItem(i, silent_at=1.0, finish_hours=1.1) for i in range(3)]
        for item in items:
            monitor.grant(item)
        assert [item.epoch for item in items] == [1, 2, 3]

    def test_arms_only_when_suspicion_is_inevitable(self):
        monitor = LivenessMonitor(0.5)
        # Report at silent_at + 0.1 < deadline: the lease can never expire.
        responsive = _FakeItem(0, silent_at=1.0, finish_hours=1.1)
        monitor.grant(responsive)
        assert monitor.n_leased == 0
        # Report at silent_at + 2.0 > deadline: suspicion will fire.
        silent = _FakeItem(1, silent_at=1.0, finish_hours=3.0)
        monitor.grant(silent)
        assert monitor.n_leased == 1

    def test_report_exactly_at_the_deadline_wins(self):
        """Strictly-before rule: an on-deadline report is not a suspicion."""
        monitor = LivenessMonitor(0.5)
        item = _FakeItem(0, silent_at=1.0, finish_hours=1.5)
        monitor.grant(item)
        assert monitor.n_leased == 0

    def test_suspicions_fire_in_deadline_order_and_respect_the_horizon(self):
        monitor = LivenessMonitor(0.5)
        late = _FakeItem(0, silent_at=2.0, finish_hours=10.0)  # deadline 2.5
        early = _FakeItem(1, silent_at=1.0, finish_hours=10.0)  # deadline 1.5
        monitor.grant(late)
        monitor.grant(early)
        # A completion at 1.2 precedes both deadlines: nothing fires.
        assert monitor.next_suspicion_before(1.2) is None
        deadline, item = monitor.next_suspicion_before(2.0)
        assert (deadline, item) == (1.5, early)
        # The later lease is still armed and fires with no horizon.
        deadline, item = monitor.next_suspicion_before(None)
        assert (deadline, item) == (2.5, late)
        assert monitor.next_suspicion_before(None) is None

    def test_settled_leases_never_fire(self):
        monitor = LivenessMonitor(0.5)
        item = _FakeItem(0, silent_at=1.0, finish_hours=10.0)
        monitor.grant(item)
        monitor.settle(item.sequence)
        assert monitor.next_suspicion_before(None) is None
        assert monitor.n_leased == 0

    def test_cancelled_and_done_items_are_skipped_lazily(self):
        monitor = LivenessMonitor(0.5)
        cancelled = _FakeItem(0, silent_at=1.0, finish_hours=10.0)
        live = _FakeItem(1, silent_at=2.0, finish_hours=10.0)
        monitor.grant(cancelled)
        monitor.grant(live)
        cancelled.cancelled = True
        deadline, item = monitor.next_suspicion_before(None)
        assert item is live and deadline == 2.5


# -- result validator ---------------------------------------------------------


class TestResultValidator:
    def test_check_classifies_values(self):
        validator = ResultValidator(lower=0.0, upper=100.0)
        assert validator.check(50.0) is None
        assert validator.check(float("nan")) == "nan"
        assert validator.check(float("inf")) == "inf"
        assert validator.check(float("-inf")) == "inf"
        assert validator.check(-1.0) == "below-domain"
        assert validator.check(101.0) == "above-domain"

    def test_unbounded_validator_only_rejects_non_finite(self):
        validator = ResultValidator()
        assert validator.check(-1e30) is None
        assert validator.check(float("nan")) == "nan"

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            ResultValidator(lower=1.0, upper=0.0)

    def test_build_validator_normalisation(self):
        assert build_validator(True) == ResultValidator()
        assert build_validator(False) is None
        assert build_validator(None) is None
        custom = ResultValidator(lower=0.0)
        assert build_validator(custom) is custom


class TestCorruptionModels:
    def test_apply_produces_the_advertised_garbage(self):
        assert math.isnan(CorruptionDecision(True, "nan").apply(5.0))
        assert CorruptionDecision(True, "inf").apply(5.0) == float("inf")
        assert CorruptionDecision(True, "inf").apply(-5.0) == float("-inf")
        wild = CorruptionDecision(True, "wild").apply(5.0)
        assert math.isfinite(wild) and wild == 5.0 * 1e9
        assert CorruptionDecision(False).apply(5.0) == 5.0

    def test_null_model_is_structurally_inert(self):
        model = NoCorruptionModel()
        model.decide(CorruptionContext("worker-0", 0.0, 1.0))
        assert model.is_null
        assert model._streams == {}

    def test_seeded_reproducibility_and_fixed_draws(self):
        a = CorruptResultModel(seed=3, rate=0.5)
        b = CorruptResultModel(seed=3, rate=0.5)
        ctxs = [CorruptionContext("worker-0", float(i), 1.0) for i in range(100)]
        decisions_a = [a.decide(c) for c in ctxs]
        decisions_b = [b.decide(c) for c in ctxs]
        assert decisions_a == decisions_b
        kinds = {d.kind for d in decisions_a if d.corrupted}
        assert kinds == {"nan", "inf", "wild"}
        # Fixed draw count: advance a fresh stream by hand and compare.
        reference = CorruptResultModel(seed=3, rate=0.5)
        rng = reference.stream_for("worker-0")
        for _ in range(100):
            rng.random()
            rng.random()
        assert a.decide(ctxs[0]) == reference.decide(ctxs[0])

    def test_build_corruption_model(self):
        assert isinstance(build_corruption_model("none"), NoCorruptionModel)
        assert isinstance(
            build_corruption_model("corrupt_result", seed=1), CorruptResultModel
        )
        assert build_corruption_model(None) is None
        with pytest.raises(KeyError):
            build_corruption_model("bitrot")


# -- fencing: suspicion, re-submission, zombie rejection ----------------------


class TestLeaseFencing:
    def test_suspected_slot_is_recovered_and_its_zombie_rejected(self, tmp_path):
        log_path = str(tmp_path / "events.jsonl")
        engine, cluster = make_engine(
            partition_model=ScriptedPartition(delay_at=[0]),
            lease_timeout_hours=0.1,
            retry_policy=RetryPolicy(),
            event_log=EventLog(log_path),
        )
        requests = submit_singles(engine, cluster, [0, 1])
        completed = drain_items(engine)
        assert engine.gray_stats.n_suspected == 1
        assert engine.gray_stats.n_zombies_rejected == 1
        assert engine.crash_stats.n_retries == 1
        # Exactly one accepted result per slot, none from the fenced epoch.
        assert sorted(completed) == [0, 1]
        recovered = completed[0][0]
        assert not recovered.crashed
        assert recovered.worker_id != "worker-0"
        # The event log tells the same story, in order.
        kinds = [e["kind"] for e in EventLog.replay(log_path)]
        for kind in ("suspect", "lease_fence", "retry", "zombie_rejected"):
            assert kind in kinds
        assert kinds.index("suspect") < kinds.index("retry")
        assert kinds.index("retry") < kinds.index("zombie_rejected")

    def test_fenced_report_does_not_define_the_makespan(self):
        engine, cluster = make_engine(
            partition_model=ScriptedPartition(delay_at=[0], delay_hours=50.0),
            lease_timeout_hours=0.1,
            retry_policy=RetryPolicy(),
        )
        submit_singles(engine, cluster, [0, 1])
        drain_items(engine)
        # The zombie report at ~50h advanced ``now`` but not the makespan.
        assert engine.loop.now > 50.0
        assert engine.makespan_hours < 10.0

    def test_delay_shorter_than_the_lease_is_just_a_late_result(self):
        engine, cluster = make_engine(
            partition_model=ScriptedPartition(delay_at=[0], delay_hours=0.05),
            lease_timeout_hours=10.0,
            retry_policy=RetryPolicy(),
        )
        requests = submit_singles(engine, cluster, [0, 1])
        completed = drain_items(engine)
        assert engine.gray_stats.n_suspected == 0
        assert engine.gray_stats.n_zombies_rejected == 0
        assert engine.crash_stats.n_retries == 0
        # The late result itself was accepted, on the original worker.
        assert completed[0][0].worker_id == "worker-0"

    def test_partition_without_a_lease_is_only_a_delay(self):
        """No monitor armed: the silent worker is simply waited out."""
        engine, cluster = make_engine(
            partition_model=ScriptedPartition(delay_at=[0], delay_hours=5.0),
        )
        submit_singles(engine, cluster, [0, 1])
        completed = drain_items(engine)
        assert engine.gray_stats.n_suspected == 0
        assert completed[0][0].worker_id == "worker-0"
        # The accepted late report does define the makespan here.
        assert engine.makespan_hours > 5.0

    def test_suspicion_without_retry_budget_surfaces_the_penalty(self):
        engine, cluster = make_engine(
            partition_model=ScriptedPartition(delay_at=[0]),
            lease_timeout_hours=0.1,
            retry_policy=None,
        )
        requests = submit_singles(engine, cluster, [0])
        completed = drain_items(engine)
        assert engine.gray_stats.n_suspected == 1
        assert engine.crash_stats.n_exhausted == 1
        sample = completed[0][0]
        assert sample.crashed
        assert sample.value == engine.execution.crash_penalty()
        # The zombie still drained and was rejected.
        assert engine.gray_stats.n_zombies_rejected == 1

    def test_zombie_failure_report_is_rejected_too(self):
        """A fenced item that *fails* inside its window pops as a zombie,
        not as a second recovery for the already re-submitted slot."""
        from repro.faults import CrashDecision, CrashModel

        class LateCrash(CrashModel):
            name = "late-crash"

            def __init__(self):
                super().__init__(seed=0)
                self.calls = 0

            def decide(self, context):
                call = self.calls
                self.calls += 1
                if call != 0:
                    return CrashDecision(failed=False)
                return CrashDecision(
                    failed=True,
                    fail_at_hours=context.start_hours
                    + 0.9 * context.duration_hours,
                    kind="transient",
                )

        engine, cluster = make_engine(
            partition_model=ScriptedPartition(delay_at=[0], delay_hours=5.0),
            crash_model=LateCrash(),
            lease_timeout_hours=0.01,
            retry_policy=RetryPolicy(),
        )
        submit_singles(engine, cluster, [0, 1])
        completed = drain_items(engine)
        assert engine.gray_stats.n_suspected == 1
        assert engine.gray_stats.n_zombies_rejected == 1
        # The stale failure was NOT double-counted as a crash recovery:
        # exactly one retry (from the suspicion), one accepted result.
        assert engine.crash_stats.n_retries == 1
        assert len(completed[0]) == 1

    def test_engine_validates_the_lease_timeout(self):
        with pytest.raises(ValueError, match="lease_timeout_hours"):
            make_engine(lease_timeout_hours=0.0)

    def test_lockstep_rejects_active_partition_and_corruption(self):
        _, cluster, execution, _ = make_setup(0)
        with pytest.raises(ValueError, match="lockstep"):
            AsyncExecutionEngine(
                execution,
                cluster,
                lockstep=True,
                partition_model=ScriptedPartition(delay_at=[0]),
            )
        with pytest.raises(ValueError, match="lockstep"):
            AsyncExecutionEngine(
                execution,
                cluster,
                lockstep=True,
                corruption_model=ScriptedCorruption(corrupt_at=[0]),
            )


# -- quarantine ---------------------------------------------------------------


class TestQuarantine:
    @pytest.mark.parametrize("kind", ["nan", "inf"])
    def test_garbage_is_quarantined_and_remeasured(self, kind, tmp_path):
        log_path = str(tmp_path / "events.jsonl")
        engine, cluster = make_engine(
            corruption_model=ScriptedCorruption(corrupt_at=[0], kind=kind),
            validation=True,
            retry_policy=RetryPolicy(),
            event_log=EventLog(log_path),
        )
        requests = submit_singles(engine, cluster, [0, 1])
        completed = drain_items(engine)
        assert engine.gray_stats.n_quarantined == 1
        assert engine.gray_stats.n_quarantine_retries == 1
        assert engine.gray_stats.n_quarantine_penalized == 0
        sample = completed[0][0]
        assert math.isfinite(sample.value) and not sample.crashed
        events = EventLog.replay(log_path)
        quarantines = [e for e in events if e["kind"] == "quarantined"]
        assert len(quarantines) == 1
        assert quarantines[0]["reason"] == kind

    def test_quarantine_without_budget_surfaces_the_penalty(self):
        engine, cluster = make_engine(
            corruption_model=ScriptedCorruption(corrupt_at=[0]),
            validation=True,
            retry_policy=None,
        )
        requests = submit_singles(engine, cluster, [0])
        completed = drain_items(engine)
        assert engine.gray_stats.n_quarantined == 1
        assert engine.gray_stats.n_quarantine_penalized == 1
        sample = completed[0][0]
        assert sample.crashed
        assert sample.value == engine.execution.crash_penalty()

    def test_wild_values_need_a_bounded_validator(self):
        # Unbounded validator: the wild (finite) reading slips through.
        engine, cluster = make_engine(
            corruption_model=ScriptedCorruption(corrupt_at=[0], kind="wild"),
            validation=True,
        )
        requests = submit_singles(engine, cluster, [0])
        completed = drain_items(engine)
        assert engine.gray_stats.n_quarantined == 0
        wild = completed[0][0]
        assert wild.details.get("corrupt_result") == "wild"
        assert wild.value == pytest.approx(wild.details["true_value"] * 1e9)
        # Bounded validator: the same reading is out-of-domain garbage.
        engine, cluster = make_engine(
            corruption_model=ScriptedCorruption(corrupt_at=[0], kind="wild"),
            validation=ResultValidator(lower=0.0, upper=1e6),
            retry_policy=RetryPolicy(),
        )
        submit_singles(engine, cluster, [0])
        completed = drain_items(engine)
        assert engine.gray_stats.n_quarantined == 1
        assert math.isfinite(completed[0][0].value)
        assert completed[0][0].value <= 1e6

    def test_corruption_preserves_the_measurement_rng(self):
        """Corruption is applied after measurement, so the clean samples of
        an injected run match the uninjected run's values exactly."""

        def run(**kwargs):
            engine, cluster = make_engine(**kwargs)
            submit_singles(engine, cluster, [0, 1, 2])
            return drain_items(engine)

        clean = run()
        injected = run(
            corruption_model=ScriptedCorruption(corrupt_at=[1], kind="nan")
        )
        for i in (0, 2):
            assert injected[i][0].value == clean[i][0].value
        assert math.isnan(injected[1][0].value)
        assert injected[1][0].details["true_value"] == clean[1][0].value


# -- the signature guarantee --------------------------------------------------


class TestNoneModelEquivalence:
    GRAY_NULL_KWARGS = dict(
        partition_model="none",
        lease_timeout=0.5,
        validation=True,
        corruption_model="none",
        retry_policy=RetryPolicy(),
    )

    def test_plain_trajectories_identical(self):
        plain_sampler, plain_result, plain_cluster = run_tuna()
        null_sampler, null_result, null_cluster = run_tuna(**self.GRAY_NULL_KWARGS)
        assert sample_trajectory(plain_sampler) == sample_trajectory(null_sampler)
        assert plain_result.wall_clock_hours == null_result.wall_clock_hours
        assert plain_result.best_config == null_result.best_config
        for vm_a, vm_b in zip(plain_cluster.workers, null_cluster.workers):
            assert vm_a.clock_hours == vm_b.clock_hours

    def test_inert_on_top_of_faults_speculation_and_crashes(self):
        kwargs = dict(
            fault_model="lognormal",
            fault_seed=7,
            speculation=True,
            crash_model="transient",
            crash_seed=13,
        )
        base_sampler, base_result, _ = run_tuna(**kwargs)
        null_sampler, null_result, _ = run_tuna(**kwargs, **self.GRAY_NULL_KWARGS)
        assert sample_trajectory(base_sampler) == sample_trajectory(null_sampler)
        assert base_result.wall_clock_hours == null_result.wall_clock_hours

    def test_inert_run_reports_all_zero_gray_stats(self):
        _, result, _ = run_tuna(**self.GRAY_NULL_KWARGS)
        for key in (
            "n_suspected",
            "n_zombies_rejected",
            "n_quarantined",
            "n_delayed",
        ):
            assert result.engine_stats[key] == 0

    def test_engine_stats_absent_without_gray_features(self):
        _, result, _ = run_tuna()
        assert result.engine_stats is None

    def test_metrics_registry_untouched_by_inert_gray_features(self):
        plain = MetricsRegistry()
        _, _, _ = run_tuna(metrics=plain)
        gray = MetricsRegistry()
        _, _, _ = run_tuna(metrics=gray, **self.GRAY_NULL_KWARGS)
        assert gray.as_dict() == plain.as_dict()


class TestLoopValidation:
    def test_active_partition_model_requires_async_batches(self):
        _, cluster, execution, opt = make_setup(0)
        sampler = TunaSampler(opt, execution, cluster, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(
                sampler, max_samples=5, partition_model="stall", partition_seed=0
            )
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(
                sampler,
                max_samples=5,
                batch_size=1,
                partition_model="stall",
                partition_seed=0,
            )

    def test_active_corruption_model_requires_async_batches(self):
        _, cluster, execution, opt = make_setup(0)
        sampler = TunaSampler(opt, execution, cluster, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(
                sampler,
                max_samples=5,
                corruption_model="corrupt_result",
                corruption_seed=0,
            )

    def test_lease_timeout_requires_the_async_driver(self):
        _, cluster, execution, opt = make_setup(0)
        sampler = TunaSampler(opt, execution, cluster, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(sampler, max_samples=5, lease_timeout=0.5)

    def test_checkpoint_keep_validation(self):
        _, cluster, execution, opt = make_setup(0)
        sampler = TunaSampler(opt, execution, cluster, seed=0)
        with pytest.raises(ValueError, match="checkpoint_keep"):
            TuningLoop(
                sampler,
                max_samples=5,
                batch_size=2,
                checkpoint_path="x.ckpt",
                checkpoint_keep=0,
            )


class TestSchedulerSuspension:
    def _scheduler(self, n_workers=3):
        _, cluster, execution, opt = make_setup(0, n_workers=n_workers)
        sampler = TunaSampler(opt, execution, cluster, seed=0, budgets=(1, 2))
        return sampler.scheduler

    def test_suspended_worker_leaves_and_rejoins_placement(self):
        scheduler = self._scheduler()
        config = PostgreSQLSystem().knob_space.default_configuration()
        scheduler.suspend("worker-1")
        scheduler.suspend("worker-1")  # idempotent
        assert scheduler.is_suspended("worker-1")
        assert all(
            vm.vm_id != "worker-1"
            for vm in scheduler.eligible_workers(config, [])
        )
        # Suspension is reversible — unlike mark_dead.
        scheduler.restore("worker-1")
        assert not scheduler.is_suspended("worker-1")
        assert any(
            vm.vm_id == "worker-1"
            for vm in scheduler.eligible_workers(config, [])
        )
        assert scheduler.n_alive == 3

    def test_suspend_validates_the_worker(self):
        scheduler = self._scheduler()
        with pytest.raises(KeyError):
            scheduler.suspend("worker-99")
        scheduler.restore("worker-99")  # restore is a no-op for unknowns

    def test_suspicion_suspends_and_the_zombie_restores(self):
        """End to end through the loop: while a worker is silent it receives
        no fresh placements; once its zombie drains it rejoins the pool."""
        sampler, result, cluster = run_tuna(
            seed=5,
            batch_size=5,
            max_samples=40,
            partition_model="partition",
            partition_seed=21,
            lease_timeout=0.05,
            retry_policy=RetryPolicy(),
        )
        stats = result.engine_stats
        assert stats["n_suspected"] > 0
        # Every suspicion was paired with a drained zombie by study end, so
        # no worker is left suspended.
        assert stats["n_suspected"] == stats["n_zombies_rejected"]
        assert not any(
            sampler.scheduler.is_suspended(vm.vm_id) for vm in cluster.workers
        )


# -- exactly-one-accepted-result property -------------------------------------


#: (partition rate, lease timeout, corruption rate, crash, speculation) grid
#: the invariant must hold under.  Rates are extreme on purpose.
GRAY_GRID = [
    (0.3, 0.05, 0.0, None, None),
    (0.5, 0.02, 0.0, None, True),
    (0.0, None, 0.4, None, None),
    (0.4, 0.05, 0.3, "transient", None),
    (0.6, 0.01, 0.5, "transient", True),
]


class TestExactlyOneResultPerSlot:
    @pytest.mark.parametrize(
        "partition_rate,lease,corruption_rate,crash,speculation", GRAY_GRID
    )
    @pytest.mark.parametrize("seed", [3, 17])
    def test_engine_delivers_one_sample_per_slot(
        self, partition_rate, lease, corruption_rate, crash, speculation, seed
    ):
        from repro.faults import PartitionOutageModel

        n_slots = 24
        kwargs = dict(retry_policy=RetryPolicy())
        if partition_rate:
            kwargs["partition_model"] = PartitionOutageModel(
                seed=seed, rate=partition_rate, mean_outage_hours=2.0
            )
        if lease is not None:
            kwargs["lease_timeout_hours"] = lease
        if corruption_rate:
            kwargs["corruption_model"] = CorruptResultModel(
                seed=seed, rate=corruption_rate
            )
            kwargs["validation"] = True
        if crash is not None:
            kwargs["crash_model"] = crash
        if speculation:
            kwargs["speculation"] = True
            kwargs["fault_model"] = "lognormal"
        engine, cluster = make_engine(n_workers=8, seed=seed, **kwargs)
        space = PostgreSQLSystem().knob_space
        rng = np.random.default_rng(seed)
        for i in range(n_slots):
            config = space.sample(rng)
            worker = cluster.workers[i % len(cluster.workers)]
            engine.submit(WorkRequest(config, 1, [worker], i))
        completed = drain_items(engine)
        # Exactly one accepted sample per slot, every one finite when the
        # validator is armed, and the tallies are internally consistent.
        assert sorted(completed) == list(range(n_slots))
        for samples in completed.values():
            assert len(samples) == 1
        if corruption_rate:
            assert all(
                math.isfinite(samples[0].value) for samples in completed.values()
            )
        assert engine.gray_stats.n_suspected >= engine.gray_stats.n_zombies_rejected
        assert engine.loop.n_in_flight == 0
        engine.finalize()

    def test_registry_and_event_log_agree_on_gray_tallies(self, tmp_path):
        from repro.faults import PartitionOutageModel

        log_path = str(tmp_path / "events.jsonl")
        metrics = MetricsRegistry()
        engine, cluster = make_engine(
            n_workers=8,
            seed=11,
            partition_model=PartitionOutageModel(
                seed=11, rate=0.5, mean_outage_hours=2.0
            ),
            lease_timeout_hours=0.02,
            corruption_model=CorruptResultModel(seed=11, rate=0.3),
            validation=True,
            retry_policy=RetryPolicy(),
            event_log=EventLog(log_path),
            metrics=metrics,
        )
        space = PostgreSQLSystem().knob_space
        rng = np.random.default_rng(11)
        for i in range(24):
            config = space.sample(rng)
            engine.submit(
                WorkRequest(config, 1, [cluster.workers[i % 8]], i)
            )
        drain_items(engine)
        stats = engine.gray_stats
        assert stats.n_suspected > 0
        assert stats.n_quarantined > 0
        events = EventLog.replay(log_path)
        by_kind = {}
        for event in events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        assert by_kind.get("suspect", 0) == stats.n_suspected
        assert by_kind.get("lease_fence", 0) == stats.n_suspected
        assert by_kind.get("zombie_rejected", 0) == stats.n_zombies_rejected
        assert by_kind.get("quarantined", 0) == stats.n_quarantined
        counters = metrics.as_dict()["counters"]

        def counter_value(name):
            return sum(
                value
                for key, value in counters.items()
                if key == name or key.startswith(name + "{")
            )

        assert counter_value("engine.items.suspected") == stats.n_suspected
        assert counter_value("engine.leases.fenced") == stats.n_suspected
        assert (
            counter_value("engine.items.zombie_rejected")
            == stats.n_zombies_rejected
        )
        assert counter_value("engine.samples.quarantined") == stats.n_quarantined
        # No fenced result was evaluated: zombies never consumed measurement
        # RNG, so accepted + quarantined == engine evaluations.
        assert counter_value("loop.items.zombie") == stats.n_zombies_rejected

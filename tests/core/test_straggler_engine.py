"""Tests for fault injection and speculative re-execution in the engine.

Covers the repo's signature guarantee (the ``"none"`` model reproduces
uninjected trajectories bit-for-bit), seeded reproducibility of injected
runs, event-loop cancellation bookkeeping, and the first-finish-wins
mechanics: the optimizer sees exactly one result per sample, the loser is
cancelled and its worker released.
"""

import pytest

from repro.cloud import Cluster
from repro.core import (
    AsyncExecutionEngine,
    ClusterEventLoop,
    ExecutionEngine,
    TunaSampler,
    TuningLoop,
    WorkRequest,
)
from repro.faults import FaultModel, NoFaultModel, SpeculationPolicy
from repro.optimizers import RandomSearchOptimizer
from repro.systems import PostgreSQLSystem
from repro.workloads import TPCC


def make_setup(seed, n_workers=10):
    system = PostgreSQLSystem()
    cluster = Cluster(n_workers=n_workers, seed=seed)
    execution = ExecutionEngine(system, TPCC, seed=seed)
    opt = RandomSearchOptimizer(system.knob_space, seed=seed)
    return system, cluster, execution, opt


def sample_trajectory(sampler):
    return [
        (s.worker_id, s.value, s.iteration, s.budget)
        for s in sampler.datastore.all_samples()
    ]


def run_tuna(seed=5, batch_size=5, max_samples=40, **loop_kwargs):
    _, cluster, execution, opt = make_setup(seed)
    sampler = TunaSampler(opt, execution, cluster, seed=seed)
    result = TuningLoop(
        sampler, max_samples=max_samples, batch_size=batch_size, **loop_kwargs
    ).run()
    return sampler, result, cluster


class ScriptedStretch(FaultModel):
    """Stretches the n-th submission by a fixed factor (1.0 otherwise)."""

    name = "scripted"

    def __init__(self, stretch_at, factor=10.0):
        super().__init__(seed=0)
        self.stretch_at = stretch_at
        self.factor = factor
        self.calls = 0

    def stretch(self, context):
        call = self.calls
        self.calls += 1
        return self.factor if call == self.stretch_at else 1.0


class TestNoneModelEquivalence:
    """The signature guarantee: 'none' model == no model, bit for bit."""

    def test_async_trajectories_identical(self):
        plain_sampler, plain_result, plain_cluster = run_tuna()
        null_sampler, null_result, null_cluster = run_tuna(fault_model="none")
        assert sample_trajectory(plain_sampler) == sample_trajectory(null_sampler)
        assert plain_result.wall_clock_hours == null_result.wall_clock_hours
        assert plain_result.best_config == null_result.best_config
        for vm_a, vm_b in zip(plain_cluster.workers, null_cluster.workers):
            assert vm_a.clock_hours == vm_b.clock_hours

    def test_instance_and_name_are_equivalent(self):
        by_name_sampler, _, _ = run_tuna(fault_model="none")
        by_instance_sampler, _, _ = run_tuna(fault_model=NoFaultModel())
        assert sample_trajectory(by_name_sampler) == sample_trajectory(
            by_instance_sampler
        )


class TestInjectedRunsAreReproducible:
    def test_same_seed_same_trajectory(self):
        a_sampler, a_result, _ = run_tuna(fault_model="lognormal", fault_seed=7)
        b_sampler, b_result, _ = run_tuna(fault_model="lognormal", fault_seed=7)
        assert sample_trajectory(a_sampler) == sample_trajectory(b_sampler)
        assert a_result.wall_clock_hours == b_result.wall_clock_hours

    def test_speculative_runs_are_reproducible_too(self):
        kwargs = dict(fault_model="lognormal", fault_seed=7, speculation=True)
        a_sampler, a_result, _ = run_tuna(**kwargs)
        b_sampler, b_result, _ = run_tuna(**kwargs)
        assert sample_trajectory(a_sampler) == sample_trajectory(b_sampler)
        assert a_result.engine_stats == b_result.engine_stats

    def test_faults_lengthen_the_makespan(self):
        _, clean, _ = run_tuna()
        _, faulty, _ = run_tuna(
            fault_model="lognormal",
            fault_seed=3,
        )
        assert faulty.wall_clock_hours > clean.wall_clock_hours
        # Stretched requests can shift which proposals straddle the sample
        # cap, but the budget itself is still honoured.
        assert faulty.n_samples >= clean.n_samples


class TestLoopValidation:
    def test_active_fault_model_requires_async_batches(self):
        _, cluster, execution, opt = make_setup(0)
        sampler = TunaSampler(opt, execution, cluster, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(sampler, max_samples=10, fault_model="lognormal")
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(sampler, max_samples=10, batch_size=1, fault_model="lognormal")
        # The null model is allowed everywhere (it is structurally inert).
        TuningLoop(sampler, max_samples=10, fault_model="none")
        TuningLoop(sampler, max_samples=10, batch_size=1, fault_model="none")

    def test_speculation_requires_async_batches(self):
        _, cluster, execution, opt = make_setup(0)
        sampler = TunaSampler(opt, execution, cluster, seed=0)
        with pytest.raises(ValueError, match="speculat"):
            TuningLoop(sampler, max_samples=10, speculation=True)
        with pytest.raises(ValueError, match="speculat"):
            TuningLoop(sampler, max_samples=10, batch_size=1, speculation=True)

    def test_engine_rejects_lockstep_fault_injection(self):
        _, cluster, execution, _ = make_setup(0)
        with pytest.raises(ValueError):
            AsyncExecutionEngine(
                execution, cluster, lockstep=True, fault_model="lognormal"
            )
        with pytest.raises(ValueError):
            AsyncExecutionEngine(execution, cluster, lockstep=True, speculation=True)


class TestEventLoopCancellation:
    def _loop(self, fault_model=None):
        cluster = Cluster(n_workers=3, seed=0)
        return cluster, ClusterEventLoop(cluster, fault_model=fault_model)

    def _request(self, cluster):
        space = PostgreSQLSystem().knob_space
        return WorkRequest(space.default_configuration(), 1, list(cluster.workers), 0)

    def test_cancelled_item_never_pops_and_frees_the_worker(self):
        cluster, loop = self._loop()
        request = self._request(cluster)
        slow = loop.submit(request, cluster.workers[0], 5.0)
        fast = loop.submit(request, cluster.workers[1], 1.0)
        first = loop.next_completion()
        assert first is fast
        loop.cancel(slow)
        # The cancelled run occupied its worker from start until the cancel.
        assert loop.worker_free_at("worker-0") == loop.now
        assert loop.n_in_flight == 0
        assert loop.peek_finish() is None
        with pytest.raises(RuntimeError):
            loop.next_completion()
        # Its (phantom) finish never counted towards the makespan.
        assert loop.makespan == 1.0

    def test_cancelling_a_queued_item_rolls_back_to_its_start(self):
        cluster, loop = self._loop()
        request = self._request(cluster)
        loop.submit(request, cluster.workers[0], 2.0)
        queued = loop.submit(request, cluster.workers[0], 2.0)
        loop.cancel(queued)
        assert loop.worker_free_at("worker-0") == 2.0

    def test_cancel_is_idempotent_and_guards_evaluated_items(self):
        cluster, loop = self._loop()
        request = self._request(cluster)
        item = loop.submit(request, cluster.workers[0], 1.0)
        loop.cancel(item)
        loop.cancel(item)  # no-op
        assert loop.n_in_flight == 0
        done = loop.submit(request, cluster.workers[1], 1.0)
        loop.next_completion()
        done.sample = object()
        with pytest.raises(RuntimeError):
            loop.cancel(done)

    def test_items_queued_behind_a_cancelled_one_keep_their_times(self):
        cluster, loop = self._loop()
        request = self._request(cluster)
        first = loop.submit(request, cluster.workers[0], 2.0)
        second = loop.submit(request, cluster.workers[0], 2.0)
        loop.cancel(first)
        # Conservative: the successor was scheduled at t=2 and stays there.
        assert second.start_hours == 2.0
        assert loop.worker_free_at("worker-0") == 4.0


class TestSpeculationMechanics:
    def _engine(self, stretch_at, n_workers=6, factor=10.0, **policy_kwargs):
        _, cluster, execution, _ = make_setup(1, n_workers=n_workers)
        policy = SpeculationPolicy(
            quantile=0.5, slack=1.2, min_history=3, **policy_kwargs
        )
        model = ScriptedStretch(stretch_at=stretch_at, factor=factor)
        engine = AsyncExecutionEngine(
            execution, cluster, fault_model=model, speculation=policy
        )
        return engine, cluster

    def _submit_singles(self, engine, cluster, workers):
        import numpy as np

        space = PostgreSQLSystem().knob_space
        requests = []
        for i, worker_index in enumerate(workers):
            config = space.sample(np.random.default_rng(i))
            request = WorkRequest(config, 1, [cluster.workers[worker_index]], i)
            engine.submit(request)
            requests.append(request)
        return requests

    def test_first_finish_wins_and_loser_is_cancelled(self):
        # Worker 0 gets a 10x straggler; workers 1-3 complete quickly and
        # build the detector history.  The straggler crosses the detection
        # threshold between completions (a detection event), and the clone
        # lands on the first idle eligible worker: worker 1.
        engine, cluster = self._engine(stretch_at=0)
        requests = self._submit_singles(engine, cluster, [0, 1, 2, 3])
        completed = {}
        while engine.n_in_flight_requests:
            request, samples = engine.next_completed_request()
            completed[id(request)] = samples
        assert len(completed) == 4
        assert engine.stats.n_stragglers_detected == 1
        assert engine.stats.n_duplicates_submitted == 1
        assert engine.stats.n_duplicate_wins == 1
        assert engine.stats.n_items_cancelled == 1
        # The straggling request still yielded exactly one sample, taken on
        # the duplicate's worker.
        straggler_samples = completed[id(requests[0])]
        assert len(straggler_samples) == 1
        assert straggler_samples[0].worker_id == "worker-1"
        assert straggler_samples[0].details.get("speculative") is True
        # The straggling worker was released at the winner's finish time,
        # and the loser's phantom 10x finish never entered the makespan.
        assert engine.loop.worker_free_at("worker-0") <= engine.loop.now
        assert engine.makespan_hours < 3.0 * engine.duration_hours

    def test_original_win_cancels_the_clone(self):
        # Stretch mild enough that the original still finishes before the
        # clone (which only starts at the detection crossing): 2x the base
        # duration against a clone launched at ~1.2x elapsed.
        engine, cluster = self._engine(stretch_at=0)
        engine.loop.fault_model.factor = 2.0
        self._submit_singles(engine, cluster, [0, 1, 2, 3])
        while engine.n_in_flight_requests:
            engine.next_completed_request()
        assert engine.stats.n_duplicates_submitted == 1
        assert engine.stats.n_duplicate_wins == 0
        assert engine.stats.n_duplicate_losses == 1
        assert engine.stats.n_items_cancelled == 1

    def test_detection_event_fires_between_completions(self):
        # Four workers, all busy at detection time; the fast three have
        # finished by the crossing, so one of them hosts the duplicate and
        # the race still resolves to exactly one sample for the slot.
        engine, cluster = self._engine(stretch_at=0, n_workers=4)
        self._submit_singles(engine, cluster, [0, 1, 2, 3])
        while engine.n_in_flight_requests:
            engine.next_completed_request()
        assert engine.stats.n_stragglers_detected == 1
        assert engine.stats.n_duplicates_submitted == 1
        assert engine.stats.n_duplicate_wins + engine.stats.n_duplicate_losses == 1

    def test_multiple_clones_per_item_reconcile_cleanly(self):
        # max_clones_per_item >= 2: an extreme straggler gets a second
        # duplicate once the first one also crosses the threshold; whoever
        # finishes first supplies the slot's sample and *all* other copies
        # are cancelled.
        engine, cluster = self._engine(
            stretch_at=0, n_workers=8, max_clones_per_item=2
        )
        # The first clone is also stretched (every speculative draw returns
        # the scripted factor for submission index 4: the clone).
        engine.loop.fault_model.stretch_at = None

        class DoubleStraggler(ScriptedStretch):
            def stretch(self, context):
                call = self.calls
                self.calls += 1
                if call == 0:
                    return 30.0  # the original: extreme straggler
                if context.speculative and call == 4:
                    return 10.0  # the first clone straggles too
                return 1.0

        engine.loop.fault_model = DoubleStraggler(stretch_at=None)
        self._submit_singles(engine, cluster, [0, 1, 2, 3])
        completed = 0
        while engine.n_in_flight_requests:
            engine.next_completed_request()
            completed += 1
        assert completed == 4
        assert engine.stats.n_duplicates_submitted == 2
        assert engine.stats.n_duplicate_wins == 1
        assert engine.stats.n_duplicate_losses == 1
        assert engine.stats.n_items_cancelled == 2  # original + slow clone
        assert engine.loop.n_in_flight == 0
        # No scheduler in this standalone engine, so just check the loop
        # drained and every request produced exactly one sample per slot.
        assert engine.n_completed_requests == 4

    def test_multi_clone_tuning_run_stays_consistent(self):
        # Regression: max_clones_per_item >= 2 used to corrupt the
        # clone-pair bookkeeping (only the most recent clone was tracked),
        # crashing reconciliation with a KeyError.
        _, cluster, execution, opt = make_setup(23)
        sampler = TunaSampler(opt, execution, cluster, seed=23)
        policy = SpeculationPolicy(
            quantile=0.5, slack=1.1, min_history=3, max_clones_per_item=3
        )
        result = TuningLoop(
            sampler,
            max_samples=40,
            batch_size=6,
            fault_model="lognormal",
            fault_seed=23,
            speculation=policy,
        ).run()
        stats = result.engine_stats
        assert stats["n_duplicates_submitted"] > 0
        assert sampler.datastore.n_samples == result.n_samples
        assert sampler.scheduler.n_reserved() == 0
        assert sampler.optimizer.n_pending == 0
        for config in sampler.datastore.configs():
            workers = sampler.datastore.workers_used(config)
            assert len(set(workers)) == len(workers)

    def test_speculation_defaults_to_policy_instance(self):
        _, cluster, execution, _ = make_setup(2)
        engine = AsyncExecutionEngine(execution, cluster, speculation=True)
        assert isinstance(engine.speculation, SpeculationPolicy)
        engine = AsyncExecutionEngine(execution, cluster, speculation=False)
        assert engine.speculation is None


class TestSpeculativeTuningRun:
    def test_one_result_per_sample_and_distinct_nodes(self):
        sampler, result, _ = run_tuna(
            seed=37,
            batch_size=8,
            max_samples=60,
            fault_model="lognormal",
            fault_seed=37,
            speculation=True,
        )
        stats = result.engine_stats
        assert stats is not None
        assert stats["n_duplicates_submitted"] > 0, (
            "expected the heavy-tail run to trigger at least one speculation"
        )
        assert (
            stats["n_duplicate_wins"] + stats["n_duplicate_losses"]
            <= stats["n_duplicates_submitted"]
        )
        # Exactly one sample per accepted slot reached the datastore...
        assert sampler.datastore.n_samples == result.n_samples
        # ...never two samples of a configuration on the same node...
        for config in sampler.datastore.configs():
            workers = sampler.datastore.workers_used(config)
            assert len(set(workers)) == len(workers)
        # ...every fantasy was retracted, and no reservations leaked.
        assert sampler.optimizer.n_pending == 0
        assert sampler.scheduler.n_reserved() == 0

    def test_stats_absent_without_speculation(self):
        _, result, _ = run_tuna(fault_model="lognormal", fault_seed=1)
        assert result.engine_stats is None

"""Property tests: indexed event loop == linear-scan reference, bit-for-bit.

The scale refactor replaced the event loop's ``Dict[str, float]`` clocks and
O(n) worker scans with indexed structures (:class:`repro.core.WorkerIndex`:
NumPy clock arrays, a release calendar, per-(region, SKU) idle heaps).  The
refactor's contract is *observational equivalence*: for any submission
sequence, the indexed :class:`~repro.core.ClusterEventLoop` must reproduce
the retained :class:`~repro.core.ScanEventLoop` exactly — completion order,
placements, per-worker clocks, makespan, failure traces — including the
scans' tie-break order (stable by worker index, DET005).

The tests here drive *both* loops through identical randomized seeded
scenarios (submit / complete / cancel / query / advance, with speculative
items, fault-stretched durations, transient crashes and fail-stop node
death) and assert the full observable state agrees after every step.  A
second group pins :class:`WorkerIndex` query results to brute-force scans
over its arrays, so the heap laziness (mark-invalidation, stale release
entries) can never drift from the predicate it caches.
"""

import numpy as np
import pytest

from repro.cloud import Cluster, FleetSpec
from repro.core import ClusterEventLoop, ScanEventLoop, WorkerIndex, WorkRequest

#: Model permutations the equivalence must hold under.  ``None`` and
#: ``"none"`` are distinct code paths (nothing injected vs injected-but-
#: inert); the named models exercise stretches, transient crashes and
#: fail-stop death (dead-worker resubmission included).
MODEL_GRID = [
    (None, None),
    ("none", "none"),
    ("lognormal", "none"),
    ("none", "transient"),
    ("interference", "transient"),
    ("lognormal", "node-death"),
]


def _heterogeneous_cluster(n_workers: int, seed: int) -> Cluster:
    """Mixed fleet across 4 (region, SKU) groups — distinct speed tiers."""
    per_group = max(n_workers // 4, 1)
    fleet = FleetSpec.of(
        [
            ("westus2", "Standard_D16s_v5", per_group),
            ("westus2", "Standard_D8s_v5", per_group),
            ("eastus", "Standard_D8s_v5", per_group),
            ("eastus", "Standard_D8s_v4", n_workers - 3 * per_group),
        ]
    )
    return Cluster(n_workers=n_workers, seed=seed, fleet=fleet)


def _pair(n_workers, seed, fault_model, crash_model, homogeneous=False):
    """One (indexed, scan) loop pair over identical clusters and models.

    Each loop gets its own cluster built from the same seed (identical
    nodes) and its own model instance built from the same name — the fault
    and crash streams are content-addressed (seed + worker-id hash), so
    independently built instances inject identically.
    """
    if homogeneous:
        make = lambda: Cluster(n_workers=n_workers, seed=seed)  # noqa: E731
    else:
        make = lambda: _heterogeneous_cluster(n_workers, seed)  # noqa: E731
    indexed = ClusterEventLoop(
        make(), fault_model=fault_model, crash_model=crash_model
    )
    scan = ScanEventLoop(make(), fault_model=fault_model, crash_model=crash_model)
    return indexed, scan


def _vm_id(vm):
    return None if vm is None else vm.vm_id


def _assert_state_agrees(indexed, scan, rng):
    """Every observable the loops expose must agree, including queries."""
    assert indexed.now == scan.now
    assert indexed.makespan == scan.makespan
    assert indexed.n_in_flight == scan.n_in_flight
    assert indexed.n_dead == scan.n_dead
    assert indexed.peek_finish() == scan.peek_finish()
    for vm in scan.cluster.workers:
        assert indexed.worker_free_at(vm.vm_id) == scan.worker_free_at(vm.vm_id)
        assert indexed.is_dead(vm.vm_id) == scan.is_dead(vm.vm_id)
    assert [vm.vm_id for vm in indexed.idle_workers()] == [
        vm.vm_id for vm in scan.idle_workers()
    ]
    assert _vm_id(indexed.first_idle_worker()) == _vm_id(scan.first_idle_worker())
    # Placement queries under a random exclusion set (a configuration's
    # already-used workers, or a speculation's ineligible nodes).
    workers = scan.cluster.workers
    n_excluded = int(rng.integers(0, len(workers)))
    excluded = [
        workers[int(i)].vm_id
        for i in rng.choice(len(workers), size=n_excluded, replace=False)
    ]
    assert _vm_id(indexed.fastest_idle_worker(excluded)) == _vm_id(
        scan.fastest_idle_worker(excluded)
    )
    assert _vm_id(indexed.best_retry_worker(excluded)) == _vm_id(
        scan.best_retry_worker(excluded)
    )


def _assert_items_agree(item_a, item_b):
    assert item_a.sequence == item_b.sequence
    assert item_a.vm.vm_id == item_b.vm.vm_id
    assert item_a.start_hours == item_b.start_hours
    assert item_a.finish_hours == item_b.finish_hours
    assert item_a.stretch == item_b.stretch
    assert item_a.speculative == item_b.speculative
    assert item_a.failed == item_b.failed
    assert item_a.failure_kind == item_b.failure_kind
    assert item_a.cancelled == item_b.cancelled


def _drive_random_scenario(indexed, scan, seed, n_ops):
    """Apply one randomized op script to both loops, checking after each op.

    The script is drawn once per op from a seeded RNG and applied to both
    loops identically; every branch decision derives from the *scan* loop's
    state, which the previous step proved equal to the indexed loop's.
    """
    rng = np.random.default_rng(seed)
    request = WorkRequest(config=None, budget=1, vms=[], iteration=0)
    workers = scan.cluster.workers
    # Parallel pending lists: position i holds the same logical item in
    # both loops (proven identical on submit).
    pending_indexed = []
    pending_scan = []
    trace = []

    def pop_completions():
        item_i = indexed.next_completion()
        item_s = scan.next_completion()
        _assert_items_agree(item_i, item_s)
        trace.append((item_s.sequence, item_s.finish_hours, item_s.failed))
        for pend, item in ((pending_indexed, item_i), (pending_scan, item_s)):
            if item in pend:
                pend.remove(item)

    for _ in range(n_ops):
        op = rng.choice(["submit", "submit", "submit", "complete", "cancel", "advance"])
        if op == "submit" or scan.n_in_flight == 0 and op != "advance":
            # Deliberately includes dead workers: resubmission onto a
            # drained node must fail instantly and identically.
            vm_idx = int(rng.integers(0, len(workers)))
            duration = float(rng.uniform(0.2, 3.0))
            speculative = bool(rng.random() < 0.2)
            not_before = (
                scan.now + float(rng.uniform(0.0, 1.0))
                if rng.random() < 0.3
                else 0.0
            )
            item_i = indexed.submit(
                request,
                indexed.cluster.workers[vm_idx],
                duration,
                speculative=speculative,
                not_before=not_before,
            )
            item_s = scan.submit(
                request,
                workers[vm_idx],
                duration,
                speculative=speculative,
                not_before=not_before,
            )
            _assert_items_agree(item_i, item_s)
            pending_indexed.append(item_i)
            pending_scan.append(item_s)
        elif op == "complete":
            pop_completions()
        elif op == "cancel":
            # First-finish-wins speculation loser: cancel a random pending
            # item (already-popped items are pruned lazily here, mirroring
            # the engine's done-guard).
            cancellable = [
                k
                for k, item in enumerate(pending_scan)
                if not item.done and not item.cancelled
            ]
            if cancellable:
                k = cancellable[int(rng.integers(0, len(cancellable)))]
                indexed.cancel(pending_indexed[k])
                scan.cancel(pending_scan[k])
                _assert_items_agree(pending_indexed[k], pending_scan[k])
        else:
            jump = scan.now + float(rng.uniform(0.0, 2.0))
            indexed.advance_now(jump)
            scan.advance_now(jump)
        _assert_state_agrees(indexed, scan, rng)

    # Drain: the full remaining completion order must agree event by event.
    while scan.n_in_flight > 0:
        pop_completions()
        _assert_state_agrees(indexed, scan, rng)
    assert indexed.n_in_flight == 0
    return trace


@pytest.mark.parametrize("fault_model,crash_model", MODEL_GRID)
def test_indexed_loop_matches_scan_reference(fault_model, crash_model):
    """Randomized submit/complete/cancel/fail scenarios: identical
    completion order, placements and clocks under every model permutation."""
    for seed in (0, 11, 202):
        indexed, scan = _pair(12, seed, fault_model, crash_model)
        trace = _drive_random_scenario(indexed, scan, seed=seed * 31 + 7, n_ops=160)
        assert trace, "scenario must have produced completions"
        assert indexed.makespan == scan.makespan


def test_indexed_loop_matches_scan_on_homogeneous_cluster():
    """Single-group fleet: every tie-break falls through to worker index."""
    indexed, scan = _pair(
        10, 3, fault_model="none", crash_model="transient", homogeneous=True
    )
    _drive_random_scenario(indexed, scan, seed=99, n_ops=200)


def test_indexed_loop_matches_scan_in_lockstep_mode():
    """The batch-size-1 gate's substrate: lockstep starts at ``now``."""
    indexed, scan = _pair(8, 5, None, None)
    indexed.lockstep = True
    scan.lockstep = True
    _drive_random_scenario(indexed, scan, seed=41, n_ops=120)


def test_submit_to_foreign_worker_raises_keyerror():
    indexed, scan = _pair(4, 0, None, None)
    # A larger cluster's extra node: its vm_id is absent from the 4-worker
    # loops (worker ids are positional, so same-size clusters would collide).
    foreign = Cluster(n_workers=9, seed=777).workers[8]
    request = WorkRequest(config=None, budget=1, vms=[], iteration=0)
    with pytest.raises(KeyError):
        indexed.submit(request, foreign, 1.0)
    with pytest.raises(KeyError):
        scan.submit(request, foreign, 1.0)


# -- WorkerIndex vs brute force -----------------------------------------------


def _brute_first_idle(index, now):
    for i in range(index.n_workers):
        if index.alive[i] and index.free_at[i] <= now:
            return i
    return None


def _brute_fastest_idle(index, now, excluded):
    best = None
    for i in range(index.n_workers):
        if not index.alive[i] or index.free_at[i] > now or i in excluded:
            continue
        if best is None or (-index.speed[i], i) < (-index.speed[best], best):
            best = i
    return best


def _brute_best_queued(index, now, excluded):
    best = None

    def key(i):
        return (max(float(index.free_at[i]), now), -index.speed[i], i)

    for i in range(index.n_workers):
        if not index.alive[i] or i in excluded:
            continue
        if best is None or key(i) < key(best):
            best = i
    return best


def test_worker_index_queries_match_brute_force_scans():
    """Fuzz claim/release/kill against O(n) reference scans: the lazy heap
    bookkeeping (mark-invalidation, stale release-calendar entries, rewound
    clocks) must never change a query result."""
    cluster = _heterogeneous_cluster(16, seed=1)
    index = WorkerIndex(cluster)
    ids = [vm.vm_id for vm in cluster.workers]
    rng = np.random.default_rng(12345)
    now = 0.0
    for _ in range(400):
        op = rng.choice(["claim", "release", "advance", "kill"], p=[0.45, 0.2, 0.3, 0.05])
        i = int(rng.integers(0, index.n_workers))
        if op == "claim":
            index.set_free_at(i, now + float(rng.uniform(0.1, 5.0)))
        elif op == "release":
            # Cancellation rewind: the clock moves *backwards*, leaving a
            # stale future entry in the release calendar.
            index.set_free_at(i, max(0.0, now - float(rng.uniform(0.0, 1.0))))
        elif op == "advance":
            now += float(rng.uniform(0.0, 2.0))
        else:
            index.kill(i)
        n_excluded = int(rng.integers(0, index.n_workers))
        excluded = {
            int(j) for j in rng.choice(index.n_workers, size=n_excluded, replace=False)
        }
        excluded_ids = [ids[j] for j in excluded]
        assert index.first_idle(now) == _brute_first_idle(index, now)
        assert index.fastest_idle(now, excluded_ids) == _brute_fastest_idle(
            index, now, excluded
        )
        assert index.best_queued(now, excluded_ids) == _brute_best_queued(
            index, now, excluded
        )
        expected_idle = [
            i
            for i in range(index.n_workers)
            if index.alive[i] and index.free_at[i] <= now
        ]
        assert list(index.idle_indices(now)) == expected_idle


def test_worker_index_tie_breaks_by_cluster_position():
    """Uniform speeds: fastest-idle and best-queued must pick the lowest
    cluster index (the scan order's first hit) — DET005's stable order."""
    cluster = Cluster(n_workers=6, seed=0)
    index = WorkerIndex(cluster)
    assert index.fastest_idle(0.0) == 0
    assert index.best_queued(0.0) == 0
    index.set_free_at(0, 4.0)
    index.set_free_at(1, 4.0)
    assert index.fastest_idle(0.0) == 2
    ids = [vm.vm_id for vm in cluster.workers]
    assert index.fastest_idle(0.0, excluded_ids=[ids[2], ids[3]]) == 4
    # All queued equally far out: earliest start ties, index decides.
    for i in range(index.n_workers):
        index.set_free_at(i, 4.0)
    assert index.fastest_idle(0.0) is None
    assert index.best_queued(0.0) == 0
    assert index.best_queued(0.0, excluded_ids=[ids[0]]) == 1


def test_worker_index_kill_removes_from_every_query():
    cluster = Cluster(n_workers=3, seed=0)
    index = WorkerIndex(cluster)
    index.kill(0)
    assert index.first_idle(0.0) == 1
    assert index.fastest_idle(0.0) == 1
    assert index.best_queued(0.0) == 1
    assert list(index.idle_indices(0.0)) == [1, 2]
    index.kill(1)
    index.kill(2)
    assert index.first_idle(0.0) is None
    assert index.fastest_idle(0.0) is None
    assert index.best_queued(0.0) is None

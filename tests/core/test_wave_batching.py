"""Edge cases of wave tell-batching (completions drained in one instant).

Satellite coverage for the optimizer-side tell batching of PR 3, exercised
against the new fault/speculation machinery: an empty wave must be a strict
no-op, a wave containing a speculative first-finish-wins slot must still
deliver exactly one result per sample, and a wave landing exactly at
``max_samples`` must close the run without overshoot.
"""

import pytest

from repro.cloud import Cluster
from repro.core import ExecutionEngine, TunaSampler, TuningLoop
from repro.optimizers import RandomSearchOptimizer, SMACOptimizer
from repro.systems import PostgreSQLSystem
from repro.workloads import TPCC


def make_sampler(seed=0, optimizer="random", n_workers=10, **tuna_kwargs):
    system = PostgreSQLSystem()
    cluster = Cluster(n_workers=n_workers, seed=seed)
    execution = ExecutionEngine(system, TPCC, seed=seed)
    if optimizer == "random":
        opt = RandomSearchOptimizer(system.knob_space, seed=seed)
    else:
        opt = SMACOptimizer(
            system.knob_space, seed=seed, n_initial_design=5,
            n_candidates=60, n_local=20, n_trees=6,
        )
    return TunaSampler(opt, execution, cluster, seed=seed, **tuna_kwargs)


class TestEmptyWave:
    def test_complete_work_batch_of_nothing_is_a_noop(self):
        sampler = make_sampler()
        version = sampler.optimizer.data_version
        assert sampler.complete_work_batch([]) == []
        # No observations, no retraction, no surrogate cache invalidation.
        assert sampler.optimizer.data_version == version
        assert sampler.optimizer.n_observations == 0
        assert sampler.datastore.n_samples == 0

    def test_optimizer_tell_batch_of_nothing_is_a_noop(self):
        sampler = make_sampler(optimizer="smac")
        version = sampler.optimizer.data_version
        sampler.optimizer.tell_batch([])
        assert sampler.optimizer.data_version == version


class TestWaveWithSpeculativeDuplicate:
    def test_wave_still_sees_one_result_per_sample(self):
        # A heavy-tail run with speculation armed: waves can contain a
        # request whose sample came from a duplicate while the straggling
        # original was cancelled.  The optimizer must see exactly one tell
        # per completed request and end with no pending fantasies.
        sampler = make_sampler(seed=37, optimizer="smac")
        result = TuningLoop(
            sampler,
            max_samples=45,
            batch_size=8,
            fault_model="lognormal",
            fault_seed=37,
            speculation=True,
        ).run()
        stats = result.engine_stats
        assert stats["n_duplicates_submitted"] > 0
        assert stats["n_items_cancelled"] > 0
        # One report per completed request; one sample per accepted slot.
        assert len(result.history) == result.n_iterations
        assert sampler.datastore.n_samples == result.n_samples
        assert sampler.optimizer.n_pending == 0
        assert all(
            not obs.metadata.get("fantasy")
            for obs in sampler.optimizer.observations
        )
        # Every sample of every config still sits on a distinct node.
        for config in sampler.datastore.configs():
            workers = sampler.datastore.workers_used(config)
            assert len(set(workers)) == len(workers)


class TestWaveAtMaxSamples:
    def test_wave_lands_exactly_at_the_cap(self):
        # Homogeneous cluster, budget-1 proposals: the 4 requests of each
        # round finish at the same instant and come back as one wave, so
        # the cap (a multiple of the wave width) is hit exactly.
        sampler = make_sampler(seed=3)
        result = TuningLoop(sampler, max_samples=8, batch_size=4).run()
        assert result.n_samples == 8
        assert sampler.datastore.n_samples == 8
        # Submission was gated on submitted samples: nothing overshot while
        # the last wave was still in flight.
        assert sampler.optimizer.n_pending == 0

    @pytest.mark.parametrize("max_samples", [7, 9])
    def test_cap_straddling_waves_do_not_lose_results(self, max_samples):
        # A cap that is not a multiple of the wave width: the final wave may
        # overshoot by at most the watermark, but every landed sample is
        # reported and the run still terminates.
        sampler = make_sampler(seed=4)
        result = TuningLoop(sampler, max_samples=max_samples, batch_size=4).run()
        assert result.n_samples >= max_samples
        assert result.n_samples <= max_samples + 4
        assert sampler.datastore.n_samples == result.n_samples

"""Unit tests for the individual TUNA components."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cloud import Cluster, TELEMETRY_METRICS
from repro.configspace import ConfigurationSpace, FloatParameter
from repro.core.aggregation import AggregationPolicy, aggregate, apply_instability_penalty
from repro.core.datastore import Datastore, Sample
from repro.core.multi_fidelity import SuccessiveHalvingSchedule
from repro.core.noise_adjuster import NoiseAdjuster
from repro.core.outlier import OutlierDetector
from repro.core.scheduler import MultiFidelityTaskScheduler
from repro.workloads.base import Objective


def tiny_space():
    return ConfigurationSpace([FloatParameter("x", 0.0, 1.0)], seed=0)


def make_sample(config, worker="worker-0", value=100.0, crashed=False, telemetry="auto"):
    if telemetry == "auto":
        telemetry = np.random.default_rng(0).random(len(TELEMETRY_METRICS))
    return Sample(
        config=config,
        worker_id=worker,
        value=value,
        objective_unit="tx/s",
        iteration=0,
        budget=1,
        crashed=crashed,
        telemetry=telemetry,
    )


class TestAggregation:
    def test_min_policy_throughput_takes_lowest(self):
        assert aggregate([100, 200, 50], Objective.THROUGHPUT) == 50

    def test_min_policy_latency_takes_highest(self):
        """Worst case for latency is the *largest* value."""
        assert aggregate([1.0, 3.0, 2.0], Objective.P95_LATENCY) == 3.0

    def test_max_policy(self):
        assert aggregate([1.0, 3.0], Objective.THROUGHPUT, AggregationPolicy.MAX) == 3.0
        assert aggregate([1.0, 3.0], Objective.RUNTIME, AggregationPolicy.MAX) == 1.0

    def test_mean_and_median(self):
        assert aggregate([1.0, 2.0, 6.0], Objective.THROUGHPUT, AggregationPolicy.MEAN) == 3.0
        assert aggregate([1.0, 2.0, 6.0], Objective.THROUGHPUT, AggregationPolicy.MEDIAN) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([], Objective.THROUGHPUT)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            aggregate([1.0, float("nan")], Objective.THROUGHPUT)

    def test_penalty_halves_throughput(self):
        assert apply_instability_penalty(1000.0, Objective.THROUGHPUT) == 500.0

    def test_penalty_doubles_latency(self):
        assert apply_instability_penalty(10.0, Objective.P95_LATENCY) == 20.0

    @given(st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=20))
    def test_min_never_exceeds_mean_for_throughput(self, values):
        assert aggregate(values, Objective.THROUGHPUT) <= aggregate(
            values, Objective.THROUGHPUT, AggregationPolicy.MEAN
        ) + 1e-9


class TestOutlierDetector:
    def test_stable_config_not_flagged(self):
        detector = OutlierDetector()
        assert not detector.is_unstable_values([100, 102, 99, 101])

    def test_unstable_config_flagged(self):
        detector = OutlierDetector()
        assert detector.is_unstable_values([100, 102, 55, 101])

    def test_single_sample_never_flagged(self):
        assert not OutlierDetector().is_unstable_values([42.0])

    def test_threshold_boundary(self):
        detector = OutlierDetector(threshold=0.30)
        # Exactly 30% relative range is *not* above the threshold.
        values = [85.0, 100.0, 115.0]
        assert detector.relative_range(values) == pytest.approx(0.30)
        assert not detector.is_unstable_values(values)

    def test_custom_threshold(self):
        strict = OutlierDetector(threshold=0.10)
        assert strict.is_unstable_values([100, 95, 112])

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            OutlierDetector(threshold=0.0)

    def test_crash_is_always_unstable(self):
        config = tiny_space().default_configuration()
        samples = [make_sample(config, value=100.0), make_sample(config, value=101.0, crashed=True)]
        assert OutlierDetector().is_unstable(samples)

    def test_empty_samples_not_unstable(self):
        assert not OutlierDetector().is_unstable([])

    def test_insensitive_to_outlier_count(self):
        """Paper §4.2: one or many outliers classify the same way."""
        detector = OutlierDetector()
        one = [100, 100, 100, 100, 100, 100, 100, 100, 100, 50]
        many = [100, 100, 100, 100, 100, 50, 50, 50, 50, 50]
        assert detector.is_unstable_values(one)
        assert detector.is_unstable_values(many)


class TestDatastore:
    def test_add_and_query(self):
        space = tiny_space()
        config_a = space.default_configuration()
        config_b = space.partial_configuration(x=0.9)
        store = Datastore()
        store.add(make_sample(config_a, worker="worker-0", value=10.0))
        store.add(make_sample(config_a, worker="worker-1", value=12.0))
        store.add(make_sample(config_b, worker="worker-2", value=20.0))
        assert store.n_samples == 3
        assert store.n_configs == 2
        assert store.values_for(config_a) == [10.0, 12.0]
        assert store.workers_used(config_a) == ["worker-0", "worker-1"]
        assert store.samples_for(config_b)[0].value == 20.0
        assert store.max_samples_per_config() == 2

    def test_configs_with_at_least_ignores_crashes(self):
        space = tiny_space()
        config = space.default_configuration()
        store = Datastore()
        store.add(make_sample(config, value=10.0))
        store.add(make_sample(config, value=float(11), crashed=True))
        assert store.configs_with_at_least(2) == []
        assert store.configs_with_at_least(1) == [config]

    def test_effective_value_prefers_adjusted(self):
        sample = make_sample(tiny_space().default_configuration(), value=100.0)
        assert sample.effective_value == 100.0
        sample.adjusted_value = 97.0
        assert sample.effective_value == 97.0

    def test_empty_store(self):
        store = Datastore()
        assert store.n_samples == 0
        assert store.max_samples_per_config() == 0
        assert store.configs() == []


class TestSuccessiveHalving:
    def _schedule(self, objective=Objective.THROUGHPUT):
        return SuccessiveHalvingSchedule(objective=objective, budgets=(1, 3, 10), eta=3.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SuccessiveHalvingSchedule(objective=Objective.THROUGHPUT, budgets=(5,))
        with pytest.raises(ValueError):
            SuccessiveHalvingSchedule(objective=Objective.THROUGHPUT, budgets=(3, 1))
        with pytest.raises(ValueError):
            SuccessiveHalvingSchedule(objective=Objective.THROUGHPUT, budgets=(1, 3), eta=1.0)

    def test_budget_navigation(self):
        schedule = self._schedule()
        assert schedule.min_budget == 1
        assert schedule.max_budget == 10
        assert schedule.next_budget(1) == 3
        assert schedule.next_budget(10) is None
        with pytest.raises(ValueError):
            schedule.next_budget(7)

    def test_no_promotion_until_rung_filled(self):
        schedule = self._schedule()
        space = tiny_space()
        schedule.record(space.partial_configuration(x=0.1), 1, 100.0)
        schedule.record(space.partial_configuration(x=0.2), 1, 200.0)
        assert schedule.propose_promotion() is None

    def test_best_config_promoted_first(self):
        schedule = self._schedule()
        space = tiny_space()
        configs = [space.partial_configuration(x=0.1 * i) for i in range(1, 7)]
        for i, config in enumerate(configs):
            schedule.record(config, 1, 100.0 + i * 10)
        config, budget = schedule.propose_promotion()
        assert budget == 3
        assert config == configs[-1]  # highest throughput

    def test_promotion_direction_for_runtime(self):
        schedule = self._schedule(objective=Objective.RUNTIME)
        space = tiny_space()
        fast = space.partial_configuration(x=0.1)
        slow = space.partial_configuration(x=0.9)
        third = space.partial_configuration(x=0.5)
        schedule.record(fast, 1, 50.0)
        schedule.record(slow, 1, 200.0)
        schedule.record(third, 1, 100.0)
        config, _ = schedule.propose_promotion()
        assert config == fast  # lowest runtime wins

    def test_config_not_promoted_twice(self):
        schedule = self._schedule()
        space = tiny_space()
        for i in range(1, 4):
            schedule.record(space.partial_configuration(x=0.1 * i), 1, 100.0 * i)
        first = schedule.propose_promotion()
        assert first is not None
        assert schedule.propose_promotion() is None  # only top 1/3 promotable

    def test_rollback_makes_proposal_available_again(self):
        schedule = self._schedule()
        space = tiny_space()
        for i in range(1, 4):
            schedule.record(space.partial_configuration(x=0.1 * i), 1, 100.0 * i)
        config, budget = schedule.propose_promotion()
        assert schedule.n_pending_promotions() == 0  # reserved while in flight
        schedule.rollback_promotion(config)
        assert schedule.n_pending_promotions() == 1
        again = schedule.propose_promotion()
        assert again == (config, budget)

    def test_commit_finalises_the_promotion(self):
        schedule = self._schedule()
        space = tiny_space()
        for i in range(1, 4):
            schedule.record(space.partial_configuration(x=0.1 * i), 1, 100.0 * i)
        config, _ = schedule.propose_promotion()
        schedule.commit_promotion(config)
        assert schedule.propose_promotion() is None
        with pytest.raises(KeyError):  # nothing pending any more
            schedule.rollback_promotion(config)

    def test_record_updates_existing_entry(self):
        schedule = self._schedule()
        config = tiny_space().default_configuration()
        schedule.record(config, 1, 100.0)
        schedule.record(config, 1, 150.0)
        assert len(schedule.rung_configs(1)) == 1

    def test_configs_at_max_budget(self):
        schedule = self._schedule()
        config = tiny_space().default_configuration()
        schedule.record(config, 10, 500.0)
        assert schedule.configs_at_max_budget() == [config]

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError):
            self._schedule().record(tiny_space().default_configuration(), 7, 1.0)


class TestScheduler:
    def test_assign_excludes_used_workers(self):
        cluster = Cluster(n_workers=10, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        config = tiny_space().default_configuration()
        chosen = scheduler.assign(config, 3, already_used=["worker-0"])
        assert len(chosen) == 2
        assert all(vm.vm_id != "worker-0" for vm in chosen)

    def test_assign_returns_empty_when_budget_met(self):
        cluster = Cluster(n_workers=5, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        config = tiny_space().default_configuration()
        assert scheduler.assign(config, 2, ["worker-0", "worker-1"]) == []

    def test_budget_larger_than_cluster_rejected(self):
        cluster = Cluster(n_workers=3, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        with pytest.raises(ValueError):
            scheduler.assign(tiny_space().default_configuration(), 5, [])

    def test_invalid_budget(self):
        cluster = Cluster(n_workers=3, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        with pytest.raises(ValueError):
            scheduler.assign(tiny_space().default_configuration(), 0, [])

    def test_unknown_used_workers_tolerated(self):
        """Sample history from outside the cluster (e.g. a replaced node) is
        counted towards the budget but never scheduled again."""
        cluster = Cluster(n_workers=3, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        chosen = scheduler.assign(
            tiny_space().default_configuration(), 3, ["worker-x", "worker-0"]
        )
        assert len(chosen) == 1
        assert chosen[0].vm_id in {"worker-1", "worker-2"}

    def test_load_balancing_spreads_samples(self):
        cluster = Cluster(n_workers=4, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        space = tiny_space()
        for i in range(8):
            config = space.partial_configuration(x=(i + 1) / 10.0)
            scheduler.assign(config, 1, [])
        loads = scheduler.load_snapshot()
        assert max(loads.values()) - min(loads.values()) <= 1

    def test_reserved_workers_assigned_last(self):
        cluster = Cluster(n_workers=4, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        space = tiny_space()
        scheduler.reserve(["worker-0", "worker-1", "worker-2"])
        chosen = scheduler.assign(space.partial_configuration(x=0.1), 1, [])
        assert chosen[0].vm_id == "worker-3"  # the only idle worker
        # With every idle worker exhausted, reserved ones are still eligible
        # (their queue just grows).
        chosen = scheduler.assign(
            space.partial_configuration(x=0.1), 2, ["worker-3"]
        )
        assert chosen[0].vm_id in {"worker-0", "worker-1", "worker-2"}

    def test_reserve_release_bookkeeping(self):
        cluster = Cluster(n_workers=2, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        scheduler.reserve(["worker-0", "worker-0", "worker-1"])
        assert scheduler.n_reserved() == 3
        scheduler.release(["worker-0", "worker-1"])
        assert scheduler.n_reserved() == 1
        with pytest.raises(RuntimeError):
            scheduler.release(["worker-1"])  # nothing left to release
        with pytest.raises(KeyError):
            scheduler.reserve(["worker-x"])
        with pytest.raises(KeyError):
            scheduler.release(["worker-x"])

    def test_record_external_load(self):
        cluster = Cluster(n_workers=2, seed=0)
        scheduler = MultiFidelityTaskScheduler(cluster, seed=0)
        scheduler.record_external_load("worker-0", 5)
        assert scheduler.load_snapshot()["worker-0"] == 5
        with pytest.raises(KeyError):
            scheduler.record_external_load("worker-99")


class TestNoiseAdjuster:
    def _training_groups(self, n_configs=6, n_workers=10, noise=0.05, seed=0):
        """Synthetic groups where noise is fully explained by one metric."""
        rng = np.random.default_rng(seed)
        space = tiny_space()
        worker_ids = [f"worker-{i}" for i in range(n_workers)]
        groups = []
        for c in range(n_configs):
            config = space.partial_configuration(x=(c + 1) / (n_configs + 1))
            base = 1000.0 * (1 + c / 10)
            samples = []
            for w, worker in enumerate(worker_ids):
                error = float(rng.normal(0.0, noise))
                telemetry = np.zeros(len(TELEMETRY_METRICS))
                telemetry[0] = error  # cpu_percent carries the noise signal
                telemetry[1:] = rng.random(len(TELEMETRY_METRICS) - 1) * 0.01
                samples.append(
                    Sample(
                        config=config,
                        worker_id=worker,
                        value=base * (1 + error),
                        objective_unit="tx/s",
                        iteration=c,
                        budget=10,
                        telemetry=telemetry,
                    )
                )
            groups.append(samples)
        return groups, worker_ids

    def test_requires_workers(self):
        with pytest.raises(ValueError):
            NoiseAdjuster(worker_ids=[])

    def test_untrained_model_passthrough(self):
        groups, workers = self._training_groups(n_configs=1)
        adjuster = NoiseAdjuster(worker_ids=workers, seed=0)
        sample = groups[0][0]
        assert adjuster.adjust(sample) == sample.value
        assert not adjuster.is_trained

    def test_predict_before_training_raises(self):
        adjuster = NoiseAdjuster(worker_ids=["worker-0"], seed=0)
        with pytest.raises(RuntimeError):
            adjuster.predict_error(np.zeros(len(TELEMETRY_METRICS)), "worker-0")

    def test_training_requires_enough_data(self):
        adjuster = NoiseAdjuster(worker_ids=["worker-0", "worker-1"], seed=0)
        assert adjuster.train([]) is False
        assert not adjuster.is_trained

    def test_training_and_generation_counter(self):
        groups, workers = self._training_groups()
        adjuster = NoiseAdjuster(worker_ids=workers, seed=0)
        assert adjuster.train(groups) is True
        assert adjuster.is_trained
        assert adjuster.generation == 1
        adjuster.train(groups)
        assert adjuster.generation == 2

    def test_adjustment_reduces_noise(self):
        """The headline property (Fig. 19b): adjusted values are closer to the
        per-config mean than raw values."""
        groups, workers = self._training_groups(n_configs=8, noise=0.06, seed=1)
        adjuster = NoiseAdjuster(worker_ids=workers, seed=1)
        adjuster.train(groups)

        eval_groups, _ = self._training_groups(n_configs=4, noise=0.06, seed=99)
        raw_err, adj_err = [], []
        for samples in eval_groups:
            mean = np.mean([s.value for s in samples])
            for sample in samples:
                raw_err.append(abs(sample.value - mean) / mean)
                adj_err.append(abs(adjuster.adjust(sample) - mean) / mean)
        assert np.mean(adj_err) < np.mean(raw_err)

    def test_outlier_and_crash_bypass(self):
        groups, workers = self._training_groups()
        adjuster = NoiseAdjuster(worker_ids=workers, seed=0)
        adjuster.train(groups)
        sample = groups[0][0]
        assert adjuster.adjust(sample, is_outlier=True) == sample.value
        crashed = Sample(
            config=sample.config,
            worker_id=sample.worker_id,
            value=42.0,
            objective_unit="tx/s",
            iteration=0,
            budget=10,
            crashed=True,
            telemetry=sample.telemetry,
        )
        assert adjuster.adjust(crashed) == 42.0

    def test_adjustment_clipped_to_guardrail(self):
        groups, workers = self._training_groups()
        adjuster = NoiseAdjuster(worker_ids=workers, seed=0)
        adjuster.train(groups)
        sample = groups[0][0]
        adjusted = adjuster.adjust(sample)
        assert 0.7 * sample.value <= adjusted <= 1.45 * sample.value

    def test_wrong_telemetry_length_rejected(self):
        adjuster = NoiseAdjuster(worker_ids=["worker-0"], seed=0)
        with pytest.raises(ValueError):
            adjuster._features(np.zeros(3), "worker-0")

    def test_invalid_min_training_configs(self):
        with pytest.raises(ValueError):
            NoiseAdjuster(worker_ids=["w"], min_training_configs=0)


class TestNoiseAdjusterCache:
    def test_identical_training_data_reuses_model(self):
        groups, workers = TestNoiseAdjuster._training_groups(TestNoiseAdjuster())
        adjuster = NoiseAdjuster(worker_ids=workers, seed=0)
        assert adjuster.train(groups) is True
        model_a = adjuster._model
        generation_a = adjuster.generation
        assert adjuster.train(groups) is True
        assert adjuster._model is model_a  # refit skipped
        assert adjuster.generation == generation_a + 1  # counter still advances

    def test_changed_training_data_refits(self):
        groups, workers = TestNoiseAdjuster._training_groups(TestNoiseAdjuster())
        adjuster = NoiseAdjuster(worker_ids=workers, seed=0)
        assert adjuster.train(groups) is True
        model_a = adjuster._model
        grown = [list(group) for group in groups]
        grown[0] = grown[0] + grown[0][:1]
        assert adjuster.train(grown) is True
        assert adjuster._model is not model_a

"""Tests for crash-fault injection, retry/backoff recovery and degradation.

Covers the crash subsystem's signature guarantee (``crash_model="none"``
and ``retry_policy=None`` reproduce existing trajectories bit-for-bit), the
retry machinery (rerouting, backoff, budget exhaustion, crash-penalty
surfacing), permanent node death (fleet drain, graceful degradation down to
a single survivor), the speculation x crash interplay, and the event-loop
cancellation/purge audit.
"""

import numpy as np
import pytest

from repro.cloud import Cluster
from repro.core import (
    AsyncExecutionEngine,
    ClusterEventLoop,
    ExecutionEngine,
    RetryPolicy,
    TunaSampler,
    TuningLoop,
    WorkRequest,
)
from repro.faults import (
    CrashDecision,
    CrashModel,
    NoCrashModel,
    SpeculationPolicy,
    FaultModel,
)
from repro.optimizers import RandomSearchOptimizer
from repro.systems import PostgreSQLSystem
from repro.workloads import TPCC


def make_setup(seed, n_workers=10):
    system = PostgreSQLSystem()
    cluster = Cluster(n_workers=n_workers, seed=seed)
    execution = ExecutionEngine(system, TPCC, seed=seed)
    opt = RandomSearchOptimizer(system.knob_space, seed=seed)
    return system, cluster, execution, opt


def sample_trajectory(sampler):
    return [
        (s.worker_id, s.value, s.iteration, s.budget, s.crashed)
        for s in sampler.datastore.all_samples()
    ]


def run_tuna(seed=5, batch_size=5, max_samples=40, n_workers=10, budgets=None, **loop_kwargs):
    _, cluster, execution, opt = make_setup(seed, n_workers=n_workers)
    sampler_kwargs = {} if budgets is None else {"budgets": budgets}
    sampler = TunaSampler(opt, execution, cluster, seed=seed, **sampler_kwargs)
    result = TuningLoop(
        sampler, max_samples=max_samples, batch_size=batch_size, **loop_kwargs
    ).run()
    return sampler, result, cluster


class ScriptedCrash(CrashModel):
    """Fails the n-th submission(s) at a fixed fraction of their window."""

    name = "scripted"

    def __init__(self, fail_at=(), worker_dead=False, fraction=0.5):
        super().__init__(seed=0)
        self.fail_calls = set(fail_at)
        self.worker_dead = worker_dead
        self.fraction = fraction
        self.calls = 0

    def decide(self, context):
        call = self.calls
        self.calls += 1
        if call not in self.fail_calls:
            return CrashDecision(failed=False)
        return CrashDecision(
            failed=True,
            fail_at_hours=context.start_hours
            + self.fraction * context.duration_hours,
            worker_dead=self.worker_dead,
            kind="node-death" if self.worker_dead else "transient",
        )


class ScriptedDeaths(CrashModel):
    """Permanent fail-stop of specific workers at scripted simulated times."""

    name = "scripted-deaths"

    def __init__(self, deaths):
        super().__init__(seed=0)
        self.deaths = dict(deaths)

    def decide(self, context):
        death = self.deaths.get(context.worker_id)
        if death is None or context.finish_hours <= death:
            return CrashDecision(failed=False)
        return CrashDecision(
            failed=True,
            fail_at_hours=max(context.start_hours, death),
            worker_dead=True,
            kind="node-death",
        )


def make_engine(crash_model, retry_policy=None, n_workers=4, seed=1, **kwargs):
    _, cluster, execution, _ = make_setup(seed, n_workers=n_workers)
    engine = AsyncExecutionEngine(
        execution,
        cluster,
        crash_model=crash_model,
        retry_policy=retry_policy,
        **kwargs,
    )
    return engine, cluster


def submit_singles(engine, cluster, workers):
    space = PostgreSQLSystem().knob_space
    requests = []
    for i, worker_index in enumerate(workers):
        config = space.sample(np.random.default_rng(i))
        request = WorkRequest(config, 1, [cluster.workers[worker_index]], i)
        engine.submit(request)
        requests.append(request)
    return requests


def drain(engine):
    completed = {}
    while engine.n_in_flight_requests:
        request, samples = engine.next_completed_request()
        completed[id(request)] = samples
    return completed


class TestNoneModelEquivalence:
    """The signature guarantee: 'none' crash model == no model, bit for bit."""

    def test_plain_trajectories_identical(self):
        plain_sampler, plain_result, plain_cluster = run_tuna()
        null_sampler, null_result, null_cluster = run_tuna(
            crash_model="none", retry_policy=RetryPolicy()
        )
        assert sample_trajectory(plain_sampler) == sample_trajectory(null_sampler)
        assert plain_result.wall_clock_hours == null_result.wall_clock_hours
        assert plain_result.best_config == null_result.best_config
        for vm_a, vm_b in zip(plain_cluster.workers, null_cluster.workers):
            assert vm_a.clock_hours == vm_b.clock_hours

    def test_instance_and_name_are_equivalent(self):
        by_name, _, _ = run_tuna(crash_model="none")
        by_instance, _, _ = run_tuna(crash_model=NoCrashModel())
        assert sample_trajectory(by_name) == sample_trajectory(by_instance)

    def test_null_crash_model_on_top_of_faults_and_speculation(self):
        """The PR 4 guarded trajectory (faults + speculation) must survive
        arming the null crash model and a retry policy unchanged."""
        kwargs = dict(fault_model="lognormal", fault_seed=7, speculation=True)
        base_sampler, base_result, _ = run_tuna(**kwargs)
        null_sampler, null_result, _ = run_tuna(
            crash_model="none", retry_policy=RetryPolicy(), **kwargs
        )
        assert sample_trajectory(base_sampler) == sample_trajectory(null_sampler)
        assert base_result.wall_clock_hours == null_result.wall_clock_hours

    def test_engine_stats_absent_without_crash_model(self):
        _, result, _ = run_tuna(crash_model="none")
        assert result.engine_stats is None


class TestInjectedRunsAreReproducible:
    def test_same_seed_same_trajectory(self):
        a_sampler, a_result, _ = run_tuna(
            crash_model="transient", crash_seed=3, retry_policy=RetryPolicy()
        )
        b_sampler, b_result, _ = run_tuna(
            crash_model="transient", crash_seed=3, retry_policy=RetryPolicy()
        )
        assert sample_trajectory(a_sampler) == sample_trajectory(b_sampler)
        assert a_result.wall_clock_hours == b_result.wall_clock_hours
        assert a_result.engine_stats == b_result.engine_stats


class TestLoopValidation:
    def test_active_crash_model_requires_async_batches(self):
        _, cluster, execution, opt = make_setup(0)
        sampler = TunaSampler(opt, execution, cluster, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(
                sampler, max_samples=5, crash_model="transient", crash_seed=0
            )
        with pytest.raises(ValueError, match="batch_size"):
            TuningLoop(
                sampler,
                max_samples=5,
                batch_size=1,
                crash_model="transient",
                crash_seed=0,
            )

    def test_engine_rejects_lockstep_crash_injection(self):
        _, cluster, execution, _ = make_setup(0)
        with pytest.raises(ValueError, match="lockstep"):
            AsyncExecutionEngine(
                execution, cluster, lockstep=True, crash_model=ScriptedCrash()
            )

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_hours=1.0, max_backoff_hours=0.5)
        policy = RetryPolicy(
            backoff_hours=0.1, backoff_factor=2.0, max_backoff_hours=0.3
        )
        assert policy.delay_hours(0) == 0.1
        assert policy.delay_hours(1) == 0.2
        assert policy.delay_hours(5) == 0.3  # capped


class TestRetryRecovery:
    def test_transient_failure_is_retried_on_a_different_worker(self):
        engine, cluster = make_engine(
            ScriptedCrash(fail_at=[0]), retry_policy=RetryPolicy()
        )
        requests = submit_singles(engine, cluster, [0, 1])
        completed = drain(engine)
        assert engine.crash_stats.n_failures == 1
        assert engine.crash_stats.n_retries == 1
        assert engine.crash_stats.n_exhausted == 0
        crashed_slot = completed[id(requests[0])]
        assert len(crashed_slot) == 1
        assert not crashed_slot[0].crashed  # the retry delivered a real value
        assert crashed_slot[0].worker_id != "worker-0"  # rerouted

    def test_backoff_delays_the_resubmission(self):
        policy = RetryPolicy(max_retries=1, backoff_hours=0.25, backoff_factor=1.0)
        engine, cluster = make_engine(
            ScriptedCrash(fail_at=[0], fraction=0.5), retry_policy=policy
        )
        submit_singles(engine, cluster, [0])
        drain(engine)
        # The failure hit at 0.5 * duration, so the retry started no earlier
        # than fail + backoff, and the makespan (set by the retry's real
        # completion) reflects the delay.
        fail_at = 0.5 * engine.duration_for(cluster.workers[0])
        assert engine.crash_stats.n_retries == 1
        assert engine.makespan_hours >= fail_at + 0.25

    def test_zero_retry_budget_surfaces_the_penalty_immediately(self):
        engine, cluster = make_engine(
            ScriptedCrash(fail_at=[0]), retry_policy=RetryPolicy(max_retries=0)
        )
        requests = submit_singles(engine, cluster, [0])
        completed = drain(engine)
        assert engine.crash_stats.n_retries == 0
        assert engine.crash_stats.n_exhausted == 1
        sample = completed[id(requests[0])][0]
        assert sample.crashed
        assert sample.details.get("fail_stop") is True
        assert sample.value == engine.execution.crash_penalty()

    def test_no_retry_policy_surfaces_the_penalty_immediately(self):
        engine, cluster = make_engine(ScriptedCrash(fail_at=[0]), retry_policy=None)
        requests = submit_singles(engine, cluster, [0])
        completed = drain(engine)
        assert engine.crash_stats.n_exhausted == 1
        assert completed[id(requests[0])][0].crashed

    def test_exhausting_the_budget_after_repeated_failures(self):
        # Submission 0 fails, its retry (submission 1) fails too; with
        # max_retries=1 the slot surfaces as a crash-penalty sample.
        engine, cluster = make_engine(
            ScriptedCrash(fail_at=[0, 1]), retry_policy=RetryPolicy(max_retries=1)
        )
        requests = submit_singles(engine, cluster, [0])
        completed = drain(engine)
        assert engine.crash_stats.n_failures == 2
        assert engine.crash_stats.n_retries == 1
        assert engine.crash_stats.n_exhausted == 1
        assert completed[id(requests[0])][0].crashed

    def test_failed_items_do_not_define_the_makespan(self):
        engine, cluster = make_engine(
            ScriptedCrash(fail_at=[0], fraction=0.9), retry_policy=None
        )
        submit_singles(engine, cluster, [0, 1])
        drain(engine)
        # Only worker-1's real completion counts; the failure event on
        # worker-0 advanced ``now`` but not the makespan.
        assert engine.makespan_hours == pytest.approx(
            engine.duration_for(cluster.workers[1])
        )


class TestNodeDeath:
    def test_death_drains_the_worker_from_the_fleet(self):
        engine, cluster = make_engine(
            ScriptedCrash(fail_at=[0], worker_dead=True),
            retry_policy=RetryPolicy(),
        )
        requests = submit_singles(engine, cluster, [0, 1])
        completed = drain(engine)
        assert engine.crash_stats.n_workers_dead == 1
        assert engine.loop.is_dead("worker-0")
        assert engine.loop.n_dead == 1
        assert all(vm.vm_id != "worker-0" for vm in engine.loop.idle_workers())
        # The lost slot was recovered on a survivor.
        assert not completed[id(requests[0])][0].crashed

    def test_submission_to_a_decided_dead_worker_fails_instantly(self):
        engine, cluster = make_engine(
            ScriptedCrash(fail_at=[0], worker_dead=True, fraction=0.3),
            retry_policy=None,
        )
        space = PostgreSQLSystem().knob_space
        config_a = space.sample(np.random.default_rng(0))
        config_b = space.sample(np.random.default_rng(1))
        engine.submit(WorkRequest(config_a, 1, [cluster.workers[0]], 0))
        # The death is decided but not yet observed; more work routed to the
        # dying worker must error out instantly and take the recovery path
        # rather than raising mid-fanout.
        item = engine.submit(WorkRequest(config_b, 1, [cluster.workers[0]], 1))[0]
        assert item.failed
        assert item.failure_kind == "node-death"
        assert item.finish_hours == item.start_hours
        drain(engine)
        # The worker died once, even though two failures carried the death.
        assert engine.crash_stats.n_workers_dead == 1
        assert engine.crash_stats.n_failures == 2

    def test_study_completes_on_the_last_survivor(self):
        """Graceful degradation: all workers but one die early; the study
        runs to its sample budget on the survivor, and promotions whose
        rung budget exceeds the live fleet are parked, not crashed."""
        deaths = {"worker-0": 0.02, "worker-1": 0.03}
        sampler, result, cluster = run_tuna(
            seed=11,
            n_workers=3,
            batch_size=2,
            max_samples=10,
            budgets=(1, 2),
            crash_model=ScriptedDeaths(deaths),
            retry_policy=RetryPolicy(),
        )
        assert result.n_samples == 10
        assert result.engine_stats["n_workers_dead"] == 2
        assert sampler.scheduler.n_alive == 1
        # Everything after the deaths ran on the survivor.
        survivors = {s.worker_id for s in sampler.datastore.all_samples()[-5:]}
        assert survivors == {"worker-2"}

    def test_scheduler_mark_dead_bookkeeping(self):
        _, cluster, execution, opt = make_setup(0, n_workers=3)
        sampler = TunaSampler(opt, execution, cluster, seed=0, budgets=(1, 2))
        scheduler = sampler.scheduler
        assert scheduler.n_alive == 3
        scheduler.mark_dead("worker-1")
        scheduler.mark_dead("worker-1")  # idempotent
        assert scheduler.n_alive == 2
        assert scheduler.is_dead("worker-1")
        assert all(
            vm.vm_id != "worker-1"
            for vm in scheduler.eligible_workers(
                PostgreSQLSystem().knob_space.default_configuration(), []
            )
        )
        with pytest.raises(KeyError):
            scheduler.mark_dead("worker-99")


class TestSpeculationCrashInterplay:
    def _engine(self, crash_model, stretch_at=0, factor=10.0, n_workers=6):
        class ScriptedStretch(FaultModel):
            name = "scripted"

            def __init__(self):
                super().__init__(seed=0)
                self.calls = 0

            def stretch(self, context):
                call = self.calls
                self.calls += 1
                return factor if call == stretch_at else 1.0

        _, cluster, execution, _ = make_setup(1, n_workers=n_workers)
        policy = SpeculationPolicy(quantile=0.5, slack=1.2, min_history=3)
        engine = AsyncExecutionEngine(
            execution,
            cluster,
            fault_model=ScriptedStretch(),
            speculation=policy,
            crash_model=crash_model,
            retry_policy=RetryPolicy(),
        )
        return engine, cluster

    def test_clone_crash_with_surviving_original_costs_nothing(self):
        # Submissions 0-3 are the originals; the straggler's clone is the
        # 5th consult (call 4).  The clone dies; the straggling original
        # still delivers its sample — a pure duplicate loss, no retry.
        engine, cluster = self._engine(ScriptedCrash(fail_at=[4]))
        requests = submit_singles(engine, cluster, [0, 1, 2, 3])
        completed = drain(engine)
        assert engine.stats.n_duplicates_submitted == 1
        assert engine.crash_stats.n_speculative_failures == 1
        assert engine.crash_stats.n_retries == 0
        straggler_samples = completed[id(requests[0])]
        assert len(straggler_samples) == 1
        assert not straggler_samples[0].crashed
        assert straggler_samples[0].worker_id == "worker-0"

    def test_original_crash_with_winning_clone_delivers_the_sample(self):
        # The straggling original (call 0) dies late (fraction 0.95 of its
        # 10x window); the clone launched at the detection crossing wins
        # the slot.
        engine, cluster = self._engine(
            ScriptedCrash(fail_at=[0], fraction=0.95)
        )
        requests = submit_singles(engine, cluster, [0, 1, 2, 3])
        completed = drain(engine)
        straggler_samples = completed[id(requests[0])]
        assert len(straggler_samples) == 1
        assert not straggler_samples[0].crashed
        assert straggler_samples[0].details.get("speculative") is True
        assert engine.crash_stats.n_retries == 0

    def test_original_and_clone_both_crash_triggers_recovery(self):
        # Original (call 0) and its clone (call 4) both die: the slot is
        # lost and enters the retry path on a third worker.
        engine, cluster = self._engine(
            ScriptedCrash(fail_at=[0, 4], fraction=0.95)
        )
        requests = submit_singles(engine, cluster, [0, 1, 2, 3])
        completed = drain(engine)
        assert engine.crash_stats.n_failures == 2
        assert engine.crash_stats.n_speculative_failures == 1
        assert engine.crash_stats.n_retries == 1
        straggler_samples = completed[id(requests[0])]
        assert len(straggler_samples) == 1
        assert not straggler_samples[0].crashed

    def test_speculative_tuning_run_with_crashes_stays_consistent(self):
        sampler, result, _ = run_tuna(
            seed=7,
            crash_model="transient",
            crash_seed=13,
            retry_policy=RetryPolicy(),
            fault_model="lognormal",
            fault_seed=7,
            speculation=True,
        )
        assert result.n_samples == 40
        samples = sampler.datastore.all_samples()
        assert len(samples) == 40
        # One result per slot: distinct-node budget holds for every config.
        for config in sampler.datastore.configs():
            workers = sampler.datastore.workers_used(config)
            assert len(workers) == len(set(workers))
        # Merged stats carry both subsystems.
        assert "n_duplicates_submitted" in result.engine_stats
        assert "n_failures" in result.engine_stats


class TestCancellationAudit:
    """Regression audit for cancel/purge bookkeeping under recovery."""

    def _loop(self):
        cluster = Cluster(n_workers=3, seed=0)
        return cluster, ClusterEventLoop(cluster)

    def _request(self, cluster):
        space = PostgreSQLSystem().knob_space
        return WorkRequest(space.default_configuration(), 1, list(cluster.workers), 0)

    def test_cancelled_heap_head_never_surfaces_via_peek(self):
        cluster, loop = self._loop()
        request = self._request(cluster)
        first = loop.submit(request, cluster.workers[0], 1.0)
        second = loop.submit(request, cluster.workers[1], 2.0)
        third = loop.submit(request, cluster.workers[2], 3.0)
        # Cancel the two earliest: both sit at the heap head in turn, and
        # peek must purge through them to the live item.
        loop.cancel(first)
        loop.cancel(second)
        assert loop.peek_finish() == 3.0
        assert loop.next_completion() is third
        assert loop.peek_finish() is None

    def test_cancel_of_evaluated_item_raises(self):
        cluster, loop = self._loop()
        request = self._request(cluster)
        item = loop.submit(request, cluster.workers[0], 1.0)
        loop.next_completion()
        item.sample = object()
        with pytest.raises(RuntimeError, match="already-completed"):
            loop.cancel(item)

    def test_cancel_of_popped_unevaluated_item_raises(self):
        """A failed item is popped without ever being evaluated; it must be
        just as uncancellable as an evaluated one."""
        cluster = Cluster(n_workers=3, seed=0)
        loop = ClusterEventLoop(cluster, crash_model=ScriptedCrash(fail_at=[0]))
        request = self._request(cluster)
        item = loop.submit(request, cluster.workers[0], 1.0)
        popped = loop.next_completion()
        assert popped is item and item.failed and item.sample is None
        with pytest.raises(RuntimeError, match="already-completed"):
            loop.cancel(item)

    def test_failed_item_advances_now_but_not_makespan(self):
        cluster = Cluster(n_workers=3, seed=0)
        loop = ClusterEventLoop(
            cluster, crash_model=ScriptedCrash(fail_at=[0], fraction=0.5)
        )
        request = self._request(cluster)
        loop.submit(request, cluster.workers[0], 1.0)
        failed = loop.next_completion()
        assert failed.failed
        assert loop.now == 0.5
        assert loop.makespan == 0.0
